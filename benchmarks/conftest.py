"""Shared fixtures for the benchmark harness."""

import pytest

from repro.bench import reporting
from repro.turbulence import build_turbulence_archive


@pytest.fixture(scope="session", autouse=True)
def _uncaptured_tables(pytestconfig):
    """Route PaperTable output around pytest's capture so the regenerated
    paper tables appear on the terminal (and in tee'd transcripts)."""
    capman = pytestconfig.pluginmanager.getplugin("capturemanager")

    def writer(text: str) -> None:
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(text, flush=True)
        else:
            print(text, flush=True)

    reporting.set_writer(writer)
    yield
    reporting.set_writer(reporting._default_writer)


@pytest.fixture(scope="session")
def archive():
    """One mid-sized turbulence archive shared across benchmark modules."""
    return build_turbulence_archive(
        n_simulations=4, timesteps=3, grid=16, n_file_servers=2
    )


@pytest.fixture(scope="session")
def sandbox_root(tmp_path_factory):
    return str(tmp_path_factory.mktemp("bench-sandbox"))


@pytest.fixture(scope="session")
def engine(archive, sandbox_root):
    return archive.make_engine(sandbox_root)
