"""[A3] Supplementary ablation: durability machinery.

Not a paper artefact — the paper's database runs on a commercial DBMS —
but the reproduction's engine carries its own WAL/checkpoint machinery,
and its cost profile belongs in the record: what does durability cost per
statement, and what does recovery cost per logged transaction?

Expected shape: WAL appends add a small constant per statement; recovery
time scales linearly with the log; checkpointing collapses recovery to
near-constant.
"""

import time

import pytest

from repro.bench import PaperTable
from repro.sqldb import Database

N_ROWS = 500


def _populate(db) -> float:
    start = time.perf_counter()
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v VARCHAR(20))")
    for i in range(N_ROWS):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, f"value-{i}"))
    return time.perf_counter() - start


def test_bench_a3_wal_overhead(benchmark, tmp_path):
    def measure():
        memory = Database()
        memory_cost = _populate(memory)
        durable = Database(str(tmp_path / "wal"))
        durable_cost = _populate(durable)
        return memory_cost, durable_cost

    memory_cost, durable_cost = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = PaperTable(
        "A3",
        f"Durability overhead: {N_ROWS} inserts",
        ["configuration", "total", "per-row"],
    )
    table.add_row("in-memory", f"{memory_cost * 1000:.1f} ms",
                  f"{memory_cost / N_ROWS * 1e6:.0f} us")
    table.add_row("WAL (no fsync)", f"{durable_cost * 1000:.1f} ms",
                  f"{durable_cost / N_ROWS * 1e6:.0f} us")
    table.show()
    # logging costs something but stays the same order of magnitude
    assert durable_cost < memory_cost * 25


def test_bench_a3_recovery_scales_with_log(benchmark, tmp_path):
    def measure():
        out = []
        for rows in (100, 500, 2000):
            d = str(tmp_path / f"r{rows}")
            db = Database(d)
            db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v VARCHAR(20))")
            for i in range(rows):
                db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
            start = time.perf_counter()
            recovered = Database(d)
            replay = time.perf_counter() - start
            assert recovered.execute("SELECT COUNT(*) FROM t").scalar() == rows
            recovered.checkpoint()
            start = time.perf_counter()
            after_checkpoint = Database(d)
            from_checkpoint = time.perf_counter() - start
            assert after_checkpoint.execute(
                "SELECT COUNT(*) FROM t"
            ).scalar() == rows
            out.append((rows, replay, from_checkpoint))
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = PaperTable(
        "A3b",
        "Recovery time: WAL replay vs checkpoint load",
        ["rows", "replay", "from checkpoint"],
    )
    for rows, replay, from_checkpoint in results:
        table.add_row(rows, f"{replay * 1000:.1f} ms",
                      f"{from_checkpoint * 1000:.1f} ms")
    table.show()

    # replay grows with the log (20x rows -> clearly more time)
    assert results[-1][1] > results[0][1]
    # checkpoint load beats replay at the largest size
    assert results[-1][2] < results[-1][1]
