"""[A2] Ablation: DATALINK integrity options.

What do the SQL/MED guarantees cost?  This ablation compares INSERT and
SELECT throughput across the option ladder:

* ``NO LINK CONTROL`` — the URL is stored unverified,
* ``FILE LINK CONTROL`` + ``READ PERMISSION FS`` — existence check and
  rename/delete blocking, but no tokens,
* ``FILE LINK CONTROL`` + ``READ PERMISSION DB`` — everything, plus an
  HMAC token attached to every SELECTed value.

Expected shape: link control adds a bounded constant per INSERT (one
existence check + one pending-link record); READ PERMISSION DB adds a
token issue per SELECTed row.  Neither depends on file size.
"""

import time

import pytest

from repro.bench import PaperTable
from repro.datalink import DataLinker, TokenManager
from repro.fileserver import FileServer
from repro.sqldb import Database

N_ROWS = 200

_VARIANTS = {
    "NO LINK CONTROL": "LINKTYPE URL NO LINK CONTROL",
    "LINK CONTROL + FS": (
        "LINKTYPE URL FILE LINK CONTROL INTEGRITY ALL READ PERMISSION FS "
        "WRITE PERMISSION FS RECOVERY NO ON UNLINK RESTORE"
    ),
    "LINK CONTROL + DB": (
        "LINKTYPE URL FILE LINK CONTROL INTEGRITY ALL READ PERMISSION DB "
        "WRITE PERMISSION BLOCKED RECOVERY YES ON UNLINK RESTORE"
    ),
}


def _setup(options: str):
    linker = DataLinker(TokenManager(secret=b"a2", time_source=lambda: 0.0))
    server = linker.register_server(FileServer("fs.bench"))
    for i in range(N_ROWS):
        server.put(f"/data/f{i}.bin", b"x" * 64)
    db = Database()
    db.set_datalink_hooks(linker)
    db.execute(f"CREATE TABLE F (K INTEGER PRIMARY KEY, D DATALINK {options})")
    return db


def _insert_all(db) -> float:
    start = time.perf_counter()
    for i in range(N_ROWS):
        db.execute(
            "INSERT INTO F VALUES (?, ?)", (i, f"http://fs.bench/data/f{i}.bin")
        )
    return time.perf_counter() - start


def _select_all(db) -> float:
    start = time.perf_counter()
    result = db.execute("SELECT D FROM F")
    elapsed = time.perf_counter() - start
    assert len(result.rows) == N_ROWS
    return elapsed


def test_bench_a2_link_control_ablation(benchmark):
    def measure():
        out = {}
        for label, options in _VARIANTS.items():
            db = _setup(options)
            insert = _insert_all(db)
            select = _select_all(db)
            tokenised = db.execute("SELECT D FROM F LIMIT 1").scalar().token
            out[label] = (insert, select, tokenised is not None)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = PaperTable(
        "A2",
        f"DATALINK option ladder: {N_ROWS} inserts + full-table SELECT",
        ["options", "insert total", "per-row", "select total", "tokens?"],
    )
    for label, (insert, select, tokenised) in results.items():
        table.add_row(
            label,
            f"{insert * 1000:.1f} ms",
            f"{insert / N_ROWS * 1e6:.0f} us",
            f"{select * 1000:.1f} ms",
            "yes" if tokenised else "no",
        )
    table.show()

    no_control = results["NO LINK CONTROL"]
    fs = results["LINK CONTROL + FS"]
    db_perm = results["LINK CONTROL + DB"]
    # Only READ PERMISSION DB attaches tokens.
    assert not no_control[2] and not fs[2] and db_perm[2]
    # The guarantees cost a bounded constant: well under 20x on inserts.
    assert db_perm[0] < no_control[0] * 20
    # Token issuing costs something on SELECT but stays the same order.
    assert db_perm[1] < no_control[1] * 50


def test_bench_a2_integrity_enforcement_not_free_to_skip(benchmark):
    """What NO LINK CONTROL gives up: a linked file is protected from
    deletion; an uncontrolled file silently disappears."""
    from repro.errors import FileLockedError

    def scenario():
        linker = DataLinker(TokenManager(secret=b"a2", time_source=lambda: 0.0))
        server = linker.register_server(FileServer("fs.bench"))
        server.put("/data/ctl.bin", b"x")
        server.put("/data/free.bin", b"x")
        db = Database()
        db.set_datalink_hooks(linker)
        db.execute(
            "CREATE TABLE C (K INTEGER PRIMARY KEY, D DATALINK "
            + _VARIANTS["LINK CONTROL + DB"] + ")"
        )
        db.execute("CREATE TABLE N (K INTEGER PRIMARY KEY, D DATALINK LINKTYPE URL NO LINK CONTROL)")
        db.execute("INSERT INTO C VALUES (1, 'http://fs.bench/data/ctl.bin')")
        db.execute("INSERT INTO N VALUES (1, 'http://fs.bench/data/free.bin')")
        protected = False
        try:
            server.filesystem.delete("/data/ctl.bin")
        except FileLockedError:
            protected = True
        server.filesystem.delete("/data/free.bin")  # dangling reference now
        return protected, server.filesystem.exists("/data/free.bin")

    protected, free_exists = benchmark.pedantic(scenario, rounds=1, iterations=1)
    assert protected
    assert not free_exists
