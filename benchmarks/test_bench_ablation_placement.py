"""[A1] Ablation: archive-where-generated.

DESIGN.md calls out data placement as the architecture's central design
choice.  This ablation varies the fraction of datasets archived at their
generating site (the rest are shipped to the central archive) and reports
wide-area bytes for the archive phase plus a post-processing phase in
which every dataset is reduced server-side and only results ship.

Expected shape: WAN bytes fall monotonically as the locally-archived
fraction rises; at fraction 1.0 the archive phase costs only metadata.
"""

import pytest

from repro.bench import PaperTable
from repro.netsim import MBYTE, Network, SimClock, TransferEngine, paper_profile
from repro.netsim.topology import Host, Link

N_DATASETS = 10
DATASET_BYTES = 85 * MBYTE
RESULT_BYTES = 64 * 1024  # a slice image / stats document
METADATA_BYTES = 1024


def _run(fraction_local: float) -> tuple[int, float]:
    network = Network.paper_topology(remote_sites=("qmw.london",))
    network.add_host(Host("fs.qmw.london", role="file_server"))
    network.add_link(
        Link(
            "fs.qmw.london", "qmw.london",
            profile_ab=paper_profile("from_southampton"),
            profile_ba=paper_profile("to_southampton"),
        )
    )
    engine = TransferEngine(network, SimClock(start_hour=10.0))
    n_local = round(N_DATASETS * fraction_local)
    for i in range(N_DATASETS):
        if i < n_local:
            engine.transfer("qmw.london", "qmw.london", DATASET_BYTES, "archive-local")
        else:
            engine.transfer("qmw.london", "southampton", DATASET_BYTES, "ship-central")
        engine.transfer("qmw.london", "southampton", METADATA_BYTES, "metadata")
    # post-processing phase: each dataset is reduced where it lives and the
    # result ships to the user at qmw
    for i in range(N_DATASETS):
        source = "fs.qmw.london" if i < n_local else "southampton"
        engine.transfer(source, "qmw.london", RESULT_BYTES, "result")
    return engine.total_wan_bytes(), engine.clock.now


def test_bench_a1_placement_ablation(benchmark):
    fractions = (0.0, 0.25, 0.5, 0.75, 1.0)
    results = benchmark(lambda: {f: _run(f) for f in fractions})

    table = PaperTable(
        "A1",
        f"Ablation: fraction of {N_DATASETS} datasets archived where "
        "generated (archive + post-process workflow)",
        ["local fraction", "WAN bytes", "WAN MB", "wall time"],
    )
    from repro.netsim import format_duration

    for fraction, (wan, elapsed) in results.items():
        table.add_row(
            f"{fraction:.0%}", wan, f"{wan / MBYTE:.1f}",
            format_duration(elapsed),
        )
    table.show()

    byte_series = [results[f][0] for f in fractions]
    # strictly decreasing in the locally-archived fraction
    assert all(a > b for a, b in zip(byte_series, byte_series[1:]))
    # fully local: only metadata and results cross the WAN
    assert byte_series[-1] == N_DATASETS * (METADATA_BYTES + RESULT_BYTES)
    # fully central: every dataset crossed once, dominating everything else
    assert byte_series[0] > N_DATASETS * DATASET_BYTES
