"""[F5] Unified storage of small and large objects: BLOB vs DATALINK.

The paper's claim: "a database can meet the apparently divergent
requirements of storing both the relatively small simulation result
metadata, and the large result files, in a unified way".  BLOB/CLOB store
small objects inside the database (and rematerialise them over hypertext
links); DATALINKs reference large files in place.

The bench sweeps object size and compares (a) INSERT cost and (b) SELECT
cost under both storage strategies.  Expected shape: BLOB costs grow with
the payload because bytes funnel through the database (including the WAL
in durable mode), while DATALINK costs stay flat — the database only
handles a URL, whatever the file size.
"""

import time

import pytest

from repro.bench import PaperTable
from repro.datalink import DataLinker, TokenManager
from repro.fileserver import FileServer
from repro.sqldb import Database

SIZES = (1_000, 100_000, 2_000_000)


def _time(fn, repeats=5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _blob_costs(size: int) -> tuple[float, float]:
    db = Database()
    db.execute("CREATE TABLE F (K INTEGER PRIMARY KEY, PAYLOAD BLOB)")
    payload = bytes(size)
    counter = [0]

    def insert():
        counter[0] += 1
        db.execute("INSERT INTO F VALUES (?, ?)", (counter[0], payload))

    insert_cost = _time(insert)
    select_cost = _time(
        lambda: db.execute("SELECT PAYLOAD FROM F WHERE K = 1").scalar()
    )
    return insert_cost, select_cost


def _datalink_costs(size: int) -> tuple[float, float]:
    linker = DataLinker(TokenManager(secret=b"b", time_source=lambda: 0.0))
    server = linker.register_server(FileServer("fs.bench"))
    db = Database()
    db.set_datalink_hooks(linker)
    db.execute(
        "CREATE TABLE F (K INTEGER PRIMARY KEY, PAYLOAD DATALINK "
        "LINKTYPE URL FILE LINK CONTROL READ PERMISSION DB "
        "WRITE PERMISSION BLOCKED RECOVERY NO ON UNLINK RESTORE)"
    )
    counter = [0]
    payload = bytes(size)

    def insert():
        counter[0] += 1
        path = f"/data/f{counter[0]}.bin"
        server.put(path, payload)  # generated in place, outside the DB
        db.execute(
            "INSERT INTO F VALUES (?, ?)",
            (counter[0], f"http://fs.bench{path}"),
        )

    insert_cost = _time(insert)
    select_cost = _time(
        lambda: db.execute("SELECT PAYLOAD FROM F WHERE K = 1").scalar()
    )
    return insert_cost, select_cost


def test_bench_fig5_blob_vs_datalink(benchmark):
    results = benchmark.pedantic(
        lambda: {
            size: (_blob_costs(size), _datalink_costs(size)) for size in SIZES
        },
        rounds=1, iterations=1,
    )

    table = PaperTable(
        "F5",
        "Storing objects in the database (BLOB) vs linking them (DATALINK)",
        ["size", "BLOB insert", "DL insert", "BLOB select", "DL select"],
    )
    for size, ((b_ins, b_sel), (d_ins, d_sel)) in results.items():
        table.add_row(
            f"{size:,} B",
            f"{b_ins * 1e6:.0f} us", f"{d_ins * 1e6:.0f} us",
            f"{b_sel * 1e6:.0f} us", f"{d_sel * 1e6:.0f} us",
        )
    table.show()

    # Shape: DATALINK select cost is ~flat across 3 orders of magnitude of
    # file size; the BLOB path moves the payload through the engine.
    (_, d_sel_small) = results[SIZES[0]][1]
    (_, d_sel_large) = results[SIZES[-1]][1]
    assert d_sel_large < d_sel_small * 20  # flat-ish (noise tolerated)


def test_bench_fig5_blob_rematerialisation(benchmark, archive):
    """BLOB browsing: the preview image rematerialises with its MIME type."""
    from repro.sqldb.types import Blob

    def rematerialise():
        return archive.db.execute(
            "SELECT PREVIEW FROM VISUALISATION_FILE LIMIT 1"
        ).scalar()

    blob = benchmark(rematerialise)
    assert isinstance(blob, Blob)
    assert blob.mime_type == "image/x-portable-graymap"


def test_bench_fig5_datalink_keeps_bytes_out_of_db(benchmark):
    """The WAL of a durable database stays metadata-sized under DATALINK
    storage: large file bytes never enter the database."""
    import os
    import tempfile

    def measure():
        linker = DataLinker(TokenManager(secret=b"b", time_source=lambda: 0.0))
        server = linker.register_server(FileServer("fs.bench"))
        with tempfile.TemporaryDirectory() as d:
            db = Database(d)
            db.set_datalink_hooks(linker)
            db.execute(
                "CREATE TABLE F (K INTEGER PRIMARY KEY, PAYLOAD DATALINK "
                "LINKTYPE URL FILE LINK CONTROL READ PERMISSION DB "
                "WRITE PERMISSION BLOCKED RECOVERY NO ON UNLINK RESTORE)"
            )
            payload = bytes(1_000_000)
            for i in range(5):
                path = f"/data/f{i}.bin"
                server.put(path, payload)
                db.execute(
                    "INSERT INTO F VALUES (?, ?)", (i, f"http://fs.bench{path}")
                )
            return os.path.getsize(os.path.join(d, "wal.jsonl"))

    wal_bytes = benchmark.pedantic(measure, rounds=1, iterations=1)
    # 5 MB of file data produced well under 5 KB of database log.
    assert wal_bytes < 5_000
