"""[A4] Concurrency ablation: snapshot reads vs serialised reads.

The acceptance scenario for the concurrent-connection work: 8 reader
threads and 1 writer thread share one database via ``Database.connect()``.
The writer runs explicit transactions that hold the writer lock for most
of each interval.  Readers run in two modes:

* **snapshot** — the shipped path: each SELECT reads a per-statement
  snapshot and never touches the writer lock;
* **serialized** — the counterfactual: each SELECT first acquires the
  writer lock, the behaviour a single-lock engine would force on readers.

Each reader validates every SUM it sees against the invariant total, so
the run doubles as a torn-read detector.  Results land in
``BENCH_concurrency.json`` (checked by scripts/check_bench_regression.py
--concurrency): torn_reads must be 0 and speedup must be >= 4x.
"""

import json
import threading
import time
from pathlib import Path

from repro.bench import PaperTable
from repro.errors import LockTimeout
from repro.sqldb import Database

N_READERS = 8
N_ACCOUNTS = 16
BALANCE = 100
DURATION = 0.6  # seconds per mode
WRITER_HOLD = 0.02  # seconds the writer keeps the lock per transaction
WRITER_GAP = 0.004  # seconds between writer transactions
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_concurrency.json"


def _build_db():
    db = Database()
    db.execute("CREATE TABLE ACCT (K INTEGER PRIMARY KEY, V INTEGER)")
    for i in range(N_ACCOUNTS):
        db.execute("INSERT INTO ACCT VALUES (?, ?)", (i, BALANCE))
    return db, N_ACCOUNTS * BALANCE


def _run_mode(db, total, serialized):
    """Run 8 readers + 1 writer for DURATION; return (reads, torn)."""
    stop = threading.Event()
    reads = [0] * N_READERS
    torn = [0] * N_READERS
    # In serialized mode this models a writer-priority lock queue: readers
    # may not cut in front of a writer that wants the lock (a plain
    # threading.Lock is unfair and would let 8 readers starve the writer,
    # which no serialised engine tolerates).
    writer_wants = threading.Event()

    def writer():
        conn = db.connect()
        i = 0
        while not stop.is_set():
            a, b = i % N_ACCOUNTS, (i + 5) % N_ACCOUNTS
            writer_wants.set()
            conn.execute("BEGIN")
            conn.execute("UPDATE ACCT SET V = V - 9 WHERE K = ?", (a,))
            conn.execute("UPDATE ACCT SET V = V + 9 WHERE K = ?", (b,))
            # an open transaction mid-flight: the writer lock stays held
            time.sleep(WRITER_HOLD)
            conn.execute("COMMIT")
            writer_wants.clear()
            i += 1
            time.sleep(WRITER_GAP)

    def reader(slot):
        conn = db.connect()
        while not stop.is_set():
            if serialized:
                # counterfactual: readers queue behind the writer
                if writer_wants.is_set():
                    time.sleep(0.0005)
                    continue
                try:
                    db.writer_lock.acquire(timeout=0.01)
                except LockTimeout:
                    continue
                try:
                    seen = conn.execute("SELECT SUM(V) FROM ACCT").scalar()
                finally:
                    db.writer_lock.release()
            else:
                seen = conn.execute("SELECT SUM(V) FROM ACCT").scalar()
            reads[slot] += 1
            if seen != total:
                torn[slot] += 1

    threads = [threading.Thread(target=writer)]
    threads += [
        threading.Thread(target=reader, args=(slot,))
        for slot in range(N_READERS)
    ]
    for t in threads:
        t.start()
    time.sleep(DURATION)
    stop.set()
    for t in threads:
        t.join()
    return sum(reads), sum(torn)


def test_bench_a4_snapshot_read_throughput(benchmark):
    def measure():
        db, total = _build_db()
        snap_reads, snap_torn = _run_mode(db, total, serialized=False)
        serial_reads, serial_torn = _run_mode(db, total, serialized=True)
        return snap_reads, snap_torn, serial_reads, serial_torn

    snap_reads, snap_torn, serial_reads, serial_torn = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    speedup = snap_reads / max(1, serial_reads)

    table = PaperTable(
        "A4",
        f"{N_READERS} readers + 1 writer, {DURATION:g}s per mode",
        ["read mode", "reads", "reads/s", "torn"],
    )
    table.add_row("snapshot (shipped)", str(snap_reads),
                  f"{snap_reads / DURATION:.0f}", str(snap_torn))
    table.add_row("serialized behind writer lock", str(serial_reads),
                  f"{serial_reads / DURATION:.0f}", str(serial_torn))
    table.add_row("speedup", f"{speedup:.1f}x", "", "")
    table.show()

    RESULT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "concurrency.snapshot_vs_serialized",
                "readers": N_READERS,
                "writers": 1,
                "duration_seconds": DURATION,
                "snapshot_reads": snap_reads,
                "serialized_reads": serial_reads,
                "torn_reads": snap_torn + serial_torn,
                "speedup": round(speedup, 2),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    assert snap_torn == 0 and serial_torn == 0
    assert speedup >= 4.0, (
        f"snapshot reads only {speedup:.1f}x serialized reads"
    )
