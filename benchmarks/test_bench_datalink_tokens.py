"""[F4] DATALINK browsing: encrypted, expiring access tokens.

The "DATALINK browsing" figure: a SELECT yields a token-prefixed URL, the
file server validates the token offline, and tokens expire after the
configured interval.  This bench measures the token machinery's cost —
issue, validate, and the full SELECT-with-decoration path — and verifies
the expiry sweep behaviour.
"""

import pytest

from repro.bench import PaperTable
from repro.datalink import TokenManager
from repro.errors import TokenExpiredError


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_bench_fig4_token_issue(benchmark):
    tm = TokenManager(secret=b"bench", validity_seconds=600, time_source=_Clock())
    token = benchmark(lambda: tm.issue("fs1.soton.ac.uk/data/ts0001.turb"))
    assert "." in token


def test_bench_fig4_token_validate(benchmark):
    clock = _Clock()
    tm = TokenManager(secret=b"bench", validity_seconds=600, time_source=clock)
    scope = "fs1.soton.ac.uk/data/ts0001.turb"
    token = tm.issue(scope)
    assert benchmark(lambda: tm.validate(scope, token))


def test_bench_fig4_select_with_decoration(benchmark, archive):
    """The user-visible path: SELECT on RESULT_FILE attaches a fresh token
    and the file size to every DATALINK value."""
    result = benchmark(
        lambda: archive.db.execute(
            "SELECT FILE_NAME, DOWNLOAD_RESULT FROM RESULT_FILE"
        )
    )
    for _name, value in result.rows:
        assert value.token is not None
        assert value.size is not None


def test_bench_fig4_expiry_sweep(benchmark):
    """Tokens are valid strictly within their configured lifetime."""
    clock = _Clock()
    tm = TokenManager(secret=b"bench", validity_seconds=60, time_source=clock)
    scope = "fs1.soton.ac.uk/data/f"

    def sweep():
        clock.now = 0.0
        token = tm.issue(scope)
        outcomes = []
        for offset in (0.0, 30.0, 59.0, 61.0, 3600.0):
            clock.now = offset
            try:
                tm.validate(scope, token)
                outcomes.append((offset, "valid"))
            except TokenExpiredError:
                outcomes.append((offset, "expired"))
        return outcomes

    outcomes = benchmark(sweep)
    table = PaperTable(
        "F4",
        "Access-token expiry sweep (validity 60 s)",
        ["age (s)", "outcome"],
    )
    for offset, outcome in outcomes:
        table.add_row(offset, outcome)
    table.show()

    assert outcomes == [
        (0.0, "valid"), (30.0, "valid"), (59.0, "valid"),
        (61.0, "expired"), (3600.0, "expired"),
    ]


def test_bench_fig4_end_to_end_download(benchmark, archive):
    """SELECT -> tokenized URL -> file server serves after offline
    validation.  This is the complete DATALINK-browsing figure."""
    def journey():
        value = archive.db.execute(
            "SELECT DOWNLOAD_RESULT FROM RESULT_FILE LIMIT 1"
        ).scalar()
        return archive.linker.download(value)

    data = benchmark(journey)
    assert data[:4] == b"TURB"
