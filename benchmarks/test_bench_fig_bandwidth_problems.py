"""[F1] The "Bandwidth Problems" figures.

The paper's two problem diagrams: (1) uploading large datasets from the
generating site to a central archive, (2) downloading them back to users.
EASIA's answer is "archive data where it is generated" + DATALINKs.

This bench replays an archive-and-share workflow under both designs on
the measured Southampton topology and reports wide-area bytes moved and
wall-clock time.  Expected shape: the distributed archive moves ~half the
bytes when every dataset is consumed once (and *none* up front), with the
gap widening as the consumer fraction drops.
"""

import pytest

from repro.bench import PaperTable
from repro.netsim import MBYTE, Network, SimClock, TransferEngine, paper_profile
from repro.netsim.topology import Host, Link

N_DATASETS = 8
DATASET_BYTES = 85 * MBYTE  # the paper's "small simulation" size


def _topology() -> Network:
    """Generating/user site qmw.london plus the Southampton archive."""
    return Network.paper_topology(remote_sites=("qmw.london",))


def _centralised(consume_fraction: float) -> tuple[int, float]:
    """Datasets generated at QMW are uploaded to Southampton; consumers at
    QMW then download the ones they need."""
    engine = TransferEngine(_topology(), SimClock(start_hour=10.0))
    for i in range(N_DATASETS):
        engine.transfer("qmw.london", "southampton", DATASET_BYTES, f"upload {i}")
    consumed = int(N_DATASETS * consume_fraction)
    for i in range(consumed):
        engine.transfer("southampton", "qmw.london", DATASET_BYTES, f"download {i}")
    return engine.total_wan_bytes(), engine.clock.now


def _distributed(consume_fraction: float) -> tuple[int, float]:
    """EASIA: datasets stay on a file server at the generating site; the
    database at Southampton only holds metadata.  Consumers at the same
    site read locally."""
    network = _topology()
    network.add_host(Host("fs.qmw.london", role="file_server"))
    network.add_link(
        Link(
            "fs.qmw.london", "qmw.london",
            # same campus: fast local link
            profile_ab=paper_profile("from_southampton"),
            profile_ba=paper_profile("to_southampton"),
        )
    )
    engine = TransferEngine(network, SimClock(start_hour=10.0))
    for i in range(N_DATASETS):
        # archive where generated: a local copy onto the site file server
        engine.transfer("qmw.london", "qmw.london", DATASET_BYTES, f"archive {i}")
        # only ~1 KB of metadata crosses to the database host
        engine.transfer("qmw.london", "southampton", 1024, f"metadata {i}")
    consumed = int(N_DATASETS * consume_fraction)
    for i in range(consumed):
        engine.transfer("fs.qmw.london", "qmw.london", DATASET_BYTES, f"serve {i}")
    return engine.total_wan_bytes(), engine.clock.now


def test_bench_fig1_bandwidth_problems(benchmark):
    def run_all():
        out = {}
        for fraction in (1.0, 0.5, 0.25):
            out[fraction] = (_centralised(fraction), _distributed(fraction))
        return out

    results = benchmark(run_all)

    table = PaperTable(
        "F1",
        "Centralised upload/download vs EASIA distributed archive "
        f"({N_DATASETS} x 85 MB datasets)",
        ["consumed", "central bytes", "central time", "EASIA bytes",
         "EASIA time", "byte ratio"],
    )
    from repro.netsim import format_duration

    for fraction, ((c_bytes, c_time), (d_bytes, d_time)) in results.items():
        ratio = c_bytes / d_bytes if d_bytes else float("inf")
        table.add_row(
            f"{fraction:.0%}",
            f"{c_bytes / MBYTE:.0f} MB",
            format_duration(c_time),
            f"{d_bytes / MBYTE:.0f} MB",
            format_duration(d_time),
            f"{ratio:.1f}x",
        )
    table.show()

    # Shape assertions: the distributed design always moves fewer wide-area
    # bytes; at 100% consumption the ratio approaches 2x (upload+download vs
    # serve-only), and it grows as the consumed fraction falls.
    (c100, _), (d100, _) = results[1.0]
    (c25, _), (d25, _) = results[0.25]
    assert d100 < c100
    assert c100 / d100 == pytest.approx(2.0, rel=0.05)
    assert (c25 / d25) > (c100 / d100)


def test_bench_fig1_first_problem_upload_cost(benchmark):
    """The 'first problem' figure alone: shipping one large simulation to
    the central archive takes hours at the measured day rate, while the
    EASIA archive step is local (zero WAN seconds)."""
    engine = TransferEngine(_topology(), SimClock(start_hour=10.0))

    upload_seconds = benchmark(
        lambda: engine.duration("qmw.london", "southampton", 544 * MBYTE)
    )
    local_seconds = engine.duration("qmw.london", "qmw.london", 544 * MBYTE)
    assert upload_seconds > 4 * 3600  # the paper's 4h50m08s
    assert local_seconds == 0.0
