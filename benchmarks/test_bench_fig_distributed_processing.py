"""[F3] Distributed processing capability.

Paper: "Each machine provides a distributed processing capability that
allows multiple datasets to be post-processed simultaneously" and "data
distribution can reduce access bottlenecks at individual sites".

The bench spreads K datasets over M in {1, 2, 4} file servers and models
the makespan of post-processing all of them: each server works through
its local datasets sequentially (at its compute rate), servers run in
parallel.  Per-dataset cost is grounded in *measured* engine invocations.
Expected shape: makespan scales ~1/M while per-dataset cost dominates.
"""

import pytest

from repro.bench import PaperTable
from repro.turbulence import build_turbulence_archive

K_DATASETS = 8
COLID = "RESULT_FILE.DOWNLOAD_RESULT"


def _measured_per_dataset_cost(engine, rows) -> float:
    """Ground truth: the mean measured FieldStats time on this machine."""
    costs = []
    for row in rows:
        result = engine.invoke("FieldStats", COLID, row, use_cache=False)
        costs.append(result.elapsed)
    return sum(costs) / len(costs)


def _makespan(n_servers: int, per_dataset_cost: float) -> float:
    """Each server processes its local share sequentially; servers run in
    parallel, so the makespan is the largest share."""
    shares = [0] * n_servers
    for i in range(K_DATASETS):
        shares[i % n_servers] += 1
    return max(shares) * per_dataset_cost


def test_bench_fig3_distributed_processing(benchmark, sandbox_root):
    archive = build_turbulence_archive(
        n_simulations=4, timesteps=2, grid=12, n_file_servers=2
    )
    engine = archive.make_engine(f"{sandbox_root}/f3")
    rows = archive.result_rows()
    per_dataset = benchmark.pedantic(
        lambda: _measured_per_dataset_cost(engine, rows),
        rounds=3, iterations=1,
    )

    table = PaperTable(
        "F3",
        f"Post-processing {K_DATASETS} datasets across M file servers "
        f"(measured per-dataset cost {per_dataset * 1000:.1f} ms)",
        ["servers", "makespan", "speedup vs 1 server"],
    )
    baseline = _makespan(1, per_dataset)
    speedups = {}
    for m in (1, 2, 4, 8):
        makespan = _makespan(m, per_dataset)
        speedups[m] = baseline / makespan
        table.add_row(m, f"{makespan * 1000:.1f} ms", f"{speedups[m]:.2f}x")
    table.show()

    # Shape: near-linear scaling when shares divide evenly.
    assert speedups[2] == pytest.approx(2.0)
    assert speedups[4] == pytest.approx(4.0)
    assert speedups[8] == pytest.approx(8.0)


def test_bench_fig3_access_bottleneck(benchmark):
    """Access-bottleneck view, simulated with the fair-share scheduler:
    concurrent downloads of distinct datasets contend for a single
    archive's link but run in parallel from distributed servers."""
    from repro.netsim import (
        MBYTE,
        BandwidthProfile,
        ConcurrentScheduler,
        Flow,
        Host,
        Link,
        Network,
        SimClock,
        format_duration,
    )

    dataset = 85 * MBYTE
    rate = 1.94  # evening, serving from the archive's site

    def simulate():
        central = Network()
        central.add_host(Host("archive"))
        for i in range(K_DATASETS):
            central.add_host(Host(f"user{i}"))
            central.add_link(
                Link("archive", f"user{i}", BandwidthProfile.constant(rate))
            )
        centralised = ConcurrentScheduler(central, SimClock()).run(
            [Flow("archive", f"user{i}", dataset) for i in range(K_DATASETS)]
        )

        spread = Network()
        for i in range(K_DATASETS):
            spread.add_host(Host(f"server{i}"))
            spread.add_host(Host(f"user{i}"))
            spread.add_link(
                Link(f"server{i}", f"user{i}", BandwidthProfile.constant(rate))
            )
        distributed = ConcurrentScheduler(spread, SimClock()).run(
            [Flow(f"server{i}", f"user{i}", dataset) for i in range(K_DATASETS)]
        )
        return centralised, distributed

    centralised, distributed = benchmark(simulate)
    table = PaperTable(
        "F3b",
        f"Serving {K_DATASETS} concurrent 85 MB downloads "
        "(evening rate, fair-share simulation)",
        ["design", "time to deliver all"],
    )
    table.add_row("single archive site", format_duration(centralised))
    table.add_row(f"{K_DATASETS} distributed servers", format_duration(distributed))
    table.show()

    assert centralised == pytest.approx(distributed * K_DATASETS, rel=1e-6)
