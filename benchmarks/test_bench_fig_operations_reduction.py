"""[F2] Server-side post-processing as data reduction.

The paper's headline benefit: "Suitable user-directed post-processing,
such as array slicing and visualisation, can significantly reduce the
amount of data that needs to be shipped back to the user."

This bench sweeps the grid size and compares the bytes a user receives
from (a) downloading the raw dataset, (b) GetImage (one slice rendered as
an image — O(n^2) of an O(n^3) dataset), (c) FieldStats (O(1)), plus the
wide-area time saved at the measured day rate.  Expected shape: the
reduction factor for GetImage grows linearly with n; FieldStats is
flat-size.
"""

import pytest

from repro.bench import PaperTable
from repro.netsim import MBYTE, transfer_seconds, format_duration
from repro.turbulence import build_turbulence_archive

GRIDS = (8, 16, 32)
COLID = "RESULT_FILE.DOWNLOAD_RESULT"


def _measure(grid: int, sandbox_root: str) -> dict:
    archive = build_turbulence_archive(
        n_simulations=1, timesteps=1, grid=grid, n_file_servers=1
    )
    engine = archive.make_engine(f"{sandbox_root}/g{grid}")
    row = archive.result_rows()[0]
    raw = row["RESULT_FILE.FILE_SIZE"]
    image = engine.invoke(
        "GetImage", COLID, row, {"slice": "x1", "type": "u"}, use_cache=False
    )
    stats = engine.invoke("FieldStats", COLID, row, use_cache=False)
    return {
        "grid": grid,
        "raw": raw,
        "image": image.output_bytes,
        "stats": stats.output_bytes,
        "image_factor": image.reduction_factor,
        "stats_factor": stats.reduction_factor,
    }


def test_bench_fig2_operations_reduction(benchmark, sandbox_root):
    results = benchmark.pedantic(
        lambda: [_measure(grid, sandbox_root) for grid in GRIDS],
        rounds=1, iterations=1,
    )

    table = PaperTable(
        "F2",
        "Data shipped to the user: raw download vs server-side operations "
        "(day rate 0.37 Mbit/s)",
        ["grid", "raw bytes", "GetImage bytes", "reduction",
         "FieldStats bytes", "raw xfer time", "GetImage xfer time"],
    )
    for r in results:
        table.add_row(
            f"{r['grid']}^3",
            r["raw"],
            r["image"],
            f"{r['image_factor']:.0f}x",
            r["stats"],
            format_duration(transfer_seconds(r["raw"], 0.37)),
            format_duration(transfer_seconds(r["image"], 0.37)),
        )
    table.show()

    # Shape: slicing is O(n^2) of O(n^3) — the factor grows ~linearly in n.
    factors = [r["image_factor"] for r in results]
    assert factors[1] > factors[0] * 1.5
    assert factors[2] > factors[1] * 1.5
    # FieldStats output is essentially constant-size.
    sizes = [r["stats"] for r in results]
    assert max(sizes) < 2 * min(sizes)
    # Everything beats shipping the raw dataset.
    for r in results:
        assert r["image"] < r["raw"] / 10
        assert r["stats"] < r["raw"] / 10


def test_bench_fig2_paper_scale_extrapolation(benchmark):
    """At the paper's own scales (85 MB and 544 MB datasets), shipping a
    slice image instead of the raw file turns hours into seconds."""

    def extrapolate():
        out = []
        for raw_mb, label in ((85, "small"), (544, "large")):
            raw = raw_mb * MBYTE
            # A 3D single-precision 4-field dataset of this size has
            # n^3 = raw / 16; one greyscale slice is n^2 bytes.
            n = round((raw / 16) ** (1 / 3))
            slice_bytes = n * n + 15
            out.append((label, raw, slice_bytes,
                        transfer_seconds(raw, 0.37),
                        transfer_seconds(slice_bytes, 0.37)))
        return out

    rows = benchmark(extrapolate)
    table = PaperTable(
        "F2b",
        "Extrapolation to the paper's dataset sizes (from Southampton, day)",
        ["file", "raw bytes", "slice bytes", "raw time", "slice time"],
    )
    for label, raw, sliced, t_raw, t_slice in rows:
        table.add_row(label, raw, sliced,
                      format_duration(t_raw), format_duration(t_slice))
    table.show()

    for _label, raw, sliced, t_raw, t_slice in rows:
        assert sliced < raw / 1000
        assert t_slice < 60 < t_raw
