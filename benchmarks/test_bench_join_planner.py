"""Cost-aware planner benchmarks: hash join vs nested loop, range scans,
and Top-N pagination.

The acceptance bar for the planner work: an unindexed 1 000 x 1 000
equi-join must run at least 5x faster through the hash join than through
the naive nested loop (it is O(n+m) vs O(n*m), so the observed ratio is
far larger), and an inequality predicate over an indexed column must ride
``SortedIndex.range_scan`` instead of a sequential scan.

These medians feed the perf-regression CI gate (BENCH_planner.json via
scripts/check_bench_regression.py).
"""

import time

import pytest

from repro.bench import PaperTable, metadata_database
from repro.sqldb.database import Database

JOIN_ROWS = 1_000


def _join_database(rows: int = JOIN_ROWS) -> Database:
    """Two tables joined on deliberately unindexed payload columns."""
    db = Database()
    db.execute("CREATE TABLE L (K INTEGER PRIMARY KEY, B INTEGER)")
    db.execute("CREATE TABLE R (K INTEGER PRIMARY KEY, D INTEGER)")
    db.execute(
        "INSERT INTO L VALUES "
        + ", ".join(f"({i}, {i % rows})" for i in range(rows))
    )
    db.execute(
        "INSERT INTO R VALUES "
        + ", ".join(f"({i}, {i % rows})" for i in range(rows))
    )
    return db


JOIN_SQL = "SELECT L.K, R.K FROM L JOIN R ON L.B = R.D"


def test_bench_hash_join_1000x1000(benchmark):
    db = _join_database()
    assert "hash join" in db.explain(JOIN_SQL)
    result = benchmark(lambda: db.execute(JOIN_SQL))
    assert len(result.rows) == JOIN_ROWS


def test_bench_point_lookup_baseline(benchmark):
    """Unchanged access path; guards the planner against slowing down the
    common QBE point lookup (the regression gate tracks this median)."""
    db = metadata_database(1_000)
    sql = "SELECT TITLE FROM SIMULATION WHERE SIMULATION_KEY = ?"
    assert "PK_SIMULATION" in db.explain(sql, ("S00000042",))
    result = benchmark(lambda: db.execute(sql, ("S00000042",)))
    assert len(result.rows) == 1


def test_bench_range_scan_grid_size(benchmark):
    db = metadata_database(5_000)
    sql = "SELECT SIMULATION_KEY FROM SIMULATION WHERE GRID_SIZE > ?"
    assert "range scan SIMULATION via IX_GRID" in db.explain(sql, (128,))
    result = benchmark(lambda: db.execute(sql, (128,)))
    assert result.rows


def test_bench_topn_pagination(benchmark):
    db = metadata_database(5_000)
    sql = (
        "SELECT SIMULATION_KEY, TITLE FROM SIMULATION "
        "ORDER BY SIMULATION_KEY LIMIT 50"
    )
    assert "top-N sort (N=50)" in db.explain(sql)
    result = benchmark(lambda: db.execute(sql))
    assert len(result.rows) == 50


def test_bench_hash_join_vs_nested_loop(benchmark):
    """The acceptance criterion: >= 5x speedup on the unindexed equi-join."""
    db = _join_database()

    def measure():
        start = time.perf_counter()
        for _ in range(3):
            hashed = db.execute(JOIN_SQL)
        hash_time = (time.perf_counter() - start) / 3
        start = time.perf_counter()
        naive = db.execute(JOIN_SQL, pushdown=False)
        naive_time = time.perf_counter() - start
        assert sorted(hashed.rows) == sorted(naive.rows)
        return hash_time, naive_time

    hash_time, naive_time = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = PaperTable(
        "P1",
        f"unindexed {JOIN_ROWS}x{JOIN_ROWS} equi-join: hash join vs nested loop",
        ["strategy", "time", "speedup"],
    )
    table.add_row("nested loop (pushdown=off)", f"{naive_time * 1e3:.1f} ms", "1x")
    table.add_row(
        "hash join", f"{hash_time * 1e3:.1f} ms",
        f"{naive_time / hash_time:.0f}x",
    )
    table.show()

    assert naive_time / hash_time >= 5.0
