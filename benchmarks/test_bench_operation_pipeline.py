"""[F8] The operation invocation pipeline.

The "Input form for operation" / "Output from operation execution"
figures: resolve the operation, fetch the dataset locally, unpack the
archived code, execute it in the sandbox, collect the output.  This bench
times the whole pipeline and its variations: cache cold vs warm, the URL
operation path, and uploaded-code execution under the strict sandbox.
"""

import pytest

from repro.bench import PaperTable
from repro.operations import pack_code_archive

COLID = "RESULT_FILE.DOWNLOAD_RESULT"


@pytest.fixture
def row(archive):
    return archive.result_rows()[0]


def test_bench_fig8_getimage_cold(benchmark, engine, row):
    result = benchmark(
        lambda: engine.invoke(
            "GetImage", COLID, row, {"slice": "x1", "type": "u"},
            use_cache=False,
        )
    )
    assert "slice.pgm" in result.outputs


def test_bench_fig8_getimage_cached(benchmark, engine, row):
    engine.invoke("GetImage", COLID, row, {"slice": "x2", "type": "v"})

    result = benchmark(
        lambda: engine.invoke(
            "GetImage", COLID, row, {"slice": "x2", "type": "v"}
        )
    )
    assert result.cached


def test_bench_fig8_cache_speedup_table(benchmark, engine, row):
    import time

    def measure():
        engine.cache.clear()
        start = time.perf_counter()
        engine.invoke("GetImage", COLID, row, {"slice": "x3", "type": "w"})
        cold = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(10):
            engine.invoke("GetImage", COLID, row, {"slice": "x3", "type": "w"})
        warm = (time.perf_counter() - start) / 10
        return cold, warm

    cold, warm = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = PaperTable(
        "F8",
        "Operation result caching (future-work feature)",
        ["path", "latency", "speedup"],
    )
    table.add_row("cold (sandboxed execution)", f"{cold * 1000:.1f} ms", "1x")
    table.add_row("warm (cache hit)", f"{warm * 1000:.2f} ms", f"{cold / warm:.0f}x")
    table.show()
    assert warm < cold


def test_bench_fig8_url_operation(benchmark, engine, row):
    result = benchmark(
        lambda: engine.invoke("SDB", COLID, row, use_cache=False)
    )
    assert "sdb.html" in result.outputs


def test_bench_fig8_uploaded_code(benchmark, engine, archive, row):
    from repro.operations import CodeUploader

    uploader = CodeUploader(engine)
    user = archive.users.user("turbulence")
    code = pack_code_archive({
        "MeanU.py": (
            b"import struct, array\n"
            b"fh = open(INPUT_FILENAME, 'rb')\n"
            b"data = fh.read()\n"
            b"fh.close()\n"
            b"nx, ny, nz = struct.unpack('<iii', data[4:16])\n"
            b"count = nx * ny * nz\n"
            b"u = array.array('f')\n"
            b"u.frombytes(data[16:16 + 4 * count])\n"
            b"out = open('mean.txt', 'w')\n"
            b"out.write(str(sum(u) / count))\n"
            b"out.close()\n"
        )
    })

    result = benchmark(
        lambda: uploader.run_upload(COLID, row, code, "MeanU", user=user)
    )
    assert "mean.txt" in result.outputs


def test_bench_fig8_pipeline_stage_breakdown(benchmark, archive, sandbox_root, row):
    """Per-stage timing through the progress-monitoring hooks (another
    future-work feature: runtime monitoring of operation progress)."""
    import time

    engine = archive.make_engine(f"{sandbox_root}/f8stages")
    stamps = []
    engine.add_progress_listener(
        lambda op, stage, detail: stamps.append((stage, time.perf_counter()))
    )

    def run():
        stamps.clear()
        start = time.perf_counter()
        engine.invoke(
            "GetImage", COLID, row, {"slice": "x1", "type": "p"},
            use_cache=False,
        )
        return start, time.perf_counter()

    start, end = benchmark.pedantic(run, rounds=1, iterations=1)
    stages = [s for s, _ in stamps]
    assert stages == ["resolve", "fetch", "unpack", "execute", "collect"]

    table = PaperTable(
        "F8b",
        "GetImage pipeline stage breakdown",
        ["stage", "elapsed to stage start"],
    )
    for stage, stamp in stamps:
        table.add_row(stage, f"{(stamp - start) * 1000:.2f} ms")
    table.add_row("TOTAL", f"{(end - start) * 1000:.2f} ms")
    table.show()
