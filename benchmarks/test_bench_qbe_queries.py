"""[F6] The schema-driven QBE query interface.

The "Searching the archive" / "Result table" figures: a generated query
form translates into SQL and executes against the metadata database.
This bench measures the full QBE path (form params -> SQL -> execution ->
rows) across metadata sizes, and shows the value of indexing the searched
columns.  Expected shape: indexed equality lookups stay ~flat as the
table grows; LIKE scans grow linearly.
"""

import pytest

from repro.bench import PaperTable, metadata_database
from repro.web.qbe import build_query_from_params

ROW_COUNTS = (100, 1_000, 5_000)


def _qbe_lookup(db):
    query = build_query_from_params(
        "SIMULATION",
        {"show_TITLE": "on", "show_GRID_SIZE": "on",
         "val_SIMULATION_KEY": "S00000042", "op_SIMULATION_KEY": "="},
    )
    query.bind_types(db.catalog.schema("SIMULATION"))
    sql, params = query.to_sql()
    return db.execute(sql, params)


def _qbe_like_scan(db):
    query = build_query_from_params(
        "SIMULATION",
        {"show_TITLE": "on", "val_TITLE": "%case 3%", "op_TITLE": "="},
    )
    sql, params = query.to_sql()
    return db.execute(sql, params)


@pytest.mark.parametrize("rows", ROW_COUNTS)
def test_bench_fig6_qbe_point_lookup(benchmark, rows):
    db = metadata_database(rows)
    result = benchmark(lambda: _qbe_lookup(db))
    assert len(result.rows) == 1
    # the lookup must ride the primary-key index
    assert "PK_SIMULATION" in db.explain(
        "SELECT TITLE FROM SIMULATION WHERE SIMULATION_KEY = 'S00000042'"
    )


@pytest.mark.parametrize("rows", ROW_COUNTS)
def test_bench_fig6_qbe_wildcard_scan(benchmark, rows):
    db = metadata_database(rows)
    result = benchmark(lambda: _qbe_like_scan(db))
    assert len(result.rows) == rows // 17 + (1 if rows % 17 > 3 else 0)


def test_bench_fig6_lookup_vs_scan_shape(benchmark):
    """Summary table: lookup stays flat while the scan grows with rows."""
    import time

    def measure():
        out = []
        for rows in ROW_COUNTS:
            db = metadata_database(rows)
            start = time.perf_counter()
            for _ in range(20):
                _qbe_lookup(db)
            lookup = (time.perf_counter() - start) / 20
            start = time.perf_counter()
            for _ in range(5):
                _qbe_like_scan(db)
            scan = (time.perf_counter() - start) / 5
            out.append((rows, lookup, scan))
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = PaperTable(
        "F6",
        "QBE query cost vs archive size (point lookup vs LIKE scan)",
        ["rows", "indexed lookup", "LIKE scan", "scan/lookup"],
    )
    for rows, lookup, scan in results:
        table.add_row(
            rows, f"{lookup * 1e6:.0f} us", f"{scan * 1e6:.0f} us",
            f"{scan / lookup:.0f}x",
        )
    table.show()

    small_lookup = results[0][1]
    large_lookup = results[-1][1]
    small_scan = results[0][2]
    large_scan = results[-1][2]
    # scans grow ~linearly (50x rows -> >10x time); lookups stay ~flat
    assert large_scan > small_scan * 10
    assert large_lookup < small_lookup * 10


def test_bench_fig6_full_web_search(benchmark, archive, sandbox_root):
    """End-to-end: servlet dispatch + QBE + rendering of the hyperlinked
    result table (the 'Result table from querying SIMULATION' figure)."""
    from repro.web import EasiaApp

    engine = archive.make_engine(f"{sandbox_root}/f6")
    app = EasiaApp(
        archive.db, archive.linker, archive.document, archive.users, engine
    )
    session = app.login("guest", "guest")

    response = benchmark(
        lambda: app.get(
            "/search",
            {"table": "SIMULATION", "show_SIMULATION_KEY": "on",
             "show_TITLE": "on", "show_AUTHOR_KEY": "on",
             "val_GRID_SIZE": "16", "op_GRID_SIZE": "="},
            session_id=session,
        )
    )
    assert response.ok
    assert 'class="fk"' in response.text
    assert 'class="pk"' in response.text
