"""[A5] Replication failover: downloads survive a dead replica.

The acceptance scenario for the replication work, measured: build a
replicated archive (factor 2), run a burst of DATALINK downloads through
the web tier with every replica up, kill each logical host's primary,
and run the same burst again.

Gates (checked by ``scripts/check_bench_regression.py --replication``
over ``BENCH_replication.json``):

* ``failover_errors`` must be 0 — with one replica of each set dead,
  every download still returns 200;
* ``overhead_ratio`` (degraded time / healthy time) must stay under the
  configured ceiling — failover costs one extra in-process hop, not a
  timeout spiral;
* after an anti-entropy repair of a deliberately corrupted follower,
  every replica set is checksum-clean again.
"""

import json
import tempfile
import time
from pathlib import Path

from repro.bench import PaperTable
from repro.replication import check_replica_set

DOWNLOADS = 60  # per phase
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_replication.json"


def _build_portal():
    from repro import EasiaApp
    from repro.turbulence import build_turbulence_archive

    archive = build_turbulence_archive(
        n_simulations=2, timesteps=2, replication_factor=2
    )
    engine = archive.make_engine(tempfile.mkdtemp(prefix="easia-bench-repl-"))
    app = EasiaApp(
        archive.db, archive.linker, archive.document, archive.users, engine
    )
    session = app.login("turbulence", "consortium")
    urls = [
        value.url
        for (value,) in archive.db.execute(
            "SELECT DOWNLOAD_RESULT FROM RESULT_FILE"
        ).rows
    ]
    return archive, app, session, urls


def _download_burst(app, session, urls, n):
    """Run n downloads round-robin over urls; return (seconds, errors)."""
    errors = 0
    started = time.perf_counter()
    for i in range(n):
        response = app.get(
            "/download", {"url": urls[i % len(urls)]}, session_id=session
        )
        if response.status != 200:
            errors += 1
    return time.perf_counter() - started, errors


def test_bench_a5_failover_download(benchmark):
    def measure():
        archive, app, session, urls = _build_portal()
        healthy_s, healthy_errors = _download_burst(
            app, session, urls, DOWNLOADS
        )
        for replica_set in archive.servers:
            replica_set.kill(replica_set.primary.host)
        degraded_s, degraded_errors = _download_burst(
            app, session, urls, DOWNLOADS
        )
        failovers = sum(rs.failovers for rs in archive.servers)

        # anti-entropy: revive, corrupt one follower, repair to clean
        for replica_set in archive.servers:
            replica_set.revive(replica_set.replicas[0].host)
        victim = archive.servers[0].followers[0]
        path = next(iter(victim.server.manifest()))
        victim.server.filesystem.dl_put(path, b"bit-rot")
        repair_findings = sum(
            len(report.findings) for report in archive.replication.repair()
        )
        clean = all(
            check_replica_set(rs).consistent for rs in archive.servers
        )
        return (healthy_s, healthy_errors, degraded_s, degraded_errors,
                failovers, repair_findings, clean)

    (healthy_s, healthy_errors, degraded_s, degraded_errors,
     failovers, repair_findings, clean) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    overhead = degraded_s / max(healthy_s, 1e-9)

    table = PaperTable(
        "A5",
        f"{DOWNLOADS} portal downloads per phase, replication factor 2",
        ["phase", "seconds", "downloads/s", "errors"],
    )
    table.add_row("all replicas up", f"{healthy_s:.3f}",
                  f"{DOWNLOADS / healthy_s:.0f}", str(healthy_errors))
    table.add_row("primaries killed", f"{degraded_s:.3f}",
                  f"{DOWNLOADS / degraded_s:.0f}", str(degraded_errors))
    table.add_row("failover overhead", f"{overhead:.2f}x", "", "")
    table.show()

    RESULT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "replication.failover_download",
                "replication_factor": 2,
                "downloads_per_phase": DOWNLOADS,
                "healthy_seconds": round(healthy_s, 4),
                "degraded_seconds": round(degraded_s, 4),
                "healthy_errors": healthy_errors,
                "failover_errors": degraded_errors,
                "failovers": failovers,
                "overhead_ratio": round(overhead, 3),
                "repair_findings": repair_findings,
                "repair_clean": clean,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    assert healthy_errors == 0
    assert degraded_errors == 0, (
        f"{degraded_errors} downloads failed with a replica dead"
    )
    assert failovers >= DOWNLOADS  # every degraded download failed over
    assert repair_findings >= 1 and clean
