"""[T1] Table 1 — experimental ftp bandwidth measurements.

Regenerates the paper's table exactly: estimated transfer times for the
small (85 MByte) and large (544 MByte) simulation files at the four
measured day/evening rates.  The paper's own numbers are arithmetic over
the measured bandwidths, so measured-vs-paper must agree to the second.
"""

import pytest

from repro.bench import PaperTable
from repro.netsim import (
    MBYTE,
    PAPER_RATES,
    Network,
    SimClock,
    TransferEngine,
    format_duration,
    transfer_seconds,
)

SMALL = 85 * MBYTE
LARGE = 544 * MBYTE

PAPER_ROWS = [
    # (period, direction, rate, paper small, paper large)
    ("Day", "to_southampton", 0.25, "45m20s", "4h50m08s"),
    ("Day", "from_southampton", 0.37, "30m38s", "3h16m02s"),
    ("Evening", "to_southampton", 0.58, "19m32s", "2h05m03s"),
    ("Evening", "from_southampton", 1.94, "5m51s", "37m23s"),
]

_DIRECTION_LABEL = {
    "to_southampton": "To Southampton",
    "from_southampton": "From Southampton",
}


def _regenerate_table() -> list[tuple]:
    rows = []
    for period, direction, rate, paper_small, paper_large in PAPER_ROWS:
        small = format_duration(transfer_seconds(SMALL, rate))
        large = format_duration(transfer_seconds(LARGE, rate))
        rows.append(
            (period, direction, rate, paper_small, small, paper_large, large)
        )
    return rows


def test_bench_table1_regeneration(benchmark):
    rows = benchmark(_regenerate_table)

    table = PaperTable(
        "T1",
        "Experimental ftp bandwidth measurements (85 MB / 544 MB files)",
        ["Time", "Direction", "Mbit/s",
         "small (paper)", "small (ours)", "large (paper)", "large (ours)"],
    )
    for period, direction, rate, ps, ms, pl, ml in rows:
        table.add_row(period, _DIRECTION_LABEL[direction], rate, ps, ms, pl, ml)
    table.show()

    for _period, _direction, _rate, paper_small, small, paper_large, large in rows:
        assert small == paper_small
        assert large == paper_large


def test_bench_table1_through_topology(benchmark):
    """The same numbers via the full topology + clock machinery (daytime)."""
    network = Network.paper_topology()
    engine = TransferEngine(network, SimClock(start_hour=10.0))

    def durations():
        return (
            engine.duration("qmw.london", "southampton", SMALL),
            engine.duration("qmw.london", "southampton", LARGE),
            engine.duration("southampton", "qmw.london", SMALL),
            engine.duration("southampton", "qmw.london", LARGE),
        )

    to_small, to_large, from_small, from_large = benchmark(durations)
    assert format_duration(to_small) == "45m20s"
    assert format_duration(to_large) == "4h50m08s"
    assert format_duration(from_small) == "30m38s"
    assert format_duration(from_large) == "3h16m02s"


@pytest.mark.parametrize("start_hour,expected_better", [(17.5, True), (10.0, False)])
def test_bench_table1_day_evening_boundary(benchmark, start_hour, expected_better):
    """Transfers straddling the evening boundary beat the all-day rate —
    the effect behind the paper's advice to transfer in the evening."""
    network = Network.paper_topology()
    engine = TransferEngine(network, SimClock(start_hour=start_hour))

    duration = benchmark(
        lambda: engine.duration("qmw.london", "southampton", LARGE)
    )
    all_day = transfer_seconds(LARGE, 0.25)
    if expected_better:
        assert duration < all_day
    else:
        assert duration == pytest.approx(all_day)
