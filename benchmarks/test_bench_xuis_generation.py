"""[F7] Automatic XUIS generation.

The paper ships "a tool to generate automatically a default user interface
specification, in the form of an XML document, for a given database".
This bench measures the generator (plus serialise / parse / validate
round-trip) as the schema grows.  Expected shape: cost grows ~linearly
with schema size; a realistic archive schema generates in milliseconds —
supporting the claim that the interface "requires little database or Web
development experience to install".
"""

import pytest

from repro.bench import PaperTable
from repro.sqldb import Database
from repro.xuis import (
    generate_default_xuis,
    parse_xuis,
    serialize_xuis,
    validate_xuis,
)

SCHEMA_SIZES = ((5, 8), (10, 16), (20, 24))  # (tables, columns per table)


def _make_schema(n_tables: int, n_columns: int) -> Database:
    db = Database()
    for t in range(n_tables):
        columns = [f"K VARCHAR(20) PRIMARY KEY"]
        for c in range(n_columns - 1):
            columns.append(f"C{c} VARCHAR(40)")
        if t > 0:
            columns.append(f"PARENT VARCHAR(20) REFERENCES T0 (K)")
        db.execute(f"CREATE TABLE T{t} ({', '.join(columns)})")
        # sample data for <samples>
        for r in range(3):
            values = [f"'k{t}_{r}'"] + [f"'v{c}_{r}'" for c in range(n_columns - 1)]
            if t > 0:
                values.append("NULL")
            db.execute(f"INSERT INTO T{t} VALUES ({', '.join(values)})")
    return db


@pytest.mark.parametrize("n_tables,n_columns", SCHEMA_SIZES)
def test_bench_fig7_generate(benchmark, n_tables, n_columns):
    db = _make_schema(n_tables, n_columns)
    document = benchmark(lambda: generate_default_xuis(db))
    assert len(document.tables) == n_tables
    assert validate_xuis(document, db) == []


def test_bench_fig7_round_trip(benchmark):
    db = _make_schema(10, 16)
    document = generate_default_xuis(db)

    def round_trip():
        text = serialize_xuis(document)
        again = parse_xuis(text)
        return text, again

    text, again = benchmark(round_trip)
    assert len(again.tables) == 10
    assert validate_xuis(again, db) == []


def test_bench_fig7_scaling_table(benchmark):
    import time

    def measure():
        out = []
        for n_tables, n_columns in SCHEMA_SIZES:
            db = _make_schema(n_tables, n_columns)
            start = time.perf_counter()
            document = generate_default_xuis(db)
            generate = time.perf_counter() - start
            start = time.perf_counter()
            text = serialize_xuis(document)
            serialise = time.perf_counter() - start
            start = time.perf_counter()
            problems = validate_xuis(parse_xuis(text), db)
            check = time.perf_counter() - start
            assert problems == []
            out.append((n_tables, n_columns, len(text), generate, serialise, check))
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = PaperTable(
        "F7",
        "Default XUIS generation vs schema size",
        ["tables", "cols/table", "XML bytes", "generate", "serialise",
         "parse+validate"],
    )
    for n_tables, n_columns, nbytes, generate, serialise, check in results:
        table.add_row(
            n_tables, n_columns, nbytes,
            f"{generate * 1000:.1f} ms", f"{serialise * 1000:.1f} ms",
            f"{check * 1000:.1f} ms",
        )
    table.show()

    # Shape: ~linear growth — 12x the schema costs far less than 100x.
    small = results[0][3]
    large = results[-1][3]
    assert large < small * 120
    # And absolute cost stays interactive (well under a second).
    assert large < 1.0
