"""Day-2 operations: administering a running EASIA archive.

Walks the curator-facing machinery: coordinated backup and restore,
datalink reconciliation after a file-server mishap, persisted operation
statistics, and point-in-time file versions.

Run:  python examples/archive_administration.py
"""

import tempfile

from repro import build_turbulence_archive, coordinated_backup, coordinated_restore
from repro.datalink import TokenManager, reconcile, repair
from repro.operations import OperationStats

COLID = "RESULT_FILE.DOWNLOAD_RESULT"


def main() -> None:
    archive = build_turbulence_archive(n_simulations=2, timesteps=2, grid=12)
    engine = archive.make_engine(tempfile.mkdtemp(prefix="easia-admin-"))

    # -- 1. accumulate and persist operation statistics ---------------------
    for row in archive.result_rows():
        engine.invoke("FieldStats", COLID, row, use_cache=False)
    engine.stats.persist(archive.db)
    stored = archive.db.execute(
        "SELECT NAME, INVOCATIONS FROM OPERATION_STATS"
    ).rows
    print("persisted statistics:", stored)

    # -- 2. coordinated backup ------------------------------------------------
    backup_dir = tempfile.mkdtemp(prefix="easia-backup-")
    manifest = coordinated_backup(archive.db, archive.linker, backup_dir)
    print(
        f"backup: {len(manifest['files'])} linked file(s), "
        f"{manifest['byte_total']:,} bytes + full metadata"
    )

    # -- 3. a file-server mishap and reconciliation ----------------------------
    victim = archive.result_rows()[0][COLID]
    server = archive.linker.server(victim.host)
    # simulate a server restored from raw files: content intact, control lost
    server.dl_unlink(victim.server_path, delete=False)
    report = reconcile(archive.db, archive.linker)
    print("\nreconcile after mishap:")
    print(report.describe())
    after = repair(archive.db, archive.linker)
    print("after repair: consistent =", after.consistent)

    # -- 4. full disaster: restore everything from the backup -------------------
    db2, linker2 = coordinated_restore(
        backup_dir, TokenManager(validity_seconds=600)
    )
    count = db2.execute("SELECT COUNT(*) FROM RESULT_FILE").scalar()
    value = db2.execute("SELECT DOWNLOAD_RESULT FROM RESULT_FILE LIMIT 1").scalar()
    data = linker2.download(value)
    print(
        f"\nrestored archive: {count} result files; "
        f"test download of {value.filename}: {len(data):,} bytes OK"
    )
    stats2 = OperationStats.load(db2)
    print("statistics survived the restore:", stats2.report() or "(none)")

    # -- 5. the queryable catalog for curators -----------------------------------
    print("\ncatalog views:")
    for name, rows in db2.execute(
        "SELECT TABLE_NAME, ROW_COUNT FROM SYSTABLES ORDER BY TABLE_NAME"
    ).rows:
        print(f"  {name:20} {rows} row(s)")


if __name__ == "__main__":
    main()
