"""The bandwidth study behind the architecture.

Recomputes the paper's Table 1 from the calibrated network model, then
quantifies the two design decisions it motivated: archive data where it
is generated, and reduce data server-side before shipping it.

Run:  python examples/bandwidth_study.py
"""

from repro import MBYTE, Network, SimClock, TransferEngine, format_duration, transfer_seconds
from repro.netsim import PAPER_RATES

SMALL, LARGE = 85 * MBYTE, 544 * MBYTE


def table1() -> None:
    print("Table 1 — estimated transfer times (calibrated to the paper):")
    print(f"  {'Time':8} {'Direction':18} {'Mbit/s':7} {'85 MB':>10} {'544 MB':>10}")
    for (period, direction), rate in PAPER_RATES.items():
        small = format_duration(transfer_seconds(SMALL, rate))
        large = format_duration(transfer_seconds(LARGE, rate))
        label = direction.replace("_", " ").title()
        print(f"  {period.title():8} {label:18} {rate:<7} {small:>10} {large:>10}")


def crossing_the_evening_boundary() -> None:
    print("\nStarting a large upload 30 minutes before the evening boundary:")
    engine = TransferEngine(Network.paper_topology(), SimClock(start_hour=17.5))
    crossing = engine.duration("qmw.london", "southampton", LARGE)
    all_day = transfer_seconds(LARGE, 0.25)
    print(f"  all at day rate : {format_duration(all_day)}")
    print(f"  crossing 18:00  : {format_duration(crossing)}")


def archive_where_generated() -> None:
    print("\nArchiving 5 large simulations (544 MB each), generated at QMW:")
    engine = TransferEngine(Network.paper_topology(), SimClock(start_hour=10.0))
    for i in range(5):
        engine.transfer("qmw.london", "southampton", LARGE, f"upload {i}")
    central = engine.clock.now

    engine = TransferEngine(Network.paper_topology(), SimClock(start_hour=10.0))
    for i in range(5):
        engine.transfer("qmw.london", "qmw.london", LARGE, f"local archive {i}")
        engine.transfer("qmw.london", "southampton", 1024, f"metadata {i}")
    distributed = engine.clock.now
    print(f"  ship to central archive : {format_duration(central)}")
    print(f"  archive where generated : {format_duration(distributed)} "
          "(metadata only crosses the WAN)")


def reduce_before_shipping() -> None:
    print("\nShipping a visualisation instead of the dataset (day, from archive):")
    n = round((LARGE / 16) ** (1 / 3))  # grid implied by a 4-field float32 file
    slice_bytes = n * n + 15
    print(f"  raw 544 MB file : {format_duration(transfer_seconds(LARGE, 0.37))}")
    print(f"  one {n}x{n} slice image ({slice_bytes:,} B): "
          f"{format_duration(transfer_seconds(slice_bytes, 0.37))}")


def main() -> None:
    table1()
    crossing_the_evening_boundary()
    archive_where_generated()
    reduce_before_shipping()


if __name__ == "__main__":
    main()
