"""Regenerate the paper's interface figures as an HTML gallery.

The paper's remaining figures are screenshots of the generated interface:
the query form, the result table with its browsing hyperlinks, the
operations column, an operation's input form, an operation's output, and
the user-management page.  This script drives the live application and
writes each page to ``ui_gallery/`` so they can be opened in a browser
and compared against the paper side by side.

Run:  python examples/generate_ui_gallery.py [output_dir]
"""

import os
import sys
import tempfile

from repro import EasiaApp, build_turbulence_archive


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "ui_gallery"
    os.makedirs(out_dir, exist_ok=True)

    archive = build_turbulence_archive(
        n_simulations=3, timesteps=3, grid=16, n_file_servers=2
    )
    engine = archive.make_engine(tempfile.mkdtemp(prefix="easia-gallery-"))
    app = EasiaApp(
        archive.db, archive.linker, archive.document, archive.users, engine
    )
    guest = app.login("guest", "guest")
    member = app.login("turbulence", "consortium")
    admin = app.login("admin", "hpcadmin")
    sim = archive.simulation_keys[0]

    pages = {
        # figure: "Searching the archive" — the generated QBE query form
        "01_query_form.html": app.get(
            "/query", {"table": "SIMULATION"}, session_id=guest
        ),
        # figure: "Result table from querying SIMULATION table"
        "02_result_table.html": app.get(
            "/search",
            {"table": "SIMULATION", "show_SIMULATION_KEY": "on",
             "show_AUTHOR_KEY": "on", "show_TITLE": "on",
             "show_GRID_SIZE": "on"},
            session_id=guest,
        ),
        # figure: "Result table showing operations available" (member view
        # also shows the restricted Subsample and the upload link)
        "03_operations_column.html": app.get(
            "/table", {"name": "RESULT_FILE"}, session_id=member
        ),
        # figure: "Input form for operation (generated according to XUIS)"
        "04_operation_form.html": app.get(
            "/operation/form",
            {"name": "GetImage", "colid": "RESULT_FILE.DOWNLOAD_RESULT",
             "key_FILE_NAME": "ts0000.turb", "key_SIMULATION_KEY": sim},
            session_id=guest,
        ),
        # figure: "NCSA's SDB invoked on a dataset managed within our
        # interface" (URL operation output)
        "05_sdb_output.html": app.post(
            "/operation/run",
            {"name": "SDB", "colid": "RESULT_FILE.DOWNLOAD_RESULT",
             "key_FILE_NAME": "ts0000.turb", "key_SIMULATION_KEY": sim},
            session_id=guest,
        ),
        # figure: "Web-based user management"
        "06_user_management.html": app.get("/admin/users", session_id=admin),
        # future-work pages implemented in this reproduction
        "07_operation_progress.html": app.get(
            "/operation/progress", session_id=guest
        ),
        "08_operation_stats.html": app.get("/stats", session_id=guest),
    }

    # figure: "Output from operation execution" — the rendered slice image
    image = app.post(
        "/operation/run",
        {"name": "GetImage", "colid": "RESULT_FILE.DOWNLOAD_RESULT",
         "key_FILE_NAME": "ts0000.turb", "key_SIMULATION_KEY": sim,
         "slice": "x4", "type": "p"},
        session_id=guest,
    )

    for name, response in pages.items():
        if not response.ok:
            raise SystemExit(f"{name}: HTTP {response.status}: {response.text[:200]}")
        with open(os.path.join(out_dir, name), "w", encoding="utf-8") as fh:
            fh.write(response.text)
        print(f"wrote {name} ({len(response.text)} chars)")
    with open(os.path.join(out_dir, "09_operation_output.pgm"), "wb") as fh:
        fh.write(image.body)
    print(f"wrote 09_operation_output.pgm ({len(image.body)} bytes)")
    print(f"\nGallery in {out_dir}/ — open the HTML files in a browser.")


if __name__ == "__main__":
    main()
