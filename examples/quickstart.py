"""Quickstart: a minimal EASIA archive in ~60 lines.

Creates a database with one DATALINKed table, registers a file server,
archives a file *where it was generated*, and walks the SQL/MED behaviour
the paper demonstrates: token-gated download, rename/delete blocking, and
transactional consistency between metadata and files.

Run:  python examples/quickstart.py
"""

from repro import Database, DataLinker, FileServer, TokenManager
from repro.errors import FileLockedError, TokenExpiredError


def main() -> None:
    # -- 1. wire the architecture -----------------------------------------
    tokens = TokenManager(validity_seconds=600)
    linker = DataLinker(tokens)
    server = linker.register_server(FileServer("fs1.soton.ac.uk"))

    db = Database()
    db.set_datalink_hooks(linker)
    db.execute(
        "CREATE TABLE RESULT_FILE ("
        "  FILE_NAME VARCHAR(40) PRIMARY KEY,"
        "  DESCRIPTION VARCHAR(100),"
        "  DOWNLOAD_RESULT DATALINK LINKTYPE URL FILE LINK CONTROL"
        "    INTEGRITY ALL READ PERMISSION DB WRITE PERMISSION BLOCKED"
        "    RECOVERY YES ON UNLINK RESTORE)"
    )

    # -- 2. archive a dataset where it was generated ----------------------
    dataset = b"simulation output " * 1000
    server.put("/data/run42/ts0001.dat", dataset)
    db.execute(
        "INSERT INTO RESULT_FILE VALUES (?, ?, ?)",
        ("ts0001.dat", "timestep 1 of run 42",
         "http://fs1.soton.ac.uk/data/run42/ts0001.dat"),
    )
    print("archived:", len(dataset), "bytes (file stayed on its server)")

    # -- 3. SELECT yields a token-carrying URL ----------------------------
    value = db.execute(
        "SELECT DOWNLOAD_RESULT FROM RESULT_FILE WHERE FILE_NAME = 'ts0001.dat'"
    ).scalar()
    print("select returned:", value.tokenized_url)
    print("linked file size:", value.size, "bytes")

    # -- 4. the token grants the download ----------------------------------
    downloaded = linker.download(value)
    assert downloaded == dataset
    print("download through token: OK")

    # -- 5. link control protects the file ---------------------------------
    try:
        server.filesystem.delete("/data/run42/ts0001.dat")
    except FileLockedError as exc:
        print("delete blocked by FILE LINK CONTROL:", exc)

    # -- 6. transaction consistency ----------------------------------------
    server.put("/data/run42/ts0002.dat", b"second timestep")
    try:
        with db.transaction():
            db.execute(
                "INSERT INTO RESULT_FILE VALUES (?, ?, ?)",
                ("ts0002.dat", "doomed",
                 "http://fs1.soton.ac.uk/data/run42/ts0002.dat"),
            )
            raise RuntimeError("simulated failure before commit")
    except RuntimeError:
        pass
    linked = server.filesystem.entry("/data/run42/ts0002.dat").linked
    rows = db.execute("SELECT COUNT(*) FROM RESULT_FILE").scalar()
    print(f"after rollback: {rows} row(s), ts0002 linked = {linked}")

    # -- 7. deleting the row releases the file (ON UNLINK RESTORE) --------
    db.execute("DELETE FROM RESULT_FILE WHERE FILE_NAME = 'ts0001.dat'")
    entry = server.filesystem.entry("/data/run42/ts0001.dat")
    print("after DELETE: file still on server =", True, "| linked =", entry.linked)


if __name__ == "__main__":
    main()
