"""Serve the EASIA portal over real HTTP.

Builds the turbulence demo archive and serves it with the stdlib WSGI
server — point a browser at http://localhost:8080/login and sign in as
guest/guest (the paper's demo credentials; turbulence/consortium and
admin/hpcadmin also exist).

Run:  python examples/serve_portal.py [port]
"""

import sys
import tempfile
from wsgiref.simple_server import make_server

from repro import EasiaApp, build_turbulence_archive
from repro.web.wsgi import WsgiAdapter


def main() -> None:
    port = int(sys.argv[1]) if len(sys.argv) > 1 else 8080
    archive = build_turbulence_archive(
        n_simulations=4, timesteps=3, grid=24, n_file_servers=2
    )
    engine = archive.make_engine(tempfile.mkdtemp(prefix="easia-sandbox-"))
    app = EasiaApp(
        archive.db, archive.linker, archive.document, archive.users, engine
    )
    httpd = make_server("", port, WsgiAdapter(app))
    print(f"EASIA portal at http://localhost:{port}/login  (guest/guest)")
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        print("\nbye")


if __name__ == "__main__":
    main()
