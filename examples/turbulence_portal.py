"""The full UK Turbulence Consortium scenario.

Builds the paper's demo archive (authors, simulations, per-timestep
result files distributed over two file servers, post-processing codes
archived as DATALINKs) and drives the web interface exactly as the
paper's walkthrough does: log in as guest/guest, search with QBE, browse
by key, run the GetImage visualisation operation.

Run:  python examples/turbulence_portal.py
"""

import tempfile

from repro import EasiaApp, build_turbulence_archive


def show(title: str, text: str, lines: int = 6) -> None:
    print(f"\n--- {title} " + "-" * max(0, 60 - len(title)))
    for line in text.splitlines()[:lines]:
        print(" ", line[:110])


def main() -> None:
    archive = build_turbulence_archive(
        n_simulations=3, timesteps=3, grid=16, n_file_servers=2
    )
    engine = archive.make_engine(tempfile.mkdtemp(prefix="easia-sandbox-"))
    app = EasiaApp(
        archive.db, archive.linker, archive.document, archive.users, engine
    )

    print("Archive built:")
    for server in archive.servers:
        print(
            f"  {server.host}: {len(server.filesystem)} files, "
            f"{server.filesystem.total_bytes():,} bytes"
        )

    # guest/guest — the paper's demo credentials
    session = app.login("guest", "guest")
    show("Home page", app.get("/", session_id=session).text)

    # QBE search: simulations on grids >= 16
    results = app.get(
        "/search",
        {"table": "SIMULATION", "show_SIMULATION_KEY": "on",
         "show_TITLE": "on", "show_AUTHOR_KEY": "on",
         "val_GRID_SIZE": "16", "op_GRID_SIZE": ">="},
        session_id=session,
    )
    show("QBE search results (note the fk/pk hyperlinks)", results.text, 10)

    # primary-key browsing into RESULT_FILE
    sim_key = archive.simulation_keys[0]
    children = app.get(
        "/browse/pk",
        {"ref": "RESULT_FILE.SIMULATION_KEY", "value": sim_key},
        session_id=session,
    )
    show(f"PK browse: result files of {sim_key}", children.text, 8)

    # run GetImage server-side; only the rendered slice ships
    image = app.post(
        "/operation/run",
        {"name": "GetImage", "colid": "RESULT_FILE.DOWNLOAD_RESULT",
         "key_FILE_NAME": "ts0000.turb", "key_SIMULATION_KEY": sim_key,
         "slice": "x4", "type": "p"},
        session_id=session,
    )
    row = archive.result_rows(sim_key)[0]
    print(
        f"\nGetImage: dataset {row['RESULT_FILE.FILE_SIZE']:,} B stayed on "
        f"the server; {len(image.body):,} B ({image.content_type}) shipped "
        f"to the user — a {row['RESULT_FILE.FILE_SIZE'] / len(image.body):.0f}x reduction"
    )

    # guests cannot download raw datasets
    url = row["RESULT_FILE.DOWNLOAD_RESULT"].url
    denied = app.get("/download", {"url": url}, session_id=session)
    print(f"guest raw-download attempt -> HTTP {denied.status}")

    # a consortium member can
    member = app.login("turbulence", "consortium")
    granted = app.get("/download", {"url": url}, session_id=member)
    print(f"member raw-download -> HTTP {granted.status}, {len(granted.body):,} B")

    # operation statistics accumulate for future users
    show("Operation statistics", app.get("/stats", session_id=session).text, 8)


if __name__ == "__main__":
    main()
