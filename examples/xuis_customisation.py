"""XUIS generation, customisation and personalisation.

Demonstrates the paper's "separating the user interface specification
from the user interface processing" claims:

1. generate the default XUIS from the database catalog,
2. validate it against the DTD rules and the catalog,
3. customise it — aliases, a foreign-key substitute column, hidden
   attributes, a user-defined relationship with no RI constraint behind it,
4. personalise — guests get a trimmed interface over the same data,
5. show that the rendered HTML follows the XML, not the code.

Run:  python examples/xuis_customisation.py
"""

from repro import Database
from repro.web.forms import render_query_form
from repro.xuis import (
    Customizer,
    generate_default_xuis,
    personalise,
    serialize_xuis,
    validate_xuis,
)


def main() -> None:
    db = Database()
    db.execute(
        "CREATE TABLE AUTHOR (AUTHOR_KEY VARCHAR(30) PRIMARY KEY, "
        "NAME VARCHAR(50) NOT NULL, EMAIL VARCHAR(60))"
    )
    db.execute(
        "CREATE TABLE SIMULATION (SIMULATION_KEY VARCHAR(30) PRIMARY KEY, "
        "AUTHOR_KEY VARCHAR(30) REFERENCES AUTHOR (AUTHOR_KEY), "
        "TITLE VARCHAR(80), GRID_SIZE INTEGER)"
    )
    db.execute(
        "INSERT INTO AUTHOR VALUES "
        "('A19990110151042', 'Mark Papiani', 'papiani@computer.org'),"
        "('A19990209151042', 'Jasmin Wason', 'jlw98r@ecs.soton.ac.uk')"
    )
    db.execute(
        "INSERT INTO SIMULATION VALUES ('S1', 'A19990110151042', 'Channel', 128)"
    )

    # 1. the generation tool
    default = generate_default_xuis(db, title="Demo Archive")
    print("default XUIS problems:", validate_xuis(default, db))
    xml = serialize_xuis(default)
    print("\n--- default XUIS (first 25 lines) ---")
    print("\n".join(xml.splitlines()[:25]))

    # 3. customisation
    custom = (
        Customizer(default)
        .table_alias("SIMULATION", "Numerical Simulations")
        .column_alias("SIMULATION.GRID_SIZE", "Grid points per axis")
        .substitute_fk("SIMULATION.AUTHOR_KEY", "AUTHOR.NAME")
        .hide_column("AUTHOR.EMAIL")
        .set_samples("SIMULATION.TITLE", ["user defined sample 1",
                                          "user defined sample value 2"])
        # a browse link the database has no constraint for:
        .add_relationship("AUTHOR.NAME", "SIMULATION.TITLE")
        .document
    )
    print("\ncustomised XUIS problems:", validate_xuis(custom, db))

    # 5. the interface follows the XML
    form = render_query_form(custom.table("SIMULATION"))
    print("\n--- generated query form facts ---")
    print("table heading uses alias:", "Numerical Simulations" in form)
    print("column alias shown:", "Grid points per axis" in form)
    print("custom sample value offered:", "user defined sample 1" in form)
    guest_form = render_query_form(custom.table("AUTHOR"))
    print("hidden EMAIL column absent:", "EMAIL" not in guest_form)

    # 4. personalisation: one base, many interfaces
    variants = personalise(
        custom,
        {
            "guest": lambda c: c.hide_table("AUTHOR").set_title("Public view"),
            "staff": lambda c: c.set_title("Staff view"),
        },
    )
    for role, document in variants.items():
        tables = [t.name for t in document.visible_tables()]
        print(f"{role} ({document.title!r}) sees tables: {tables}")


if __name__ == "__main__":
    main()
