#!/usr/bin/env python3
"""Compare a pytest-benchmark JSON run against a committed baseline.

Usage:
    python scripts/check_bench_regression.py BASELINE CURRENT [--max-ratio 2.0]
    python scripts/check_bench_regression.py --concurrency BENCH_concurrency.json
    python scripts/check_bench_regression.py --replication BENCH_replication.json

Benchmarks whose name contains one of the guarded keywords (point lookups
and joins — the planner's hot paths) fail the check when their median
exceeds ``max-ratio`` times the baseline median.  Other benchmarks are
reported but never fail: absolute CI-runner speed varies, so only the
guarded set is enforced, and only by ratio.

``--concurrency`` validates the concurrency benchmark's result file
(produced by benchmarks/test_bench_concurrency.py) instead of or in
addition to the median comparison: torn_reads must be exactly 0 and the
snapshot-vs-serialized speedup must meet ``--min-speedup`` (default 4.0).

``--replication`` validates the failover benchmark's result file
(produced by benchmarks/test_bench_replication.py): failover_errors must
be exactly 0, the anti-entropy repair must end checksum-clean, and the
degraded/healthy download-time ratio must stay under ``--max-overhead``
(default 5.0).

Exit status: 0 when every enforced gate holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

#: benchmarks whose median regressing past the ratio fails the gate
GUARDED_KEYWORDS = ("lookup", "join")


def load_medians(path: str) -> dict[str, float]:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return {
        bench["name"]: bench["stats"]["median"]
        for bench in payload.get("benchmarks", [])
    }


def check_medians(baseline_path: str, current_path: str,
                  max_ratio: float) -> list[str]:
    baseline = load_medians(baseline_path)
    current = load_medians(current_path)

    failures: list[str] = []
    for name, median in sorted(current.items()):
        reference = baseline.get(name)
        if reference is None or reference <= 0.0:
            print(f"  new       {name}: {median * 1e6:.1f} us (no baseline)")
            continue
        ratio = median / reference
        guarded = any(keyword in name.lower() for keyword in GUARDED_KEYWORDS)
        status = "ok"
        if ratio > max_ratio and guarded:
            status = "REGRESSED"
            failures.append(
                f"{name}: median {median * 1e6:.1f} us vs baseline "
                f"{reference * 1e6:.1f} us ({ratio:.2f}x > {max_ratio}x)"
            )
        elif ratio > max_ratio:
            status = "slower (unguarded)"
        print(
            f"  {status:<18} {name}: {median * 1e6:.1f} us "
            f"({ratio:.2f}x baseline)"
        )

    missing = sorted(set(baseline) - set(current))
    for name in missing:
        print(f"  missing   {name}: present in baseline but not in this run")
    return failures


def check_concurrency(path: str, min_speedup: float) -> list[str]:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)

    failures: list[str] = []
    torn = payload.get("torn_reads")
    speedup = payload.get("speedup")
    if torn is None or speedup is None:
        return [f"{path}: missing torn_reads/speedup keys"]
    if torn != 0:
        failures.append(
            f"{path}: {torn} torn read(s) observed — isolation is broken"
        )
    if speedup < min_speedup:
        failures.append(
            f"{path}: snapshot-read speedup {speedup:.2f}x below the "
            f"{min_speedup:g}x floor"
        )
    print(
        f"  concurrency: {payload.get('snapshot_reads', '?')} snapshot reads "
        f"vs {payload.get('serialized_reads', '?')} serialized "
        f"({speedup:.2f}x, {torn} torn)"
    )
    return failures


def check_replication(path: str, max_overhead: float) -> list[str]:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)

    failures: list[str] = []
    errors = payload.get("failover_errors")
    overhead = payload.get("overhead_ratio")
    clean = payload.get("repair_clean")
    if errors is None or overhead is None or clean is None:
        return [f"{path}: missing failover_errors/overhead_ratio/repair_clean keys"]
    if errors != 0:
        failures.append(
            f"{path}: {errors} download(s) failed with a replica dead — "
            f"failover must be invisible to users"
        )
    if overhead > max_overhead:
        failures.append(
            f"{path}: degraded downloads {overhead:.2f}x slower than "
            f"healthy, above the {max_overhead:g}x ceiling"
        )
    if not clean:
        failures.append(
            f"{path}: anti-entropy repair did not converge to a "
            f"checksum-clean replica set"
        )
    print(
        f"  replication: {payload.get('failovers', '?')} failover(s), "
        f"{errors} error(s), {overhead:.2f}x overhead, "
        f"repair {'clean' if clean else 'DIVERGED'}"
    )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?", help="committed baseline JSON")
    parser.add_argument("current", nargs="?", help="freshly generated JSON")
    parser.add_argument(
        "--max-ratio", type=float, default=2.0,
        help="fail when current/baseline median exceeds this (default 2.0)",
    )
    parser.add_argument(
        "--concurrency", metavar="PATH",
        help="validate a BENCH_concurrency.json result file",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=4.0,
        help="concurrency gate: snapshot reads must beat serialized reads "
             "by at least this factor (default 4.0)",
    )
    parser.add_argument(
        "--replication", metavar="PATH",
        help="validate a BENCH_replication.json result file",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=5.0,
        help="replication gate: degraded/healthy download-time ratio "
             "ceiling (default 5.0)",
    )
    args = parser.parse_args(argv)

    if not args.concurrency and not args.replication and not (
        args.baseline and args.current
    ):
        parser.error(
            "need BASELINE CURRENT, --concurrency PATH, --replication PATH, "
            "or a combination"
        )
    if (args.baseline is None) != (args.current is None):
        parser.error("BASELINE and CURRENT must be given together")

    failures: list[str] = []
    if args.baseline and args.current:
        failures += check_medians(args.baseline, args.current, args.max_ratio)
    if args.concurrency:
        failures += check_concurrency(args.concurrency, args.min_speedup)
    if args.replication:
        failures += check_replication(args.replication, args.max_overhead)

    if failures:
        print("\nperformance regression gate FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nperformance regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
