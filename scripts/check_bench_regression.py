#!/usr/bin/env python3
"""Compare a pytest-benchmark JSON run against a committed baseline.

Usage:
    python scripts/check_bench_regression.py BASELINE CURRENT [--max-ratio 2.0]

Benchmarks whose name contains one of the guarded keywords (point lookups
and joins — the planner's hot paths) fail the check when their median
exceeds ``max-ratio`` times the baseline median.  Other benchmarks are
reported but never fail: absolute CI-runner speed varies, so only the
guarded set is enforced, and only by ratio.

Exit status: 0 when every guarded benchmark holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

#: benchmarks whose median regressing past the ratio fails the gate
GUARDED_KEYWORDS = ("lookup", "join")


def load_medians(path: str) -> dict[str, float]:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return {
        bench["name"]: bench["stats"]["median"]
        for bench in payload.get("benchmarks", [])
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly generated JSON")
    parser.add_argument(
        "--max-ratio", type=float, default=2.0,
        help="fail when current/baseline median exceeds this (default 2.0)",
    )
    args = parser.parse_args(argv)

    baseline = load_medians(args.baseline)
    current = load_medians(args.current)

    failures: list[str] = []
    for name, median in sorted(current.items()):
        reference = baseline.get(name)
        if reference is None or reference <= 0.0:
            print(f"  new       {name}: {median * 1e6:.1f} us (no baseline)")
            continue
        ratio = median / reference
        guarded = any(keyword in name.lower() for keyword in GUARDED_KEYWORDS)
        status = "ok"
        if ratio > args.max_ratio and guarded:
            status = "REGRESSED"
            failures.append(
                f"{name}: median {median * 1e6:.1f} us vs baseline "
                f"{reference * 1e6:.1f} us ({ratio:.2f}x > {args.max_ratio}x)"
            )
        elif ratio > args.max_ratio:
            status = "slower (unguarded)"
        print(
            f"  {status:<18} {name}: {median * 1e6:.1f} us "
            f"({ratio:.2f}x baseline)"
        )

    missing = sorted(set(baseline) - set(current))
    for name in missing:
        print(f"  missing   {name}: present in baseline but not in this run")

    if failures:
        print("\nperformance regression gate FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nperformance regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
