"""EASIA — Extensible Architecture for Scientific Information Archives.

A full reproduction of "An Architecture for Archiving and Post-Processing
Large, Distributed, Scientific Data Using SQL/MED and XML" (Papiani,
Wason, Nicole — EDBT 2000), built from scratch in Python:

* :mod:`repro.sqldb` — an object-relational engine (SQL parser, catalog,
  referential integrity, transactions, WAL recovery, BLOB/CLOB/DATALINK),
* :mod:`repro.datalink` — SQL/MED DATALINK semantics: link control,
  transaction-consistent file linking, encrypted expiring access tokens,
  coordinated backup/recovery,
* :mod:`repro.fileserver` — distributed, token-checked file servers,
* :mod:`repro.netsim` — the simulated wide-area network, calibrated to
  the paper's measured bandwidths,
* :mod:`repro.xuis` — the XML User Interface Specification (generation,
  DTD validation, customisation, personalisation),
* :mod:`repro.web` — the schema-driven QBE interface and the EASIA app,
* :mod:`repro.operations` — sandboxed server-side post-processing,
  code upload, caching and statistics,
* :mod:`repro.turbulence` — the UK Turbulence Consortium workload.

Quickstart::

    from repro import build_turbulence_archive, EasiaApp

    archive = build_turbulence_archive()
    engine = archive.make_engine("/tmp/easia-sandbox")
    app = EasiaApp(archive.db, archive.linker, archive.document,
                   archive.users, engine)
    session = app.login("guest", "guest")
    print(app.get("/", session_id=session).text)
"""

from repro.datalink import (
    DataLinker,
    DatalinkSpec,
    DatalinkValue,
    TokenManager,
    coordinated_backup,
    coordinated_restore,
)
from repro.fileserver import FileServer, ServerFileSystem
from repro.netsim import (
    MBYTE,
    BandwidthProfile,
    Host,
    Link,
    Network,
    SimClock,
    TransferEngine,
    format_duration,
    transfer_seconds,
)
from repro.operations import (
    CodeUploader,
    OperationCache,
    OperationEngine,
    OperationStats,
    pack_code_archive,
)
from repro.sqldb import Blob, Clob, Database
from repro.turbulence import TurbulenceArchive, build_turbulence_archive
from repro.web import EasiaApp, UserManager
from repro.xuis import (
    Customizer,
    XuisDocument,
    generate_default_xuis,
    parse_xuis,
    serialize_xuis,
    validate_xuis,
)

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Blob",
    "Clob",
    "DataLinker",
    "DatalinkSpec",
    "DatalinkValue",
    "TokenManager",
    "coordinated_backup",
    "coordinated_restore",
    "FileServer",
    "ServerFileSystem",
    "Network",
    "Host",
    "Link",
    "SimClock",
    "BandwidthProfile",
    "TransferEngine",
    "transfer_seconds",
    "format_duration",
    "MBYTE",
    "OperationEngine",
    "OperationCache",
    "OperationStats",
    "CodeUploader",
    "pack_code_archive",
    "generate_default_xuis",
    "serialize_xuis",
    "parse_xuis",
    "validate_xuis",
    "Customizer",
    "XuisDocument",
    "EasiaApp",
    "UserManager",
    "TurbulenceArchive",
    "build_turbulence_archive",
    "__version__",
]
