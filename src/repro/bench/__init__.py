"""Benchmark support: paper-vs-measured reporting and workload builders."""

from repro.bench.reporting import PaperTable, emit
from repro.bench.workloads import (
    metadata_database,
    multi_site_network,
    user_site_network,
)

__all__ = [
    "PaperTable",
    "emit",
    "metadata_database",
    "multi_site_network",
    "user_site_network",
]
