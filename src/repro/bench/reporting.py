"""Paper-vs-measured reporting for the benchmark harness.

Benchmarks run under pytest's output capture; :func:`emit` writes straight
to the real stdout so the regenerated tables appear in the
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` transcript.
"""

from __future__ import annotations

import sys
from typing import Any, Sequence

__all__ = ["emit", "set_writer", "PaperTable"]


def _default_writer(text: str) -> None:
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()


_writer = _default_writer


def set_writer(writer) -> None:
    """Install the output function used by :func:`emit`.

    The benchmarks' conftest points this at a pytest-capture-disabled
    printer so regenerated tables reach the terminal (and ``tee``).
    """
    global _writer
    _writer = writer


def emit(text: str = "") -> None:
    """Print through the configured writer (un-captured stdout by default)."""
    _writer(text)


class PaperTable:
    """An aligned text table announcing which paper artefact it regenerates.

    >>> table = PaperTable("T1", "ftp bandwidth measurements",
    ...                    ["Time", "Rate"])   # doctest: +SKIP
    """

    def __init__(self, experiment_id: str, title: str, headers: Sequence[str]) -> None:
        self.experiment_id = experiment_id
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells for {len(self.headers)} headers"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        out = [
            "",
            f"=== [{self.experiment_id}] {self.title} ===",
            line(self.headers),
            rule,
        ]
        out.extend(line(row) for row in self.rows)
        return "\n".join(out)

    def show(self) -> None:
        emit(self.render())
