"""Paper-vs-measured reporting for the benchmark harness.

Benchmarks run under pytest's output capture; the default :class:`Emitter`
writes straight to the real stdout so the regenerated tables appear in the
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` transcript.

Emission is injectable: :func:`set_emitter` installs a replacement (tests
inject collectors), and every emitted line is mirrored into the
observability event layer as a ``bench.emit`` event when a live
:mod:`repro.obs` default is installed — so a benchmark run's tables are
queryable alongside its metrics and traces.  :func:`set_writer` survives
as a thin compatibility shim over :func:`set_emitter`.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Sequence

from repro.obs import get_observability

__all__ = ["emit", "set_writer", "set_emitter", "get_emitter", "Emitter", "PaperTable"]


def _default_writer(text: str) -> None:
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()


class Emitter:
    """Writes benchmark lines and mirrors them into the obs event log."""

    def __init__(self, writer: Callable[[str], None] | None = None) -> None:
        self.writer = writer or _default_writer

    def emit(self, text: str = "") -> None:
        obs = get_observability()
        if obs.enabled:
            obs.events.emit("bench.emit", text=text)
        self.writer(text)


_emitter = Emitter()


def get_emitter() -> Emitter:
    return _emitter


def set_emitter(emitter: Emitter) -> Emitter:
    """Install the emitter used by :func:`emit`; returns the previous one."""
    global _emitter
    previous = _emitter
    _emitter = emitter
    return previous


def set_writer(writer: Callable[[str], None]) -> None:
    """Compatibility shim: wrap a bare writer function in an Emitter.

    The benchmarks' conftest points this at a pytest-capture-disabled
    printer so regenerated tables reach the terminal (and ``tee``).
    """
    set_emitter(Emitter(writer))


def emit(text: str = "") -> None:
    """Print through the configured emitter (un-captured stdout by default)."""
    _emitter.emit(text)


class PaperTable:
    """An aligned text table announcing which paper artefact it regenerates.

    >>> table = PaperTable("T1", "ftp bandwidth measurements",
    ...                    ["Time", "Rate"])   # doctest: +SKIP
    """

    def __init__(self, experiment_id: str, title: str, headers: Sequence[str]) -> None:
        self.experiment_id = experiment_id
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells for {len(self.headers)} headers"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        out = [
            "",
            f"=== [{self.experiment_id}] {self.title} ===",
            line(self.headers),
            rule,
        ]
        out.extend(line(row) for row in self.rows)
        return "\n".join(out)

    def show(self) -> None:
        emit(self.render())
