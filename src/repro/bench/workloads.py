"""Workload builders shared by the benchmark harness."""

from __future__ import annotations

from repro.netsim import (
    BandwidthProfile,
    Host,
    Link,
    Network,
    paper_profile,
)
from repro.sqldb import Database

__all__ = ["user_site_network", "multi_site_network", "metadata_database"]


def user_site_network() -> Network:
    """The measured Southampton <-> remote-user-site pair from the paper."""
    return Network.paper_topology(remote_sites=("qmw.london",))


def multi_site_network(n_file_servers: int, user_site: str = "qmw.london") -> Network:
    """Southampton (database host) + N file-server sites + one user site.

    Every wide-area pair without an explicit link uses the paper's measured
    day-rate toward Southampton as a conservative default; the user-site
    link keeps the full day/evening asymmetric profiles.
    """
    network = Network()
    network.add_host(Host("southampton", role="db_server"))
    network.add_host(Host(user_site, role="user_site"))
    network.add_link(
        Link(
            user_site,
            "southampton",
            profile_ab=paper_profile("to_southampton"),
            profile_ba=paper_profile("from_southampton"),
        )
    )
    for i in range(n_file_servers):
        name = f"fs{i + 1}.site{i + 1}.ac.uk"
        network.add_host(Host(name, role="file_server"))
        network.add_link(
            Link(
                name,
                user_site,
                profile_ab=paper_profile("from_southampton"),
                profile_ba=paper_profile("to_southampton"),
            )
        )
    network.set_default_profile(BandwidthProfile.constant(0.37))
    return network


def metadata_database(n_rows: int, with_index: bool = True) -> Database:
    """A SIMULATION-shaped metadata table with ``n_rows`` rows, for the
    query-interface benchmarks."""
    db = Database()
    db.execute(
        "CREATE TABLE SIMULATION ("
        " SIMULATION_KEY VARCHAR(30) PRIMARY KEY,"
        " TITLE VARCHAR(80) NOT NULL,"
        " GRID_SIZE INTEGER,"
        " REYNOLDS DOUBLE,"
        " AUTHOR VARCHAR(40))"
    )
    grids = (64, 128, 256, 512)
    for i in range(n_rows):
        db.execute(
            "INSERT INTO SIMULATION VALUES (?, ?, ?, ?, ?)",
            (
                f"S{i:08d}",
                f"Simulation run {i} of turbulent flow case {i % 17}",
                grids[i % len(grids)],
                100.0 + (i % 50) * 10.0,
                f"author{i % 23}",
            ),
        )
    if with_index:
        db.execute("CREATE INDEX IX_GRID ON SIMULATION (GRID_SIZE)")
    return db
