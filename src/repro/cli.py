"""Command-line interface.

``python -m repro <command>``:

* ``sql``       — execute SQL against a (durable) database: ``-c`` for a
  single statement/script, or an interactive prompt on a TTY,
* ``serve``     — build the turbulence demo archive and serve the portal
  over HTTP (wsgiref),
* ``xuis``      — generate the default XUIS for a database directory and
  print it,
* ``table1``    — print the paper's Table 1 from the calibrated model,
* ``demo``      — build the demo archive and print a summary,
* ``obs``       — run an instrumented sample workload against the demo
  archive and dump the observability snapshot (metrics, slow queries,
  recent spans).

The CLI is intentionally thin: every command is a few lines over the
public library API, and doubles as executable documentation.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError

__all__ = ["main"]


def _cmd_sql(args: argparse.Namespace) -> int:
    from repro.sqldb import Database

    db = Database(args.database)
    if args.command:
        return _run_script(db, args.command)
    if not sys.stdin.isatty():
        return _run_script(db, sys.stdin.read())
    print("EASIA SQL shell — terminate statements with ';', exit with \\q")
    buffer: list[str] = []
    while True:
        try:
            prompt = "sql> " if not buffer else "...> "
            line = input(prompt)
        except EOFError:
            break
        if line.strip() == "\\q":
            break
        buffer.append(line)
        if line.rstrip().endswith(";"):
            _run_script(db, "\n".join(buffer))
            buffer.clear()
    return 0


def _run_script(db, text: str) -> int:
    try:
        results = db.execute_script(text)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for result in results:
        if result.columns:
            print("\t".join(result.columns))
            for row in result.rows:
                print("\t".join("" if v is None else str(v) for v in row))
            print(f"({len(result.rows)} row(s))")
        elif result.rowcount:
            print(f"ok ({result.rowcount} row(s) affected)")
        else:
            print("ok")
    return 0


def _build_demo(args: argparse.Namespace):
    from repro.turbulence import build_turbulence_archive

    return build_turbulence_archive(
        n_simulations=args.simulations,
        timesteps=args.timesteps,
        grid=args.grid,
        n_file_servers=args.file_servers,
        replication_factor=getattr(args, "replication_factor", 1),
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import tempfile

    from repro import EasiaApp
    from repro.sqldb.connection import ConnectionPool
    from repro.web.wsgi import WsgiAdapter, make_threading_server

    if args.obs:
        import repro.obs as obs_mod

        obs_mod.enable()
    archive = _build_demo(args)
    engine = archive.make_engine(tempfile.mkdtemp(prefix="easia-sandbox-"))
    app = EasiaApp(
        archive.db, archive.linker, archive.document, archive.users, engine
    )
    # Thread-per-request serving over a fixed connection pool: each request
    # runs on its own database connection with snapshot reads, so browsing
    # never blocks behind an ingest transaction (docs/CONCURRENCY.md).
    pool = ConnectionPool(archive.db, size=args.pool_size)
    app.container.use_connection_pool(pool)
    if archive.replication is not None:
        # background pump: health probes + follower catch-up while serving
        archive.replication.start()
    httpd = make_threading_server(args.host, args.port, WsgiAdapter(app))
    replicas = (
        f", replication x{archive.replication.placement.replication_factor}"
        if archive.replication is not None else ""
    )
    print(f"EASIA portal at http://{args.host or 'localhost'}:{args.port}/login "
          f"(guest/guest, {args.pool_size} pooled connections{replicas})")
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if archive.replication is not None:
            archive.replication.stop()
    return 0


def _cmd_xuis(args: argparse.Namespace) -> int:
    from repro.sqldb import Database
    from repro.xuis import generate_default_xuis, serialize_xuis, validate_xuis

    db = Database(args.database)
    document = generate_default_xuis(db, title=args.title)
    problems = validate_xuis(document, db)
    if problems:
        for problem in problems:
            print(f"problem: {problem}", file=sys.stderr)
        return 1
    print(serialize_xuis(document))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.netsim import MBYTE, PAPER_RATES, format_duration, transfer_seconds

    print(f"{'Time':8} {'Direction':18} {'Mbit/s':7} {'85 MB':>10} {'544 MB':>10}")
    for (period, direction), rate in PAPER_RATES.items():
        small = format_duration(transfer_seconds(85 * MBYTE, rate))
        large = format_duration(transfer_seconds(544 * MBYTE, rate))
        label = direction.replace("_", " ").title()
        print(f"{period.title():8} {label:18} {rate:<7} {small:>10} {large:>10}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    archive = _build_demo(args)
    db = archive.db
    print(f"simulations : {db.execute('SELECT COUNT(*) FROM SIMULATION').scalar()}")
    print(f"result files: {db.execute('SELECT COUNT(*) FROM RESULT_FILE').scalar()}")
    print(f"codes       : {db.execute('SELECT COUNT(*) FROM CODE_FILE').scalar()}")
    for server in archive.servers:
        print(
            f"{server.host}: {len(server.filesystem)} files, "
            f"{server.filesystem.total_bytes():,} bytes"
        )
    ops = [
        op.name
        for op in archive.document.column(
            "RESULT_FILE.DOWNLOAD_RESULT"
        ).operations
    ]
    print(f"operations  : {', '.join(ops)}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Exercise the demo archive end to end with observability enabled,
    then dump everything the obs layer collected."""
    import tempfile

    import repro.obs as obs_mod
    from repro import EasiaApp

    handle = obs_mod.enable(slow_query_seconds=args.slow_query_seconds)
    archive = _build_demo(args)
    engine = archive.make_engine(tempfile.mkdtemp(prefix="easia-obs-"))
    app = EasiaApp(
        archive.db, archive.linker, archive.document, archive.users, engine
    )
    session = app.login("guest", "guest")
    app.get("/", session_id=session)
    app.get(
        "/search",
        {"table": "SIMULATION", "show_SIMULATION_KEY": "on",
         "show_TITLE": "on"},
        session_id=session,
    )
    app.get("/table", {"name": "RESULT_FILE"}, session_id=session)
    archive.db.execute(
        "SELECT COUNT(*) FROM RESULT_FILE WHERE SIMULATION_KEY IS NOT NULL"
    )

    print("=== metrics ===")
    print(handle.metrics.render_text().rstrip("\n"))
    stats = archive.db.statement_cache_stats
    print(f"sql.statement_cache.hit_ratio {stats['hit_ratio']:.4f}")
    slow = handle.slow_query.entries()
    print(f"\n=== slow queries (>= {handle.slow_query.threshold_seconds}s): "
          f"{len(slow)} ===")
    for entry in slow:
        print(f"{entry['elapsed'] * 1e3:8.2f} ms  {entry['sql']}")
    spans = handle.tracer.snapshot()
    print(f"\n=== spans ({len(spans)} recorded, newest last) ===")
    shown = spans[-args.spans:] if args.spans > 0 else []
    for span in shown:
        indent = "  " if span["parent_id"] is not None else ""
        print(f"{indent}{span['name']:24} {span['duration'] * 1e3:8.3f} ms  "
              f"{span['attributes']}")
    obs_mod.disable()
    return 0


def _cmd_replicas(args: argparse.Namespace) -> int:
    """Inspect or repair the demo archive's replica sets."""
    archive = _build_demo(args)
    manager = archive.replication
    if manager is None:
        print(
            "archive is not replicated (use --replication-factor >= 2)",
            file=sys.stderr,
        )
        return 1
    if args.action == "repair":
        if args.tamper:
            # demonstration hook: corrupt one follower so the repair pass
            # has something to find and fix
            replica_set = archive.servers[0]
            follower = replica_set.followers[0]
            path = next(iter(follower.server.manifest()))
            follower.server.filesystem.dl_put(path, b"bit-rot")
            print(f"tampered {follower.host}{path}")
        for report in manager.repair(prune=args.prune):
            print(report.describe())
        return 0
    print(manager.describe())
    return 0


def _add_demo_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--simulations", type=int, default=3)
    parser.add_argument("--timesteps", type=int, default=3)
    parser.add_argument("--grid", type=int, default=16)
    parser.add_argument("--file-servers", type=int, default=2)
    parser.add_argument(
        "--replication-factor", type=int, default=1,
        help="physical replicas per logical file server (default 1: none)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EASIA: SQL/MED + XML scientific data archive",
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    sql = sub.add_parser("sql", help="run SQL against a database directory")
    sql.add_argument("database", nargs="?", default=None,
                     help="database directory (omit for in-memory)")
    sql.add_argument("-c", "--command", help="SQL text to execute")
    sql.set_defaults(fn=_cmd_sql)

    serve = sub.add_parser("serve", help="serve the demo portal over HTTP")
    serve.add_argument("--host", default="")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--pool-size", type=int, default=4,
                       help="database connections serving requests (default 4)")
    serve.add_argument("--obs", action="store_true",
                       help="enable observability (live /metrics and /trace)")
    _add_demo_options(serve)
    serve.set_defaults(fn=_cmd_serve)

    xuis = sub.add_parser("xuis", help="generate the default XUIS for a database")
    xuis.add_argument("database", help="database directory")
    xuis.add_argument("--title", default="EASIA Archive")
    xuis.set_defaults(fn=_cmd_xuis)

    table1 = sub.add_parser("table1", help="print the paper's Table 1")
    table1.set_defaults(fn=_cmd_table1)

    demo = sub.add_parser("demo", help="build the demo archive and summarise it")
    _add_demo_options(demo)
    demo.set_defaults(fn=_cmd_demo)

    obs = sub.add_parser(
        "obs", help="run an instrumented sample workload and dump metrics"
    )
    obs.add_argument("--slow-query-seconds", type=float, default=0.001,
                     help="slow-query log threshold (default 1 ms)")
    obs.add_argument("--spans", type=int, default=20,
                     help="how many recent spans to print")
    _add_demo_options(obs)
    obs.set_defaults(fn=_cmd_obs)

    replicas = sub.add_parser(
        "replicas", help="inspect or repair replicated file servers"
    )
    replicas.add_argument("action", choices=("status", "repair"))
    replicas.add_argument("--prune", action="store_true",
                          help="repair: also delete files absent on primary")
    replicas.add_argument("--tamper", action="store_true",
                          help="repair: corrupt one follower first (demo)")
    _add_demo_options(replicas)
    # replica commands only make sense on a replicated archive
    replicas.set_defaults(fn=_cmd_replicas, replication_factor=2)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # output piped into something like `head` that closed early
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
