"""SQL/MED (Management of External Data) — DATALINK emulation.

This is the paper's central mechanism: the database stores small metadata
locally while multi-gigabyte result files stay on the distributed file
servers where they were generated, referenced by DATALINK columns.  The
package provides:

* :class:`DatalinkValue` / :class:`DatalinkSpec` — the value type and the
  DDL option set (re-exported from the engine's type system),
* :class:`TokenManager` — encrypted, expiring access tokens
  (READ PERMISSION DB),
* :class:`DataLinker` — the datalink manager wired into database
  transactions (referential integrity + transaction consistency),
* :func:`coordinated_backup` / :func:`coordinated_restore` — database and
  linked files saved and recovered as one unit.

Typical wiring::

    db = Database()
    linker = DataLinker()
    linker.register_server(FileServer("fs1.soton.ac.uk"))
    db.set_datalink_hooks(linker)
"""

from repro.datalink.backup import coordinated_backup, coordinated_restore
from repro.datalink.linker import DataLinker
from repro.datalink.reconcile import ReconcileReport, reconcile, repair
from repro.datalink.tokens import DEFAULT_VALIDITY_SECONDS, TokenManager
from repro.sqldb.med import DatalinkSpec
from repro.sqldb.types import DatalinkValue

__all__ = [
    "DataLinker",
    "TokenManager",
    "DEFAULT_VALIDITY_SECONDS",
    "DatalinkSpec",
    "DatalinkValue",
    "coordinated_backup",
    "coordinated_restore",
    "reconcile",
    "repair",
    "ReconcileReport",
]
