"""Coordinated backup and recovery of database + linked files.

Paper: "the database management system can take responsibility for backup
and recovery of external files in synchronisation with the internal data".

:func:`coordinated_backup` writes one self-contained backup image:

* the full database state (DDL + rows, via the WAL value encoding),
* a copy of every linked file flagged ``RECOVERY YES``, organised by host,
  with its sha256 recorded in the manifest.

:func:`coordinated_restore` rebuilds a database *and* repopulates fresh
file servers from the image, re-establishing the links — the database and
its external files come back as one consistent unit.  Every restored
file is verified against its manifest checksum; a missing or corrupted
image file raises :class:`~repro.errors.RecoveryError` naming the file
instead of silently restoring damaged data.

Replica sets are transparent here: when a logical host is backed by a
:class:`~repro.replication.replicaset.ReplicaSet`, the backup reads each
file from *any healthy replica* (``healthy_entry``), so a down primary
does not abort the backup.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.errors import RecoveryError
from repro.datalink.linker import DataLinker
from repro.datalink.tokens import TokenManager
from repro.fileserver.server import FileServer
from repro.sqldb.database import Database
from repro.sqldb.wal import WriteAheadLog

__all__ = ["coordinated_backup", "coordinated_restore"]

_MANIFEST = "backup_manifest.json"


def _backup_entry(server, path: str):
    """The file entry to back up — from any healthy replica when the
    server is a replica set, from the one filesystem otherwise."""
    healthy = getattr(server, "healthy_entry", None)
    if healthy is not None:
        return healthy(path)
    return server.filesystem.entry(path)


def coordinated_backup(db: Database, linker: DataLinker, directory: str) -> dict:
    """Write a consistent backup image of ``db`` plus its linked files.

    Returns the manifest (also persisted as ``backup_manifest.json``).
    """
    os.makedirs(directory, exist_ok=True)
    snapshot = {
        "ddl": db.catalog.ddl_script(),
        "tables": {
            table.schema.name: WriteAheadLog.encode_table_rows(table.scan())
            for table in db.catalog.tables()
        },
    }
    with open(os.path.join(directory, "database.json"), "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh)

    files: list[dict] = []
    for host, path in linker.recovery_manifest():
        server = linker.server(host)
        entry = _backup_entry(server, path)
        data = entry.data
        rel = os.path.join("files", host, path.lstrip("/"))
        target = os.path.join(directory, rel)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        with open(target, "wb") as fh:
            fh.write(data)
        files.append(
            {
                "host": host,
                "path": path,
                "stored_as": rel,
                "size": len(data),
                "sha256": entry.sha256,
                "read_db": entry.read_db,
                "write_blocked": entry.write_blocked,
            }
        )
    manifest = {"files": files, "byte_total": sum(f["size"] for f in files)}
    with open(os.path.join(directory, _MANIFEST), "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2)
    return manifest


def _read_verified(directory: str, info: dict) -> bytes:
    """Read one backed-up file, verifying existence and checksum.

    Backup images written before checksums were recorded (no ``sha256``
    key) restore without verification.
    """
    stored = os.path.join(directory, info["stored_as"])
    if not os.path.exists(stored):
        raise RecoveryError(
            f"backup image is missing {info['stored_as']} "
            f"(linked file {info['host']}{info['path']})"
        )
    with open(stored, "rb") as fh:
        data = fh.read()
    expected = info.get("sha256")
    if expected is not None:
        actual = hashlib.sha256(data).hexdigest()
        if actual != expected:
            raise RecoveryError(
                f"backup image {info['stored_as']} is corrupted: "
                f"sha256 {actual[:12]} != recorded {expected[:12]} "
                f"(linked file {info['host']}{info['path']})"
            )
    return data


def coordinated_restore(
    directory: str,
    token_manager: TokenManager | None = None,
) -> tuple[Database, DataLinker]:
    """Rebuild a database and its file servers from a backup image.

    The returned database has the linker installed as its datalink hooks;
    every backed-up file is checksum-verified, restored onto a fresh
    :class:`FileServer` for its original host and re-linked with its
    original protection flags.
    """
    manifest_path = os.path.join(directory, _MANIFEST)
    db_path = os.path.join(directory, "database.json")
    if not (os.path.exists(manifest_path) and os.path.exists(db_path)):
        raise RecoveryError(f"{directory} does not contain a backup image")
    with open(manifest_path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    with open(db_path, encoding="utf-8") as fh:
        snapshot = json.load(fh)

    linker = DataLinker(token_manager)
    # Restore files first so that re-linking finds them; each file is
    # verified before its bytes reach a server, so a corrupted image
    # aborts the restore instead of planting damaged data.
    for info in manifest["files"]:
        host = info["host"]
        if not linker.has_server(host):
            linker.register_server(FileServer(host))
        server = linker.server(host)
        server.put(info["path"], _read_verified(directory, info))

    db = Database()
    from repro.sqldb.parser import parse_script

    for stmt in parse_script(snapshot["ddl"]):
        db.execute_statement(stmt)
    for table_name, entries in snapshot["tables"].items():
        table = db.catalog.table(table_name)
        for rowid, row in WriteAheadLog.decode_table_rows(entries):
            table.insert(row, rowid)

    # Re-establish link control exactly as it was.
    for info in manifest["files"]:
        linker.server(info["host"]).dl_link(
            info["path"],
            read_db=info["read_db"],
            write_blocked=info["write_blocked"],
            recovery=True,
        )
    db.set_datalink_hooks(linker)
    return db, linker
