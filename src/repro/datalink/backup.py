"""Coordinated backup and recovery of database + linked files.

Paper: "the database management system can take responsibility for backup
and recovery of external files in synchronisation with the internal data".

:func:`coordinated_backup` writes one self-contained backup image:

* the full database state (DDL + rows, via the WAL value encoding),
* a copy of every linked file flagged ``RECOVERY YES``, organised by host.

:func:`coordinated_restore` rebuilds a database *and* repopulates fresh
file servers from the image, re-establishing the links — the database and
its external files come back as one consistent unit.
"""

from __future__ import annotations

import json
import os

from repro.errors import RecoveryError
from repro.datalink.linker import DataLinker
from repro.datalink.tokens import TokenManager
from repro.fileserver.server import FileServer
from repro.sqldb.database import Database
from repro.sqldb.wal import WriteAheadLog

__all__ = ["coordinated_backup", "coordinated_restore"]

_MANIFEST = "backup_manifest.json"


def coordinated_backup(db: Database, linker: DataLinker, directory: str) -> dict:
    """Write a consistent backup image of ``db`` plus its linked files.

    Returns the manifest (also persisted as ``backup_manifest.json``).
    """
    os.makedirs(directory, exist_ok=True)
    snapshot = {
        "ddl": db.catalog.ddl_script(),
        "tables": {
            table.schema.name: WriteAheadLog.encode_table_rows(table.scan())
            for table in db.catalog.tables()
        },
    }
    with open(os.path.join(directory, "database.json"), "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh)

    files: list[dict] = []
    for host, path in linker.recovery_manifest():
        server = linker.server(host)
        data = server.filesystem.read(path)
        entry = server.filesystem.entry(path)
        rel = os.path.join("files", host, path.lstrip("/"))
        target = os.path.join(directory, rel)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        with open(target, "wb") as fh:
            fh.write(data)
        files.append(
            {
                "host": host,
                "path": path,
                "stored_as": rel,
                "size": len(data),
                "read_db": entry.read_db,
                "write_blocked": entry.write_blocked,
            }
        )
    manifest = {"files": files, "byte_total": sum(f["size"] for f in files)}
    with open(os.path.join(directory, _MANIFEST), "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2)
    return manifest


def coordinated_restore(
    directory: str,
    token_manager: TokenManager | None = None,
) -> tuple[Database, DataLinker]:
    """Rebuild a database and its file servers from a backup image.

    The returned database has the linker installed as its datalink hooks;
    every backed-up file is restored onto a fresh :class:`FileServer` for
    its original host and re-linked with its original protection flags.
    """
    manifest_path = os.path.join(directory, _MANIFEST)
    db_path = os.path.join(directory, "database.json")
    if not (os.path.exists(manifest_path) and os.path.exists(db_path)):
        raise RecoveryError(f"{directory} does not contain a backup image")
    with open(manifest_path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    with open(db_path, encoding="utf-8") as fh:
        snapshot = json.load(fh)

    linker = DataLinker(token_manager)
    # Restore files first so that re-linking finds them.
    for info in manifest["files"]:
        host = info["host"]
        if not linker.has_server(host):
            linker.register_server(FileServer(host))
        server = linker.server(host)
        with open(os.path.join(directory, info["stored_as"]), "rb") as fh:
            server.put(info["path"], fh.read())

    db = Database()
    from repro.sqldb.parser import parse_script

    for stmt in parse_script(snapshot["ddl"]):
        db.execute_statement(stmt)
    for table_name, entries in snapshot["tables"].items():
        table = db.catalog.table(table_name)
        for rowid, row in WriteAheadLog.decode_table_rows(entries):
            table.insert(row, rowid)

    # Re-establish link control exactly as it was.
    for info in manifest["files"]:
        linker.server(info["host"]).dl_link(
            info["path"],
            read_db=info["read_db"],
            write_blocked=info["write_blocked"],
            recovery=True,
        )
    db.set_datalink_hooks(linker)
    return db, linker
