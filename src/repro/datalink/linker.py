"""The datalink manager: SQL/MED semantics over distributed file servers.

:class:`DataLinker` implements the engine's :class:`~repro.sqldb.database.
DatalinkHooks` interface and provides the four DATALINK guarantees the
paper lists:

* **Referential integrity** — inserting a DATALINK under FILE LINK CONTROL
  verifies the file exists on its file server and takes ownership of it;
  a linked file can no longer be renamed or deleted out from under the
  database, and the same file cannot be linked twice.
* **Transaction consistency** — links and unlinks are *pending* until the
  enclosing database transaction commits; a rollback discards them, so the
  file state and the metadata never diverge.
* **Security** — SELECTs on READ PERMISSION DB columns yield URLs carrying
  an encrypted access token; the file servers validate tokens offline.
* **Coordinated backup and recovery** — files linked with RECOVERY YES are
  enumerated for the coordinated backup utility
  (:mod:`repro.datalink.backup`).
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro import faultinject
from repro.errors import FileLinkError, FileNotFoundOnServer
from repro.datalink.tokens import TokenManager
from repro.obs import get_observability
from repro.fileserver.server import FileServer
from repro.sqldb.database import DatalinkHooks
from repro.sqldb.med import DatalinkSpec
from repro.sqldb.types import DatalinkValue

__all__ = ["DataLinker"]


class _PendingOps:
    """Link/unlink operations accumulated by one open transaction."""

    __slots__ = ("ops",)

    def __init__(self) -> None:
        self.ops: list[tuple[str, FileServer, str, DatalinkSpec]] = []

    def net_toggles(self, host: str, path: str) -> int:
        return sum(
            1 for _kind, server, p, _spec in self.ops
            if server.host == host and p == path
        )


class DataLinker(DatalinkHooks):
    """Registry of file servers plus transactional link bookkeeping."""

    def __init__(self, token_manager: TokenManager | None = None) -> None:
        self.tokens = token_manager or TokenManager()
        self._servers: dict[str, FileServer] = {}
        self._pending: dict[int, _PendingOps] = {}
        #: guards the pending-state map and the linked-or-not decisions made
        #: from it — concurrent transactions must not double-link a file.
        #: Reentrant: a commit hook (_apply) runs while the statement path
        #: may still hold the lock during statement-atomicity rollbacks.
        self._pending_lock = threading.RLock()
        #: lifetime statistics, used by benchmarks
        self.links_applied = 0
        self.unlinks_applied = 0
        #: callbacks fired after an unlink is applied: fn(host, path).
        #: The operation engine uses this to invalidate cached results.
        self.unlink_listeners: list = []
        #: the ReplicationManager overseeing replica sets registered here
        #: (installed by repro.replication.ReplicationManager; None means
        #: every registered server is a single stand-alone host)
        self.replication = None

    # -- server registry -------------------------------------------------------

    def register_server(self, server: FileServer) -> FileServer:
        """Attach a file server; installs the shared token manager on it so
        it can validate access tokens offline."""
        if server.host in self._servers:
            raise FileLinkError(f"file server {server.host} already registered")
        server.token_manager = self.tokens
        self._servers[server.host] = server
        return server

    def server(self, host: str) -> FileServer:
        try:
            return self._servers[host]
        except KeyError:
            raise FileLinkError(
                f"no file server registered for host {host!r}"
            ) from None

    def servers(self) -> Iterable[FileServer]:
        return self._servers.values()

    def has_server(self, host: str) -> bool:
        return host in self._servers

    # -- DatalinkHooks implementation ----------------------------------------------

    def on_insert_link(self, table, column, value: DatalinkValue, spec, txn) -> None:
        if spec is None or not spec.link_control:
            return  # NO LINK CONTROL: the URL is stored unverified
        server = self.server(value.host)
        path = value.server_path
        # FILE LINK CONTROL: "a check should be made to ensure the
        # existence of the file during a database insert or update".
        if not server.dl_exists(path):
            raise FileLinkError(
                f"cannot link {value.url}: file does not exist on {server.host}"
            )
        with self._pending_lock:
            # check-and-queue is atomic, so two concurrent transactions
            # cannot both pass the "already linked" test for one file
            if self._effectively_linked(server, path, txn):
                raise FileLinkError(
                    f"cannot link {value.url}: file is already linked"
                )
            self._queue(txn, "link", server, path, spec)

    def on_remove_link(self, table, column, value: DatalinkValue, spec, txn) -> None:
        if spec is None or not spec.link_control:
            return
        server = self.server(value.host)
        path = value.server_path
        with self._pending_lock:
            if not self._effectively_linked(server, path, txn):
                raise FileLinkError(
                    f"cannot unlink {value.url}: file is not linked"
                )
            self._queue(txn, "unlink", server, path, spec)

    def decorate(self, value: DatalinkValue, spec, user: str | None = None) -> DatalinkValue:
        """SELECT-time decoration: attach access token and file size.

        Paper: "Hypertext link displays size of object - contains an
        encrypted key, required to access the file from the remote file
        server."
        """
        decorated = value
        if self.has_server(value.host):
            server = self.server(value.host)
            try:
                decorated = decorated.with_size(server.dl_size(value.server_path))
            except FileNotFoundOnServer:
                pass  # NO LINK CONTROL values may point at absent files
        if spec is not None and spec.requires_token:
            scope = f"{value.host}{value.server_path}"
            decorated = decorated.with_token(self.tokens.issue(scope))
        return decorated

    # -- transactional bookkeeping ------------------------------------------------------

    def _effectively_linked(self, server: FileServer, path: str, txn) -> bool:
        linked = server.filesystem.entry(path).linked
        pending = self._pending.get(txn.txn_id)
        if pending is not None and pending.net_toggles(server.host, path) % 2:
            linked = not linked
        return linked

    def _queue(self, txn, kind: str, server: FileServer, path: str, spec: DatalinkSpec) -> None:
        pending = self._pending.get(txn.txn_id)
        if pending is None:
            pending = _PendingOps()
            self._pending[txn.txn_id] = pending
            txn.on_commit.append(lambda: self._apply(txn.txn_id))
            txn.on_rollback.append(lambda: self._discard(txn.txn_id))
        pending.ops.append((kind, server, path, spec))

    def _apply(self, txn_id: int) -> None:
        # By the time this runs the transaction's WAL record is durable,
        # so a crash anywhere below leaves the database ahead of the file
        # servers; reconciliation after recovery closes the gap (see
        # :meth:`recover`).
        with self._pending_lock:
            pending = self._pending.pop(txn_id, None)
        if pending is None:
            return
        obs = get_observability()
        for kind, server, path, spec in pending.ops:
            faultinject.crash_point("datalink.apply.before_op")
            if kind == "link":
                server.dl_link(
                    path,
                    read_db=spec.read_permission == "DB",
                    write_blocked=spec.write_permission == "BLOCKED",
                    recovery=spec.recovery,
                )
                self.links_applied += 1
                if obs.enabled:
                    obs.metrics.counter("datalink.links_applied").inc()
                    obs.events.emit("datalink.link", host=server.host, path=path)
            else:
                server.dl_unlink(path, delete=spec.on_unlink == "DELETE")
                self.unlinks_applied += 1
                if obs.enabled:
                    obs.metrics.counter("datalink.unlinks_applied").inc()
                    obs.events.emit("datalink.unlink", host=server.host, path=path)
                # Snapshot before iterating: a listener registered or
                # removed concurrently (or by another listener) must
                # neither break this commit nor skip a callback.
                for listener in tuple(self.unlink_listeners):
                    listener(server.host, path)
            faultinject.crash_point("datalink.apply.after_op")

    def _discard(self, txn_id: int) -> None:
        with self._pending_lock:
            self._pending.pop(txn_id, None)

    # -- crash recovery ---------------------------------------------------------

    def discard_pending(self) -> int:
        """Drop every pending (uncommitted) link operation.

        Called when the database host restarts after a crash: transactions
        that never committed must not leave queued file operations behind.
        Returns the number of operations discarded.
        """
        with self._pending_lock:
            dropped = sum(len(p.ops) for p in self._pending.values())
            self._pending.clear()
        return dropped

    def recover(self, db, repair_links: bool = True):
        """Post-crash datalink recovery: audit and (optionally) repair.

        A crash between the WAL append (commit point) and the application
        of pending link operations leaves the database ahead of the file
        servers — rows referencing files that are not under link control,
        or linked files whose rows are gone.  This runs
        :func:`repro.datalink.reconcile.recover` to detect (and, with
        ``repair_links``, apply the safe fixes for) exactly that
        divergence.  Returns the pre-repair
        :class:`~repro.datalink.reconcile.ReconcileReport`.
        """
        from repro.datalink.reconcile import recover

        self.discard_pending()
        return recover(db, self, repair_links=repair_links)

    # statement-level atomicity (see DatalinkHooks)

    def statement_mark(self, txn) -> int:
        with self._pending_lock:
            pending = self._pending.get(txn.txn_id)
            return len(pending.ops) if pending is not None else 0

    def statement_rollback(self, txn, mark: int) -> None:
        with self._pending_lock:
            pending = self._pending.get(txn.txn_id)
            if pending is not None:
                del pending.ops[mark:]

    # -- client-side convenience ------------------------------------------------------------

    def download(self, value: DatalinkValue) -> bytes:
        """Fetch a (decorated) datalink value's bytes from its file server,
        presenting the embedded token if any."""
        server = self.server(value.host)
        obs = get_observability()
        if not obs.enabled:
            return server.serve(value.server_path, token=_scope_token(value))
        with obs.tracer.span(
            "datalink.download", host=value.host, path=value.server_path
        ) as span:
            data = server.serve(value.server_path, token=_scope_token(value))
            span.set(nbytes=len(data))
        obs.metrics.histogram("datalink.transfer_bytes").observe(len(data))
        obs.metrics.counter("datalink.downloads").inc()
        return data

    def recovery_manifest(self) -> list[tuple[str, str]]:
        """(host, path) of every linked file flagged RECOVERY YES."""
        out = []
        for server in self._servers.values():
            for path in server.dl_recovery_paths():
                out.append((server.host, path))
        return sorted(out)


def _scope_token(value: DatalinkValue) -> str | None:
    return value.token
