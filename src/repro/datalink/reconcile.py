"""Datalink reconciliation.

DB2's DataLinks manager shipped a ``reconcile`` utility for exactly the
situations a distributed archive accumulates: file servers restored from
older backups, NO LINK CONTROL references rotting, crashes between a
server's state and the database's.  :func:`reconcile` audits the whole
deployment and reports, per datalink column:

* **dangling** — the database references a file the server doesn't have
  (or an unregistered host),
* **unlinked** — the file exists but is not under link control although
  its column demands it (e.g. the server was rebuilt from raw files),
* **orphaned** — a file on a server is marked linked but no database row
  references it (row deleted while the server was unreachable).

:func:`repair` applies the safe fixes: re-link *unlinked* files and
release *orphaned* ones.  Dangling references are only reported — dropping
rows is a curator's decision.
"""

from __future__ import annotations

from repro.datalink.linker import DataLinker
from repro.obs import get_observability
from repro.sqldb.database import Database
from repro.sqldb.types import DatalinkValue

__all__ = ["ReconcileReport", "Finding", "reconcile", "recover", "repair"]


class Finding:
    """One inconsistency."""

    __slots__ = ("kind", "table", "column", "host", "path", "detail")

    def __init__(self, kind: str, host: str, path: str,
                 table: str = "", column: str = "", detail: str = "") -> None:
        self.kind = kind  # dangling | unlinked | orphaned
        self.table = table
        self.column = column
        self.host = host
        self.path = path
        self.detail = detail

    def describe(self) -> str:
        where = f"{self.table}.{self.column}: " if self.table else ""
        detail = f" ({self.detail})" if self.detail else ""
        return f"[{self.kind}] {where}{self.host}{self.path}{detail}"

    def __repr__(self) -> str:
        return f"Finding({self.describe()!r})"


class ReconcileReport:
    """Outcome of one reconciliation pass."""

    def __init__(self) -> None:
        self.findings: list[Finding] = []
        self.links_checked = 0
        self.files_checked = 0

    def by_kind(self, kind: str) -> list[Finding]:
        return [f for f in self.findings if f.kind == kind]

    @property
    def consistent(self) -> bool:
        return not self.findings

    def describe(self) -> str:
        lines = [
            f"checked {self.links_checked} database link(s), "
            f"{self.files_checked} server file(s)",
        ]
        if self.consistent:
            lines.append("archive is consistent")
        lines.extend(f.describe() for f in self.findings)
        return "\n".join(lines)


def _database_links(db: Database):
    """Yield (table, column, spec, DatalinkValue) for every stored link."""
    for table in db.catalog.tables():
        schema = table.schema
        for column in schema.datalink_columns:
            position = schema.column_index(column.name)
            for _rowid, row in table.scan():
                value = row[position]
                if value is not None:
                    yield schema.name, column.name, column.type.spec, value


def reconcile(db: Database, linker: DataLinker) -> ReconcileReport:
    """Audit database datalinks against the registered file servers."""
    report = ReconcileReport()
    referenced: set[tuple[str, str]] = set()

    for table_name, column_name, spec, value in _database_links(db):
        report.links_checked += 1
        key = (value.host, value.server_path)
        referenced.add(key)
        if not linker.has_server(value.host):
            report.findings.append(Finding(
                "dangling", value.host, value.server_path,
                table_name, column_name, "host not registered",
            ))
            continue
        server = linker.server(value.host)
        if not server.dl_exists(value.server_path):
            report.findings.append(Finding(
                "dangling", value.host, value.server_path,
                table_name, column_name, "file missing on server",
            ))
            continue
        requires_control = spec is not None and spec.link_control
        entry = server.filesystem.entry(value.server_path)
        if requires_control and not entry.linked:
            report.findings.append(Finding(
                "unlinked", value.host, value.server_path,
                table_name, column_name,
                "column demands FILE LINK CONTROL",
            ))

    for server in linker.servers():
        for path in server.filesystem.paths():
            report.files_checked += 1
            entry = server.filesystem.entry(path)
            if entry.linked and (server.host, path) not in referenced:
                report.findings.append(Finding(
                    "orphaned", server.host, path,
                    detail="linked on server but unreferenced",
                ))
    return report


def repair(db: Database, linker: DataLinker,
           report: ReconcileReport | None = None) -> ReconcileReport:
    """Apply the safe fixes for a report (computing one if not given).

    * *unlinked* files are re-linked with their column's options,
    * *orphaned* files are released (unlink with RESTORE semantics).

    Returns a fresh post-repair report.
    """
    if report is None:
        report = reconcile(db, linker)

    specs: dict[tuple[str, str], object] = {}
    for table_name, column_name, spec, value in _database_links(db):
        specs[(value.host, value.server_path)] = spec

    for finding in report.by_kind("unlinked"):
        spec = specs.get((finding.host, finding.path))
        if spec is None:
            continue
        linker.server(finding.host).dl_link(
            finding.path,
            read_db=spec.read_permission == "DB",
            write_blocked=spec.write_permission == "BLOCKED",
            recovery=spec.recovery,
        )
    for finding in report.by_kind("orphaned"):
        linker.server(finding.host).dl_unlink(finding.path, delete=False)
    return reconcile(db, linker)


def recover(db: Database, linker: DataLinker,
            repair_links: bool = True) -> ReconcileReport:
    """Datalink reconciliation as part of crash recovery.

    The WAL makes the *database* state recoverable, but a crash between
    the commit record reaching the log and the pending link operations
    reaching the file servers leaves files orphaned (linked on a server
    with no referencing row) or unlinked (referenced under FILE LINK
    CONTROL but not actually locked).  This audits the deployment, emits
    ``wal.recovery.datalink_*`` counters, and — when ``repair_links`` —
    applies the safe fixes via :func:`repair`.

    Returns the *pre-repair* report, so callers see what the crash left
    behind; dangling references are reported, never auto-dropped.
    """
    report = reconcile(db, linker)
    obs = get_observability()
    if obs.enabled:
        obs.metrics.counter("wal.recovery.reconcile_runs").inc()
        for kind in ("dangling", "unlinked", "orphaned"):
            count = len(report.by_kind(kind))
            if count:
                obs.metrics.counter(f"wal.recovery.datalink_{kind}").inc(count)
        obs.events.emit(
            "wal.recovery.reconcile",
            findings=len(report.findings),
            links_checked=report.links_checked,
            files_checked=report.files_checked,
        )
    if repair_links and not report.consistent:
        repair(db, linker, report)
    return report
