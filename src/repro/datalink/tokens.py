"""Encrypted, expiring access tokens for READ PERMISSION DB datalinks.

Paper: "The URL contains an encrypted key that is prefixed to the required
file name. [...] The access tokens have a finite life determined by a
database configuration parameter."

A token authenticates one *scope* (host + file path) until an expiry
instant.  Construction is HMAC-SHA256 over ``scope|expiry`` with a secret
shared between the database server and each file server's file manager, so
servers validate tokens offline — no callback to the database — and tokens
cannot be transplanted onto other files or extended by the client.

Token wire format (URL-safe, no padding)::

    <expiry-hex>.<base64url(hmac[:18])>
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import secrets
import threading
import time
from typing import Callable

from repro.errors import TokenError, TokenExpiredError
from repro.obs import get_observability

__all__ = ["TokenManager", "DEFAULT_VALIDITY_SECONDS"]

#: DB2 DataLinks shipped with a 60-second default "expiry interval"; we use
#: a friendlier default for interactive browsing, as the paper's archive did
DEFAULT_VALIDITY_SECONDS = 600.0

_SIG_BYTES = 18  # 144-bit truncated HMAC — compact URLs, ample security


def _b64(raw: bytes) -> str:
    return base64.urlsafe_b64encode(raw).decode("ascii").rstrip("=")


def _b64decode(text: str) -> bytes:
    padding = "=" * (-len(text) % 4)
    try:
        return base64.urlsafe_b64decode(text + padding)
    except Exception as exc:
        raise TokenError(f"malformed token encoding: {exc}") from exc


class TokenManager:
    """Issues and validates file access tokens.

    ``time_source`` abstracts the clock so simulated time
    (:class:`repro.netsim.SimClock`) and real time both work:

    >>> tm = TokenManager(secret=b"k", validity_seconds=60, time_source=lambda: 100.0)
    >>> token = tm.issue("fs1.soton.ac.uk/data/ts1.dat")
    >>> tm.validate("fs1.soton.ac.uk/data/ts1.dat", token)
    True
    """

    def __init__(
        self,
        secret: bytes | None = None,
        validity_seconds: float = DEFAULT_VALIDITY_SECONDS,
        time_source: Callable[[], float] = time.time,
    ) -> None:
        if validity_seconds <= 0:
            raise TokenError("token validity must be positive")
        self._secret = secret if secret is not None else secrets.token_bytes(32)
        self.validity_seconds = float(validity_seconds)
        self._time_source = time_source
        self.issued_count = 0
        self.validated_count = 0
        #: issuance/validation run from concurrent request threads; the
        #: counters must not lose ticks (tests assert exact totals)
        self._stats_lock = threading.Lock()

    @property
    def now(self) -> float:
        return self._time_source()

    def _sign(self, scope: str, expiry_hex: str) -> bytes:
        message = f"{scope}|{expiry_hex}".encode("utf-8")
        return hmac.new(self._secret, message, hashlib.sha256).digest()[:_SIG_BYTES]

    def issue(self, scope: str, validity_seconds: float | None = None) -> str:
        """Issue a token for ``scope`` valid for the configured interval."""
        validity = self.validity_seconds if validity_seconds is None else validity_seconds
        if validity <= 0:
            raise TokenError("token validity must be positive")
        expiry = self.now + validity
        # millisecond-resolution expiry keeps tokens short but precise
        expiry_hex = format(int(expiry * 1000), "x")
        signature = self._sign(scope, expiry_hex)
        with self._stats_lock:
            self.issued_count += 1
        obs = get_observability()
        if obs.enabled:
            obs.metrics.counter("datalink.tokens_issued").inc()
            obs.events.emit("token.issue", scope=scope, expiry=expiry)
        return f"{expiry_hex}.{_b64(signature)}"

    def validate(self, scope: str, token: str) -> bool:
        """Check ``token`` authorises ``scope`` now.

        Raises :class:`TokenError` on malformed/forged tokens and
        :class:`TokenExpiredError` when the validity interval has elapsed;
        returns True otherwise.
        """
        with self._stats_lock:
            self.validated_count += 1
        obs = get_observability()
        expiry_hex, sep, signature_text = token.partition(".")
        if not sep or not expiry_hex or not signature_text:
            raise TokenError("malformed token: expected <expiry>.<signature>")
        try:
            expiry_ms = int(expiry_hex, 16)
        except ValueError:
            raise TokenError("malformed token expiry") from None
        expected = self._sign(scope, expiry_hex)
        provided = _b64decode(signature_text)
        if not hmac.compare_digest(expected, provided):
            if obs.enabled:
                obs.metrics.counter("datalink.tokens_rejected").inc()
                obs.events.emit("token.rejected", scope=scope)
            raise TokenError("token signature mismatch (forged or wrong file)")
        if self.now * 1000 > expiry_ms:
            if obs.enabled:
                obs.metrics.counter("datalink.tokens_expired").inc()
                obs.events.emit(
                    "token.expired", scope=scope, expiry=expiry_ms / 1000.0
                )
            raise TokenExpiredError(
                f"token for {scope} expired at t={expiry_ms / 1000:.3f}"
            )
        if obs.enabled:
            obs.metrics.counter("datalink.tokens_validated").inc()
            obs.events.emit("token.validate", scope=scope)
        return True

    def remaining_validity(self, token: str) -> float:
        """Seconds of validity left (may be negative); no signature check."""
        expiry_hex, _, _ = token.partition(".")
        try:
            expiry_ms = int(expiry_hex, 16)
        except ValueError:
            raise TokenError("malformed token expiry") from None
        return expiry_ms / 1000.0 - self.now
