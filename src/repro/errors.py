"""Shared exception hierarchy for the EASIA reproduction.

Every subsystem raises subclasses of :class:`ReproError` so that callers can
catch one family of errors at the API boundary.  The hierarchy mirrors the
paper's layering: database errors, SQL/MED (datalink) errors, network
simulation errors, XUIS errors, web-interface errors and operation errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Database engine (repro.sqldb)
# ---------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for relational-engine errors."""


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be tokenised or parsed.

    Carries the offending position so web-layer error pages can point at it.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class CatalogError(DatabaseError):
    """Unknown table/column, duplicate definitions, or invalid schema."""


class TypeMismatchError(DatabaseError):
    """A value does not conform to the declared SQL type of its column."""


class ConstraintViolation(DatabaseError):
    """Base class for integrity-constraint failures."""


class NotNullViolation(ConstraintViolation):
    """A NOT NULL column received NULL."""


class UniqueViolation(ConstraintViolation):
    """A PRIMARY KEY or UNIQUE constraint was violated."""


class ForeignKeyViolation(ConstraintViolation):
    """A referential-integrity constraint was violated."""


class CheckViolation(ConstraintViolation):
    """A CHECK constraint evaluated to false."""


class TransactionError(DatabaseError):
    """Invalid transaction state transitions (e.g. COMMIT with no BEGIN)."""


class LockTimeout(TransactionError):
    """The writer lock could not be acquired within the configured timeout.

    Raised to the caller instead of blocking forever; the statement that
    wanted the lock has had no effect and may be retried."""


class RecoveryError(DatabaseError):
    """The write-ahead log or a backup image could not be replayed."""


class FaultInjectionError(ReproError):
    """The fault-injection harness was misused: an unknown crash point was
    armed, or an armed crash point was never reached (dead injection site)."""


# ---------------------------------------------------------------------------
# SQL/MED datalinks (repro.datalink)
# ---------------------------------------------------------------------------


class DatalinkError(ReproError):
    """Base class for SQL/MED DATALINK errors."""


class InvalidDatalinkValue(DatalinkError):
    """The supplied URL is not a valid DATALINK value."""


class FileLinkError(DatalinkError):
    """FILE LINK CONTROL failed: missing file, already linked, or the
    file server refused the link."""


class TokenError(DatalinkError):
    """An access token is malformed, forged, or expired."""


class TokenExpiredError(TokenError):
    """The access token's validity interval has elapsed."""


class PermissionDeniedError(DatalinkError):
    """READ/WRITE PERMISSION DB denied the request."""


# ---------------------------------------------------------------------------
# Network simulation (repro.netsim)
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for simulated-network errors."""


class UnknownHostError(NetworkError):
    """The topology has no host with the requested name."""


class NoRouteError(NetworkError):
    """There is no link between the requested endpoints."""


# ---------------------------------------------------------------------------
# File servers (repro.fileserver)
# ---------------------------------------------------------------------------


class FileServerError(ReproError):
    """Base class for file-server errors."""


class FileNotFoundOnServer(FileServerError):
    """The requested path does not exist on the file server."""


class FileLockedError(FileServerError):
    """The file is under database link control and may not be renamed,
    deleted or overwritten by filesystem users."""


# ---------------------------------------------------------------------------
# Replication (repro.replication)
# ---------------------------------------------------------------------------


class ReplicationError(ReproError):
    """Base class for replica-management errors."""


class ReplicaUnavailableError(ReplicationError):
    """One physical replica could not be reached (killed host, network
    partition, or the failure detector has it marked down)."""


class AllReplicasDownError(ReplicationError):
    """Every replica of a logical host failed; the read cannot be served.

    The web tier maps this to 503 — it is the *only* condition under which
    a replicated DATALINK download is allowed to fail with a server error."""


# ---------------------------------------------------------------------------
# XUIS (repro.xuis)
# ---------------------------------------------------------------------------


class XuisError(ReproError):
    """Base class for XML User Interface Specification errors."""


class XuisValidationError(XuisError):
    """The XUIS document does not conform to the DTD rules."""


class XuisParseError(XuisError):
    """The XUIS XML could not be parsed into the document model."""


# ---------------------------------------------------------------------------
# Web interface (repro.web)
# ---------------------------------------------------------------------------


class WebError(ReproError):
    """Base class for web-interface errors."""


class AuthenticationError(WebError):
    """Bad credentials or missing session."""


class AuthorizationError(WebError):
    """The authenticated user may not perform the requested action
    (e.g. guest users cannot download datasets or upload codes)."""


class RoutingError(WebError):
    """No servlet is registered for the requested path."""


# ---------------------------------------------------------------------------
# Operations (repro.operations)
# ---------------------------------------------------------------------------


class OperationError(ReproError):
    """Base class for post-processing operation errors."""


class OperationNotApplicable(OperationError):
    """The operation's <if> conditions do not hold for the target row."""


class SandboxViolation(OperationError):
    """Uploaded code attempted something the sandbox policy forbids."""


class OperationExecutionError(OperationError):
    """The operation code raised or returned a non-zero status."""
