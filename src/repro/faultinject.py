"""``repro.faultinject`` — deterministic fault injection for durability code.

Crash-safety claims are only as good as the crashes they were tested
against.  This module lets the test harness simulate a process death at a
*named point* inside the durability path — mid WAL append, between the
checkpoint rename and the log truncation, halfway through applying a
transaction's datalink operations — deterministically and without
subprocesses.

The sites are marked in production code with :func:`crash_point` (or
:func:`should_crash` where the site implements bespoke crash behaviour,
e.g. a torn partial write).  When no injector is armed both are a single
``is None`` check, so the instrumentation is free in normal operation.

Usage::

    from repro import faultinject

    with faultinject.inject_crash("wal.checkpoint.after_replace"):
        db.checkpoint()            # dies at the armed point
    db = Database(directory)       # recovery must produce a sane state

Design rules:

* :class:`InjectedCrash` subclasses :class:`BaseException` (like
  ``KeyboardInterrupt``), so ordinary ``except Exception`` cleanup in the
  engine cannot observe it — a real crash would not run rollback code
  either.  Recovery must come from disk alone.
* Crash point names form a closed registry (:data:`CRASH_POINTS`).  Arming
  an unknown name raises :class:`~repro.errors.FaultInjectionError`
  immediately, and so does visiting an unregistered name.
* **Fail fast on dead sites**: if :class:`inject_crash` exits without its
  armed point having fired, it raises
  :class:`~repro.errors.FaultInjectionError`.  A refactor that deletes or
  bypasses an injection site breaks the crash matrix loudly instead of
  silently testing nothing.
"""

from __future__ import annotations

from repro.errors import FaultInjectionError

__all__ = [
    "CRASH_POINTS",
    "FaultInjector",
    "InjectedCrash",
    "active_injector",
    "crash_point",
    "inject_crash",
    "should_crash",
]

#: The closed registry of crash sites compiled into the durability path.
#: Keep in sync with the ``crash_point``/``should_crash`` calls in
#: ``repro.sqldb.wal``, ``repro.datalink.linker`` and
#: ``repro.fileserver.filesystem`` — the crash-matrix suite asserts every
#: name here is reachable.
CRASH_POINTS = frozenset({
    # WAL append (repro.sqldb.wal.WriteAheadLog.append_transaction)
    "wal.append.torn",            # half the record reaches disk, no newline
    "wal.append.full_write",      # record durable, ack never returned
    # Checkpointing (repro.sqldb.wal.WriteAheadLog.write_checkpoint)
    "wal.checkpoint.tmp_written",   # .tmp synced, rename never happened
    "wal.checkpoint.after_replace", # new checkpoint live, WAL not truncated
    "wal.checkpoint.after_truncate",# checkpoint complete, epoch not bumped
    # Datalink application (repro.datalink.linker.DataLinker._apply)
    "datalink.apply.before_op",   # commit durable, op N not yet applied
    "datalink.apply.after_op",    # op N applied, op N+1 pending
    # File-server control plane (repro.fileserver.filesystem)
    "fileserver.dl_link",         # link-control mutation about to happen
    "fileserver.dl_unlink",       # unlink-control mutation about to happen
})


class InjectedCrash(BaseException):
    """Simulated process death at a named crash point.

    Deliberately **not** an :class:`Exception`: the engine's error handling
    (statement rollback, commit-hook collection) must not intercept it,
    because a real crash would not run those paths.  Only
    :class:`inject_crash` catches it.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at {point!r}")
        self.point = point


class FaultInjector:
    """Arms exactly one crash point; counts every site visited.

    ``skip`` survives that many hits of the armed point before firing, so a
    per-operation point inside a loop can be crashed at the Nth iteration.
    """

    def __init__(self, point: str, skip: int = 0) -> None:
        if point not in CRASH_POINTS:
            raise FaultInjectionError(
                f"unknown crash point {point!r}; registered points: "
                f"{', '.join(sorted(CRASH_POINTS))}"
            )
        self.point = point
        self.skip = skip
        self.fired = False
        #: name -> visit count, for every site passed while armed
        self.hits: dict[str, int] = {}

    def visit(self, name: str) -> bool:
        """Record a pass through site ``name``; True means "crash now"."""
        if name not in CRASH_POINTS:
            raise FaultInjectionError(
                f"crash site {name!r} is not in faultinject.CRASH_POINTS; "
                f"register it before instrumenting code with it"
            )
        self.hits[name] = self.hits.get(name, 0) + 1
        if self.fired or name != self.point:
            return False
        if self.hits[name] <= self.skip:
            return False
        self.fired = True
        return True


#: the armed injector, if any (module global: the engine is single-threaded)
_active: FaultInjector | None = None


def active_injector() -> FaultInjector | None:
    return _active


def crash_point(name: str) -> None:
    """Mark a crash site: raises :class:`InjectedCrash` when armed here."""
    inj = _active
    if inj is not None and inj.visit(name):
        raise InjectedCrash(name)


def should_crash(name: str) -> bool:
    """Variant for sites with bespoke crash behaviour (e.g. torn writes).

    Returns True when the site should perform its partial effect and then
    raise :class:`InjectedCrash` itself.
    """
    inj = _active
    return inj is not None and inj.visit(name)


class inject_crash:
    """Context manager: arm ``point``, swallow the resulting crash, and
    fail fast if the point is never reached.

    >>> from repro import faultinject
    >>> with faultinject.inject_crash("wal.append.full_write") as inj:
    ...     faultinject.crash_point("wal.append.full_write")
    >>> inj.fired
    True
    """

    def __init__(self, point: str, skip: int = 0) -> None:
        self.injector = FaultInjector(point, skip)

    def __enter__(self) -> FaultInjector:
        global _active
        if _active is not None:
            raise FaultInjectionError(
                f"crash point {_active.point!r} is already armed; "
                f"inject_crash does not nest"
            )
        _active = self.injector
        return self.injector

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _active
        _active = None
        if exc_type is not None and issubclass(exc_type, InjectedCrash):
            return True  # the simulated death we asked for
        if exc_type is None and not self.injector.fired:
            visited = ", ".join(sorted(self.injector.hits)) or "none"
            raise FaultInjectionError(
                f"crash point {self.injector.point!r} was armed but never "
                f"reached (sites visited: {visited}); the injection site "
                f"may be dead or the scenario does not exercise it"
            )
        return False
