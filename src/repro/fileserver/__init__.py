"""Distributed file servers.

Paper: "File server hosts that may be located anywhere on the Internet
store files referenced by attributes defined as DATALINK SQL-types.  These
file servers manage the large files associated with simulations, which have
been archived where they were generated."

* :class:`ServerFileSystem` — the server's local store, honouring the
  rename/delete blocking that FILE LINK CONTROL imposes on linked files,
* :class:`FileServer` — serves files over (simulated) HTTP, enforcing
  database-issued access tokens for files linked with READ PERMISSION DB,
  and exposing the DataLinks-File-Manager-style control operations the
  database's datalink manager calls.
"""

from repro.fileserver.filesystem import FileEntry, ServerFileSystem
from repro.fileserver.server import FileServer

__all__ = ["FileEntry", "ServerFileSystem", "FileServer"]
