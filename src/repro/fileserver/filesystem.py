"""A file server's local filesystem.

Stores file bytes keyed by absolute path (``/filesystem/directory/name``).
Each entry tracks the SQL/MED control state the DataLinks file manager
maintains on a real system:

* ``linked`` — the file is referenced by a DATALINK column under FILE LINK
  CONTROL.  Linked files cannot be renamed, deleted or overwritten through
  normal filesystem operations (referential integrity for external data).
* ``read_db`` — reads require a database-issued access token (READ
  PERMISSION DB); the enforcement itself lives in
  :class:`repro.fileserver.server.FileServer`.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

from repro import faultinject
from repro.errors import FileLockedError, FileNotFoundOnServer, FileServerError

__all__ = ["FileEntry", "ServerFileSystem"]


class FileEntry:
    """One stored file plus its link-control state."""

    __slots__ = ("data", "sha256", "linked", "read_db", "write_blocked",
                 "recovery", "versions")

    def __init__(self, data: bytes) -> None:
        self.data = data
        #: content checksum, maintained on every write — the unit of
        #: comparison for anti-entropy repair and backup verification
        self.sha256 = hashlib.sha256(data).hexdigest()
        self.linked = False
        self.read_db = False
        self.write_blocked = False
        #: participates in coordinated backup (RECOVERY YES)
        self.recovery = False
        #: prior contents, captured when a RECOVERY YES file is updated in
        #: place (WRITE PERMISSION FS) — enables point-in-time restore
        self.versions: list[bytes] = []

    def set_data(self, data: bytes) -> None:
        self.data = data
        self.sha256 = hashlib.sha256(data).hexdigest()

    @property
    def size(self) -> int:
        return len(self.data)


def _normalise(path: str) -> str:
    if not path.startswith("/"):
        path = "/" + path
    while "//" in path:
        path = path.replace("//", "/")
    if path.endswith("/"):
        raise FileServerError(f"path {path!r} names a directory, not a file")
    return path


class ServerFileSystem:
    """Path -> :class:`FileEntry` store with link-control enforcement."""

    def __init__(self) -> None:
        self._files: dict[str, FileEntry] = {}

    # -- ordinary filesystem operations (subject to link control) -----------

    def write(self, path: str, data: bytes) -> FileEntry:
        """Create or overwrite a file.  Overwriting a linked file is blocked
        unless its column allowed WRITE PERMISSION FS."""
        path = _normalise(path)
        existing = self._files.get(path)
        if existing is not None and existing.linked and existing.write_blocked:
            raise FileLockedError(
                f"{path} is linked by the database (WRITE PERMISSION BLOCKED)"
            )
        if existing is not None and existing.linked:
            if existing.recovery:
                # RECOVERY YES: keep the prior version for point-in-time
                # restore, coordinated with database recovery.
                existing.versions.append(existing.data)
            existing.set_data(data)
            return existing
        entry = FileEntry(data)
        self._files[path] = entry
        return entry

    def read(self, path: str) -> bytes:
        return self.entry(path).data

    def delete(self, path: str) -> None:
        entry = self.entry(path)
        if entry.linked:
            raise FileLockedError(f"{path} is linked by the database")
        del self._files[_normalise(path)]

    def rename(self, old: str, new: str) -> None:
        entry = self.entry(old)
        if entry.linked:
            raise FileLockedError(f"{old} is linked by the database")
        new = _normalise(new)
        if new in self._files:
            raise FileServerError(f"{new} already exists")
        del self._files[_normalise(old)]
        self._files[new] = entry

    # -- queries ----------------------------------------------------------------

    def entry(self, path: str) -> FileEntry:
        path = _normalise(path)
        entry = self._files.get(path)
        if entry is None:
            raise FileNotFoundOnServer(f"no such file: {path}")
        return entry

    def exists(self, path: str) -> bool:
        return _normalise(path) in self._files

    def size(self, path: str) -> int:
        return self.entry(path).size

    def paths(self) -> Iterator[str]:
        yield from sorted(self._files)

    def linked_paths(self) -> list[str]:
        return [p for p in sorted(self._files) if self._files[p].linked]

    def checksum(self, path: str) -> str:
        return self.entry(path).sha256

    def manifest(self) -> dict[str, dict]:
        """Per-file checksum + link-control state, for anti-entropy repair.

        Two replicas holding the same files in the same states produce
        identical manifests; any difference is divergence to repair.
        """
        out: dict[str, dict] = {}
        for path in sorted(self._files):
            entry = self._files[path]
            out[path] = {
                "sha256": entry.sha256,
                "size": entry.size,
                "linked": entry.linked,
                "read_db": entry.read_db,
                "write_blocked": entry.write_blocked,
                "recovery": entry.recovery,
            }
        return out

    def total_bytes(self) -> int:
        return sum(e.size for e in self._files.values())

    def __len__(self) -> int:
        return len(self._files)

    # -- DataLinks-file-manager control plane -------------------------------------
    # These are NOT ordinary filesystem calls; only the database's datalink
    # manager may invoke them (via FileServer).

    def dl_link(self, path: str, read_db: bool, write_blocked: bool, recovery: bool) -> None:
        entry = self.entry(path)
        if entry.linked:
            raise FileLockedError(f"{path} is already linked")
        faultinject.crash_point("fileserver.dl_link")
        entry.linked = True
        entry.read_db = read_db
        entry.write_blocked = write_blocked
        entry.recovery = recovery

    def version_count(self, path: str) -> int:
        """Number of archived prior versions of a RECOVERY YES file."""
        return len(self.entry(path).versions)

    def restore_version(self, path: str, index: int = -1) -> None:
        """Point-in-time restore: revert the file to an archived version.

        ``index`` addresses the version history (default: the most recent
        prior version).  Versions after the restored one are discarded,
        matching a database point-in-time recovery that rolls time back.
        """
        entry = self.entry(path)
        if not entry.versions:
            raise FileServerError(f"{path} has no archived versions")
        try:
            restored = entry.versions[index]
        except IndexError:
            raise FileServerError(
                f"{path} has {len(entry.versions)} version(s); "
                f"index {index} is out of range"
            ) from None
        keep = index if index >= 0 else len(entry.versions) + index
        entry.data = restored
        del entry.versions[keep:]

    def dl_unlink(self, path: str, delete: bool) -> None:
        entry = self.entry(path)
        if not entry.linked:
            raise FileServerError(f"{path} is not linked")
        faultinject.crash_point("fileserver.dl_unlink")
        entry.linked = False
        entry.read_db = False
        entry.write_blocked = False
        entry.recovery = False
        entry.versions.clear()
        if delete:
            del self._files[_normalise(path)]

    # -- replication channel --------------------------------------------------
    # Used by the replication queue and anti-entropy repair: a follower must
    # accept the primary's bytes and flags even where ordinary filesystem
    # writes are blocked by link control.

    def dl_put(self, path: str, data: bytes) -> FileEntry:
        """Write bytes bypassing WRITE PERMISSION BLOCKED (replica sync)."""
        path = _normalise(path)
        entry = self._files.get(path)
        if entry is None:
            entry = FileEntry(data)
            self._files[path] = entry
        else:
            entry.set_data(data)
        return entry

    def dl_set_flags(self, path: str, linked: bool, read_db: bool,
                     write_blocked: bool, recovery: bool) -> None:
        """Force link-control state to match the primary's (replica sync)."""
        entry = self.entry(path)
        entry.linked = linked
        entry.read_db = read_db
        entry.write_blocked = write_blocked
        entry.recovery = recovery
        if not linked:
            entry.versions.clear()

    def dl_remove(self, path: str) -> None:
        """Delete a file regardless of link control (replica prune)."""
        self.entry(path)
        del self._files[_normalise(path)]
