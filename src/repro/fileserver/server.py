"""A file server host.

Serves files over simulated HTTP.  For files linked with READ PERMISSION
DB, the request URL must carry a valid, unexpired access token issued by
the database (paper: "files can only be accessed using an encrypted file
access token, obtained from the database by users with the correct database
privileges").  The token validator is the shared-secret
:class:`repro.datalink.tokens.TokenManager`, mirroring how the DataLinks
file manager on each host shares key material with the DBMS.
"""

from __future__ import annotations

import re
import threading

from repro.errors import PermissionDeniedError, TokenError
from repro.fileserver.filesystem import FileEntry, ServerFileSystem, _normalise

__all__ = ["FileServer"]

#: the wire shape of a TokenManager token: ``<expiry-hex>.<base64url>``.
#: ``serve`` only treats a ``token;filename`` split as tokenized when the
#: candidate token matches — a filename that merely contains ``;`` must not
#: be mis-split into a bogus token plus the wrong path.
_TOKEN_SHAPE = re.compile(r"\A[0-9a-f]+\.[A-Za-z0-9_-]+\Z")


class FileServer:
    """One file-server host, addressable by its DNS-style name."""

    def __init__(self, host: str, filesystem: ServerFileSystem | None = None,
                 token_manager=None) -> None:
        self.host = host
        self.filesystem = filesystem or ServerFileSystem()
        #: validates READ PERMISSION DB access tokens; installed by the
        #: datalink manager when the server is registered
        self.token_manager = token_manager
        #: the logical host tokens are scoped to.  Stand-alone servers use
        #: their own name; replicas of a replica set all share the set's
        #: logical name, so one token works across every replica.
        self.token_scope_host: str | None = None
        #: served-bytes accounting for the benchmarks.  The threaded web
        #: tier serves concurrent requests, so increments take the lock —
        #: plain int += would lose ticks under contention.
        self.bytes_served = 0
        self.requests = 0
        self.denied = 0
        self._stats_lock = threading.Lock()

    # -- data ingestion (local writes by simulation codes) ---------------------

    def put(self, path: str, data: bytes) -> int:
        """Store a file (e.g. a simulation result generated on this host)."""
        self.filesystem.write(path, data)
        return len(data)

    # -- serving -----------------------------------------------------------------

    def serve(self, path: str, token: str | None = None) -> bytes:
        """Return the file's bytes, enforcing token access where required.

        ``path`` may be in tokenized form ``/dir/token;name`` (the shape a
        DATALINK SELECT yields), in which case the embedded token is used.
        """
        with self._stats_lock:
            self.requests += 1
        path, embedded = self._split_tokenized(path)
        # normalise before building the token scope: "f.dat" and "/f.dat"
        # name the same file and must validate against the same scope
        path = _normalise(path)
        if token is None:
            token = embedded
        entry = self.filesystem.entry(path)
        if entry.read_db:
            if token is None:
                with self._stats_lock:
                    self.denied += 1
                raise PermissionDeniedError(
                    f"{path} requires a database access token"
                )
            if self.token_manager is None:
                with self._stats_lock:
                    self.denied += 1
                raise TokenError(
                    f"server {self.host} has no token manager installed"
                )
            try:
                self.token_manager.validate(self._token_scope(path), token)
            except TokenError:
                with self._stats_lock:
                    self.denied += 1
                raise
        with self._stats_lock:
            self.bytes_served += entry.size
        return entry.data

    @staticmethod
    def _split_tokenized(path: str) -> tuple[str, str | None]:
        """Split ``/dir/token;name`` into (``/dir/name``, token).

        Handles the two shapes a naive ``rpartition``/``partition`` pair
        mis-parses: a path with no directory separator at all, and a
        filename that legitimately contains ``;`` without carrying a token.
        """
        if ";" not in path:
            return path, None
        directory, slash, last = path.rpartition("/")
        candidate, _, filename = last.partition(";")
        if not filename or not _TOKEN_SHAPE.match(candidate):
            # the ';' belongs to the filename, not a token prefix
            return path, None
        rebuilt = f"{directory}/{filename}" if slash else filename
        return rebuilt, candidate

    def head(self, path: str) -> int:
        """Size probe (no token needed; mirrors the interface showing object
        sizes on DATALINK hyperlinks before download)."""
        return self.filesystem.size(path)

    def _token_scope(self, path: str) -> str:
        """Tokens are bound to host+path so one file's token cannot fetch
        another file.  Replica-set members validate against the *logical*
        host, so a token issued for the set works on any replica."""
        return f"{self.token_scope_host or self.host}{path}"

    # -- control plane used by the datalink manager --------------------------------

    def dl_exists(self, path: str) -> bool:
        return self.filesystem.exists(path)

    def dl_size(self, path: str) -> int:
        return self.filesystem.size(path)

    def dl_link(self, path: str, read_db: bool, write_blocked: bool, recovery: bool) -> None:
        self.filesystem.dl_link(path, read_db, write_blocked, recovery)

    def dl_unlink(self, path: str, delete: bool) -> None:
        self.filesystem.dl_unlink(path, delete)

    def dl_put(self, path: str, data: bytes) -> FileEntry:
        """Replication channel: accept the primary's bytes, bypassing
        WRITE PERMISSION BLOCKED (only the datalink/replication manager
        may call this, never ordinary filesystem users)."""
        return self.filesystem.dl_put(path, data)

    def dl_recovery_paths(self) -> list[str]:
        """Linked paths flagged RECOVERY YES (coordinated-backup set)."""
        return [
            p
            for p in self.filesystem.linked_paths()
            if self.filesystem.entry(p).recovery
        ]

    def checksum(self, path: str) -> str:
        return self.filesystem.checksum(path)

    def manifest(self) -> dict[str, dict]:
        """Content-checksum manifest endpoint (anti-entropy repair)."""
        return self.filesystem.manifest()

    def __repr__(self) -> str:
        return f"FileServer({self.host!r}, {len(self.filesystem)} files)"
