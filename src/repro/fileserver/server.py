"""A file server host.

Serves files over simulated HTTP.  For files linked with READ PERMISSION
DB, the request URL must carry a valid, unexpired access token issued by
the database (paper: "files can only be accessed using an encrypted file
access token, obtained from the database by users with the correct database
privileges").  The token validator is the shared-secret
:class:`repro.datalink.tokens.TokenManager`, mirroring how the DataLinks
file manager on each host shares key material with the DBMS.
"""

from __future__ import annotations

from repro.errors import PermissionDeniedError, TokenError
from repro.fileserver.filesystem import ServerFileSystem

__all__ = ["FileServer"]


class FileServer:
    """One file-server host, addressable by its DNS-style name."""

    def __init__(self, host: str, filesystem: ServerFileSystem | None = None,
                 token_manager=None) -> None:
        self.host = host
        self.filesystem = filesystem or ServerFileSystem()
        #: validates READ PERMISSION DB access tokens; installed by the
        #: datalink manager when the server is registered
        self.token_manager = token_manager
        #: served-bytes accounting for the benchmarks
        self.bytes_served = 0
        self.requests = 0
        self.denied = 0

    # -- data ingestion (local writes by simulation codes) ---------------------

    def put(self, path: str, data: bytes) -> int:
        """Store a file (e.g. a simulation result generated on this host)."""
        self.filesystem.write(path, data)
        return len(data)

    # -- serving -----------------------------------------------------------------

    def serve(self, path: str, token: str | None = None) -> bytes:
        """Return the file's bytes, enforcing token access where required.

        ``path`` may be in tokenized form ``/dir/token;name`` (the shape a
        DATALINK SELECT yields), in which case the embedded token is used.
        """
        self.requests += 1
        if ";" in path:
            directory, _, last = path.rpartition("/")
            embedded, _, filename = last.partition(";")
            path = f"{directory}/{filename}"
            if token is None:
                token = embedded
        entry = self.filesystem.entry(path)
        if entry.read_db:
            if token is None:
                self.denied += 1
                raise PermissionDeniedError(
                    f"{path} requires a database access token"
                )
            if self.token_manager is None:
                self.denied += 1
                raise TokenError(
                    f"server {self.host} has no token manager installed"
                )
            try:
                self.token_manager.validate(self._token_scope(path), token)
            except TokenError:
                self.denied += 1
                raise
        self.bytes_served += entry.size
        return entry.data

    def head(self, path: str) -> int:
        """Size probe (no token needed; mirrors the interface showing object
        sizes on DATALINK hyperlinks before download)."""
        return self.filesystem.size(path)

    def _token_scope(self, path: str) -> str:
        """Tokens are bound to host+path so one file's token cannot fetch
        another file, even on the same server."""
        return f"{self.host}{path}"

    # -- control plane used by the datalink manager --------------------------------

    def dl_exists(self, path: str) -> bool:
        return self.filesystem.exists(path)

    def dl_size(self, path: str) -> int:
        return self.filesystem.size(path)

    def dl_link(self, path: str, read_db: bool, write_blocked: bool, recovery: bool) -> None:
        self.filesystem.dl_link(path, read_db, write_blocked, recovery)

    def dl_unlink(self, path: str, delete: bool) -> None:
        self.filesystem.dl_unlink(path, delete)

    def dl_recovery_paths(self) -> list[str]:
        """Linked paths flagged RECOVERY YES (coordinated-backup set)."""
        return [
            p
            for p in self.filesystem.linked_paths()
            if self.filesystem.entry(p).recovery
        ]

    def __repr__(self) -> str:
        return f"FileServer({self.host!r}, {len(self.filesystem)} files)"
