"""Simulated wide-area network.

The paper motivates EASIA with ftp bandwidth measurements between
Southampton and Queen Mary & Westfield College over 10 Mbit/s SuperJANET
connections (its Table 1).  This package reproduces that environment:

* :class:`SimClock` — simulated time with a time-of-day notion,
* :class:`BandwidthProfile` — Mbit/s as a function of time of day,
  with the paper's measured day/evening rates as calibrated constants,
* :class:`Network` / :class:`Host` / :class:`Link` — a topology of archive
  sites and file servers,
* :class:`TransferEngine` — computes transfer durations (integrating the
  bandwidth profile across day/evening boundaries) and keeps byte-level
  accounting, which the benchmarks use to compare centralised vs
  distributed archive designs.
"""

from repro.netsim.bandwidth import (
    PAPER_RATES,
    BandwidthProfile,
    paper_profile,
)
from repro.netsim.clock import SimClock
from repro.netsim.scheduler import ConcurrentScheduler, Flow
from repro.netsim.topology import Host, Link, Network
from repro.netsim.transfer import (
    MBYTE,
    TransferEngine,
    TransferRecord,
    format_duration,
    transfer_seconds,
)

__all__ = [
    "SimClock",
    "BandwidthProfile",
    "PAPER_RATES",
    "paper_profile",
    "Host",
    "Link",
    "Network",
    "ConcurrentScheduler",
    "Flow",
    "TransferEngine",
    "TransferRecord",
    "transfer_seconds",
    "format_duration",
    "MBYTE",
]
