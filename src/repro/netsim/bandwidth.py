"""Time-of-day bandwidth profiles, calibrated to the paper's measurements.

Table 1 of the paper (repeated ftp measurements between Southampton and
QMW London, both on 10 Mbit/s SuperJANET connections):

======== ================== ================
Time     Direction          Bandwidth Mbit/s
======== ================== ================
Day      To Southampton     0.25
Day      From Southampton   0.37
Evening  To Southampton     0.58
Evening  From Southampton   1.94
======== ================== ================

:data:`PAPER_RATES` captures those numbers; :func:`paper_profile` builds a
:class:`BandwidthProfile` that switches between the day and evening rate on
a configurable boundary (daytime is taken as 08:00-18:00, evening the
rest — the paper does not give boundaries, and the reproduced Table 1 holds
for any choice because each measurement is taken wholly within one band).
"""

from __future__ import annotations

from repro.errors import NetworkError

__all__ = ["BandwidthProfile", "PAPER_RATES", "paper_profile", "DAY_START_HOUR", "DAY_END_HOUR"]

#: measured rates in Mbit/s, keyed by (period, direction)
PAPER_RATES: dict[tuple[str, str], float] = {
    ("day", "to_southampton"): 0.25,
    ("day", "from_southampton"): 0.37,
    ("evening", "to_southampton"): 0.58,
    ("evening", "from_southampton"): 1.94,
}

DAY_START_HOUR = 8.0
DAY_END_HOUR = 18.0


class BandwidthProfile:
    """Piecewise-constant bandwidth (Mbit/s) over the 24-hour cycle.

    Defined by a sorted list of ``(start_hour, rate_mbit_s)`` segments; a
    segment runs until the next segment's start (wrapping at midnight).

    >>> profile = BandwidthProfile([(0.0, 1.0), (8.0, 0.5), (18.0, 1.0)])
    >>> profile.rate_at(12.0)
    0.5
    >>> profile.rate_at(20.0)
    1.0
    """

    def __init__(self, segments: list[tuple[float, float]]) -> None:
        if not segments:
            raise NetworkError("a bandwidth profile needs at least one segment")
        ordered = sorted(segments)
        if ordered[0][0] != 0.0:
            raise NetworkError("the first segment must start at hour 0")
        hours = [h for h, _ in ordered]
        if len(set(hours)) != len(hours):
            raise NetworkError("duplicate segment start hours")
        for hour, rate in ordered:
            if not 0.0 <= hour < 24.0:
                raise NetworkError(f"segment hour {hour} out of range")
            if rate <= 0:
                raise NetworkError(f"bandwidth must be positive, got {rate}")
        self.segments = ordered

    @classmethod
    def constant(cls, rate_mbit_s: float) -> "BandwidthProfile":
        return cls([(0.0, rate_mbit_s)])

    def rate_at(self, hour: float) -> float:
        """Bandwidth in Mbit/s at the given hour of day."""
        hour = hour % 24.0
        current = self.segments[-1][1]  # wraps from the previous day
        for start, rate in self.segments:
            if start <= hour:
                current = rate
            else:
                break
        return current

    def next_boundary(self, hour: float) -> float:
        """Hours until the next segment boundary after ``hour``."""
        hour = hour % 24.0
        for start, _rate in self.segments:
            if start > hour:
                return start - hour
        # wrap to the first boundary tomorrow
        return 24.0 - hour + self.segments[0][0]

    def is_constant(self) -> bool:
        rates = {rate for _h, rate in self.segments}
        return len(rates) == 1

    def __repr__(self) -> str:
        parts = ", ".join(f"{h:g}h:{r:g}Mb/s" for h, r in self.segments)
        return f"BandwidthProfile({parts})"


def paper_profile(direction: str) -> BandwidthProfile:
    """The measured Southampton<->QMW profile for one direction.

    ``direction`` is ``"to_southampton"`` or ``"from_southampton"``.
    """
    try:
        day = PAPER_RATES[("day", direction)]
        evening = PAPER_RATES[("evening", direction)]
    except KeyError:
        raise NetworkError(
            f"direction must be to_southampton/from_southampton, got {direction!r}"
        ) from None
    return BandwidthProfile(
        [(0.0, evening), (DAY_START_HOUR, day), (DAY_END_HOUR, evening)]
    )
