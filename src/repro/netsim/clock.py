"""Simulated clock.

All netsim components share one :class:`SimClock`.  Time is a float number
of seconds since the start of the simulation; the clock also maps absolute
time onto a 24-hour cycle so bandwidth profiles can vary by time of day
(the paper's day vs evening measurements).
"""

from __future__ import annotations

from repro.errors import NetworkError

__all__ = ["SimClock", "SECONDS_PER_DAY"]

SECONDS_PER_DAY = 24 * 3600.0


class SimClock:
    """Monotonic simulated time with a time-of-day view."""

    def __init__(self, start_hour: float = 12.0) -> None:
        """``start_hour`` positions time zero within the day (default noon,
        i.e. daytime rates apply at the start of a simulation)."""
        if not 0.0 <= start_hour < 24.0:
            raise NetworkError("start_hour must be in [0, 24)")
        self._start_offset = start_hour * 3600.0
        self._now = 0.0

    @property
    def now(self) -> float:
        """Seconds since simulation start."""
        return self._now

    @property
    def hour_of_day(self) -> float:
        """Current position within the 24-hour cycle, in hours."""
        absolute = self._start_offset + self._now
        return (absolute % SECONDS_PER_DAY) / 3600.0

    def seconds_until_hour(self, hour: float) -> float:
        """Seconds from now until the next occurrence of ``hour``."""
        if not 0.0 <= hour < 24.0:
            raise NetworkError("hour must be in [0, 24)")
        current = self.hour_of_day
        delta_hours = (hour - current) % 24.0
        if delta_hours == 0.0:
            delta_hours = 24.0
        return delta_hours * 3600.0

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new ``now``."""
        if seconds < 0:
            raise NetworkError("cannot advance the clock backwards")
        self._now += seconds
        return self._now

    def at(self, seconds: float) -> "SimClock":
        """A copy of this clock positioned at absolute time ``seconds``."""
        clone = SimClock(self._start_offset / 3600.0)
        clone._now = seconds
        return clone

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.1f}s, hour={self.hour_of_day:.2f})"
