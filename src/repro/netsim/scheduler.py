"""Concurrent transfers with fair-share contention.

The point-to-point :class:`~repro.netsim.transfer.TransferEngine` runs one
transfer at a time.  Real archives serve many users at once, and the
paper's bottleneck argument ("data distribution can reduce access
bottlenecks at individual sites") is fundamentally about *contention*:
one site serving K downloads shares its uplink K ways, while K
distributed servers each serve at full rate.

:class:`ConcurrentScheduler` models this with processor-sharing: each
host's per-direction capacity (from the bandwidth profiles, so day/evening
variation still applies) is divided equally among its active flows, and a
flow progresses at the minimum of its two endpoints' shares.  The
simulation advances event by event — the next flow completion or the next
bandwidth-profile boundary, whichever comes first.
"""

from __future__ import annotations

from repro.errors import NetworkError
from repro.netsim.clock import SimClock
from repro.netsim.topology import Network

__all__ = ["Flow", "ConcurrentScheduler"]

_MAX_EVENTS = 100_000


class Flow:
    """One transfer participating in the shared simulation."""

    __slots__ = ("src", "dst", "nbytes", "label", "remaining_bits",
                 "start_time", "finish_time")

    def __init__(self, src: str, dst: str, nbytes: int, label: str = "") -> None:
        if nbytes < 0:
            raise NetworkError("flow size cannot be negative")
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.label = label
        self.remaining_bits = nbytes * 8.0
        self.start_time: float | None = None
        self.finish_time: float | None = None

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    @property
    def elapsed(self) -> float:
        if self.start_time is None or self.finish_time is None:
            raise NetworkError("flow has not completed")
        return self.finish_time - self.start_time

    def __repr__(self) -> str:
        state = f"done@{self.finish_time:.1f}" if self.done else (
            f"{self.remaining_bits / 8:.0f}B left"
        )
        return f"Flow({self.src}->{self.dst}, {state})"


class ConcurrentScheduler:
    """Processor-sharing simulation of simultaneous transfers."""

    def __init__(self, network: Network, clock: SimClock | None = None) -> None:
        self.network = network
        self.clock = clock or SimClock()

    def run(self, flows: list[Flow]) -> float:
        """Run all ``flows`` to completion concurrently from ``clock.now``.

        Returns the makespan (seconds from start until the last flow
        finishes).  The shared clock is advanced to the finish time.
        """
        start = self.clock.now
        active: list[Flow] = []
        for flow in flows:
            flow.start_time = start
            if self.network.is_local(flow.src, flow.dst) or flow.nbytes == 0:
                flow.finish_time = start
            else:
                # validates that a route exists before we begin
                self.network.profile_between(flow.src, flow.dst)
                active.append(flow)

        for _ in range(_MAX_EVENTS):
            if not active:
                break
            rates = self._fair_rates(active)
            # time until the first completion at current rates
            dt_finish = min(
                flow.remaining_bits / rates[id(flow)] for flow in active
            )
            # time until any relevant profile boundary
            dt_boundary = min(
                self.network.profile_between(f.src, f.dst).next_boundary(
                    self.clock.hour_of_day
                ) * 3600.0
                for f in active
            )
            dt = min(dt_finish, dt_boundary)
            for flow in active:
                flow.remaining_bits -= rates[id(flow)] * dt
            self.clock.advance(dt)
            still_active = []
            for flow in active:
                if flow.remaining_bits <= 1e-6:
                    flow.remaining_bits = 0.0
                    flow.finish_time = self.clock.now
                else:
                    still_active.append(flow)
            active = still_active
        else:  # pragma: no cover - defensive
            raise NetworkError("concurrent simulation did not converge")
        return self.clock.now - start

    def _fair_rates(self, active: list[Flow]) -> dict[int, float]:
        """Bits/second for each active flow under processor sharing."""
        hour = self.clock.hour_of_day
        # how many active flows touch each host (either direction)
        load: dict[str, int] = {}
        for flow in active:
            load[flow.src] = load.get(flow.src, 0) + 1
            load[flow.dst] = load.get(flow.dst, 0) + 1
        rates: dict[int, float] = {}
        for flow in active:
            capacity = (
                self.network.profile_between(flow.src, flow.dst).rate_at(hour)
                * 1_000_000.0
            )
            share = capacity / max(load[flow.src], load[flow.dst])
            rates[id(flow)] = share
        return rates
