"""Network topology: hosts and directed-capacity links.

EASIA deployments have a database-server host (Southampton), file-server
hosts "that may be located anywhere on the Internet", and user sites.  The
:class:`Network` stores hosts and the links between them; each link carries
one bandwidth profile per direction, because the paper's central finding is
that the two directions are asymmetric (0.25 vs 0.37 Mbit/s by day, 0.58
vs 1.94 by evening).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import NetworkError, NoRouteError, UnknownHostError
from repro.netsim.bandwidth import BandwidthProfile

__all__ = ["Host", "Link", "Network"]

_ROLES = ("db_server", "file_server", "user_site", "generic")


class Host:
    """A named machine in the simulated topology."""

    __slots__ = ("name", "role", "compute_rate")

    def __init__(self, name: str, role: str = "generic", compute_rate: float = 50.0) -> None:
        """``compute_rate`` is post-processing throughput in MByte/s of
        input data — used by the distributed-processing benchmarks."""
        if role not in _ROLES:
            raise NetworkError(f"role must be one of {_ROLES}, got {role!r}")
        if compute_rate <= 0:
            raise NetworkError("compute_rate must be positive")
        self.name = name
        self.role = role
        self.compute_rate = compute_rate

    def __repr__(self) -> str:
        return f"Host({self.name!r}, {self.role})"


class Link:
    """A bidirectional connection with per-direction bandwidth profiles."""

    __slots__ = ("a", "b", "profile_ab", "profile_ba", "latency_s")

    def __init__(
        self,
        a: str,
        b: str,
        profile_ab: BandwidthProfile,
        profile_ba: BandwidthProfile | None = None,
        latency_s: float = 0.0,
    ) -> None:
        if a == b:
            raise NetworkError("a link needs two distinct hosts")
        if latency_s < 0:
            raise NetworkError("latency cannot be negative")
        self.a = a
        self.b = b
        self.profile_ab = profile_ab
        self.profile_ba = profile_ba or profile_ab
        self.latency_s = latency_s

    def profile(self, src: str, dst: str) -> BandwidthProfile:
        if (src, dst) == (self.a, self.b):
            return self.profile_ab
        if (src, dst) == (self.b, self.a):
            return self.profile_ba
        raise NoRouteError(f"link {self.a}<->{self.b} does not join {src}->{dst}")


class Network:
    """Hosts plus links, with optional local loopback semantics.

    Transfers between a host and itself are *local*: they take zero network
    time, which is exactly the paper's "archive data where it is generated"
    advantage.
    """

    def __init__(self) -> None:
        self._hosts: dict[str, Host] = {}
        self._links: dict[frozenset, Link] = {}
        self._default_profile: BandwidthProfile | None = None
        #: severed host pairs (network partitions) and downed hosts — the
        #: failure scenarios the replication health monitor probes against
        self._partitions: set[frozenset] = set()
        self._down_hosts: set[str] = set()

    # -- construction ------------------------------------------------------

    def add_host(self, host: Host) -> Host:
        if host.name in self._hosts:
            raise NetworkError(f"host {host.name} already exists")
        self._hosts[host.name] = host
        return host

    def add_link(self, link: Link) -> Link:
        for end in (link.a, link.b):
            if end not in self._hosts:
                raise UnknownHostError(f"unknown host {end}")
        key = frozenset((link.a, link.b))
        if key in self._links:
            raise NetworkError(f"link {link.a}<->{link.b} already exists")
        self._links[key] = link
        return link

    def set_default_profile(self, profile: BandwidthProfile) -> None:
        """Fallback bandwidth for host pairs without an explicit link."""
        self._default_profile = profile

    # -- lookup ---------------------------------------------------------------

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise UnknownHostError(f"unknown host {name}") from None

    def hosts(self, role: str | None = None) -> list[Host]:
        out = list(self._hosts.values())
        if role is not None:
            out = [h for h in out if h.role == role]
        return out

    def has_host(self, name: str) -> bool:
        return name in self._hosts

    def profile_between(self, src: str, dst: str) -> BandwidthProfile:
        """The bandwidth profile governing a ``src`` -> ``dst`` transfer."""
        self.host(src)
        self.host(dst)
        if src == dst:
            raise NoRouteError("local transfers have no network profile")
        link = self._links.get(frozenset((src, dst)))
        if link is not None:
            return link.profile(src, dst)
        if self._default_profile is not None:
            return self._default_profile
        raise NoRouteError(f"no link between {src} and {dst}")

    def latency_between(self, src: str, dst: str) -> float:
        if src == dst:
            return 0.0
        link = self._links.get(frozenset((src, dst)))
        return link.latency_s if link is not None else 0.0

    def is_local(self, src: str, dst: str) -> bool:
        return src == dst

    # -- failure scenarios ----------------------------------------------------

    def partition(self, a: str, b: str) -> None:
        """Sever connectivity between two hosts (both directions)."""
        self.host(a), self.host(b)
        if a == b:
            raise NetworkError("cannot partition a host from itself")
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        """Restore connectivity previously severed by :meth:`partition`."""
        self._partitions.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        self._partitions.clear()
        self._down_hosts.clear()

    def set_host_down(self, name: str, down: bool = True) -> None:
        """Mark a host dead (unreachable from everywhere) or alive again."""
        self.host(name)
        if down:
            self._down_hosts.add(name)
        else:
            self._down_hosts.discard(name)

    def is_reachable(self, src: str, dst: str) -> bool:
        """Whether traffic can currently flow ``src`` -> ``dst``.

        A host is always reachable from itself; otherwise partitions and
        downed hosts block the path.  Used by the replication failure
        detector to simulate partition scenarios.
        """
        if src == dst:
            return True
        if src in self._down_hosts or dst in self._down_hosts:
            return False
        return frozenset((src, dst)) not in self._partitions

    def set_latency(self, a: str, b: str, latency_s: float) -> None:
        """Adjust the latency of the ``a``<->``b`` link (slow-link scenario).

        Creates a default-profile link if none exists yet, so tests can
        degrade any host pair without pre-declaring the topology edge.
        """
        if latency_s < 0:
            raise NetworkError("latency cannot be negative")
        key = frozenset((a, b))
        link = self._links.get(key)
        if link is None:
            if self._default_profile is None:
                raise NoRouteError(
                    f"no link between {a} and {b} and no default profile"
                )
            link = Link(a, b, self._default_profile, latency_s=latency_s)
            for end in (a, b):
                if end not in self._hosts:
                    self.add_host(Host(end))
            self._links[key] = link
        link.latency_s = latency_s

    @classmethod
    def paper_topology(cls, remote_sites: Iterable[str] = ("qmw.london",)) -> "Network":
        """The measured Southampton<->remote-site setup from the paper.

        ``southampton`` hosts the database server; each remote site gets a
        link whose directional profiles match Table 1 (transfers *toward*
        southampton see the "To Southampton" rates).
        """
        from repro.netsim.bandwidth import paper_profile

        network = cls()
        network.add_host(Host("southampton", role="db_server"))
        for site in remote_sites:
            network.add_host(Host(site, role="user_site"))
            network.add_link(
                Link(
                    site,
                    "southampton",
                    profile_ab=paper_profile("to_southampton"),
                    profile_ba=paper_profile("from_southampton"),
                )
            )
        return network
