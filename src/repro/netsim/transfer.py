"""Transfer-time computation and byte accounting.

Two levels of fidelity:

* :func:`transfer_seconds` — closed-form duration for a transfer that runs
  entirely at one rate.  This is the arithmetic behind the paper's Table 1
  (e.g. 85 MByte at 0.25 Mbit/s -> 2720 s -> "45m20s").  File sizes use
  decimal megabytes (1 MByte = 10^6 bytes), which is what reproduces the
  paper's figures exactly.
* :class:`TransferEngine` — stateful engine over a :class:`Network` and a
  :class:`SimClock` that integrates piecewise bandwidth across day/evening
  boundaries, advances the clock, and records every transfer so benchmarks
  can total bytes-moved per design.
"""

from __future__ import annotations

import math

from repro.errors import NetworkError
from repro.netsim.bandwidth import BandwidthProfile
from repro.obs import get_observability
from repro.netsim.clock import SimClock
from repro.netsim.topology import Network

__all__ = [
    "MBYTE",
    "transfer_seconds",
    "format_duration",
    "TransferRecord",
    "TransferEngine",
]

#: decimal megabyte — the unit that makes the paper's table arithmetic exact
MBYTE = 1_000_000


def transfer_seconds(nbytes: float, rate_mbit_s: float) -> float:
    """Exact (un-rounded) seconds to move ``nbytes`` at ``rate_mbit_s``."""
    if nbytes < 0:
        raise NetworkError("cannot transfer a negative number of bytes")
    if rate_mbit_s <= 0:
        raise NetworkError("bandwidth must be positive")
    return (nbytes * 8.0) / (rate_mbit_s * 1_000_000.0)


def _round_half_up(value: float) -> int:
    """Round to nearest second, halves up — matches the paper's rounding
    (85 MB at 1.94 Mbit/s = 350.5 s, reported as 5m51s)."""
    return math.floor(value + 0.5)


def format_duration(seconds: float) -> str:
    """Render a duration the way the paper's Table 1 does.

    >>> format_duration(2720)
    '45m20s'
    >>> format_duration(17408)
    '4h50m08s'
    """
    total = _round_half_up(seconds)
    hours, rest = divmod(total, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}h{minutes:02d}m{secs:02d}s"
    return f"{minutes}m{secs:02d}s"


class TransferRecord:
    """Accounting entry for one completed (simulated) transfer."""

    __slots__ = ("src", "dst", "nbytes", "seconds", "started_at", "local", "label")

    def __init__(
        self,
        src: str,
        dst: str,
        nbytes: int,
        seconds: float,
        started_at: float,
        local: bool,
        label: str = "",
    ) -> None:
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.seconds = seconds
        self.started_at = started_at
        self.local = local
        self.label = label

    @property
    def wide_area_bytes(self) -> int:
        """Bytes that actually crossed the wide-area network."""
        return 0 if self.local else self.nbytes

    def __repr__(self) -> str:
        kind = "local" if self.local else "wan"
        return (
            f"TransferRecord({self.src}->{self.dst}, {self.nbytes}B, "
            f"{self.seconds:.1f}s, {kind})"
        )


class TransferEngine:
    """Executes transfers against a topology, advancing a shared clock."""

    def __init__(self, network: Network, clock: SimClock | None = None) -> None:
        self.network = network
        self.clock = clock or SimClock()
        self.records: list[TransferRecord] = []

    # -- core ------------------------------------------------------------------

    def duration(self, src: str, dst: str, nbytes: int, at: float | None = None) -> float:
        """Seconds a ``src``->``dst`` transfer of ``nbytes`` would take if it
        started at simulated time ``at`` (default: now), without executing
        it.  Integrates across bandwidth-profile boundaries."""
        if self.network.is_local(src, dst):
            return 0.0
        profile = self.network.profile_between(src, dst)
        start = self.clock.now if at is None else at
        latency = self.network.latency_between(src, dst)
        return latency + self._piecewise_seconds(profile, start, nbytes)

    def _piecewise_seconds(self, profile: BandwidthProfile, start: float, nbytes: int) -> float:
        if nbytes == 0:
            return 0.0
        if profile.is_constant():
            return transfer_seconds(nbytes, profile.segments[0][1])
        elapsed = 0.0
        remaining_bits = nbytes * 8.0
        probe = self.clock.at(start)
        # Cap the integration: even the slowest paper rate moves ~2.7 GB/day,
        # so any realistic transfer converges; guard against degenerate input.
        for _ in range(10_000):
            hour = probe.hour_of_day
            rate_bits = profile.rate_at(hour) * 1_000_000.0
            to_boundary = profile.next_boundary(hour) * 3600.0
            bits_in_segment = rate_bits * to_boundary
            if remaining_bits <= bits_in_segment:
                return elapsed + remaining_bits / rate_bits
            remaining_bits -= bits_in_segment
            elapsed += to_boundary
            probe.advance(to_boundary)
        raise NetworkError("transfer did not converge (bandwidth too low?)")

    def transfer(self, src: str, dst: str, nbytes: int, label: str = "") -> TransferRecord:
        """Execute a transfer now: advances the clock and records it.

        Observability note: the exported span carries *simulated* start and
        end times (the clock's seconds), not wall time — a benchmark that
        simulates an hours-long ftp session traces as hours-long, instead
        of the microseconds the arithmetic took.
        """
        local = self.network.is_local(src, dst)
        seconds = self.duration(src, dst, nbytes)
        record = TransferRecord(
            src, dst, nbytes, seconds, self.clock.now, local, label
        )
        self.clock.advance(seconds)
        self.records.append(record)
        obs = get_observability()
        if obs.enabled:
            obs.tracer.record(
                "netsim.transfer",
                start=record.started_at,
                end=record.started_at + seconds,
                src=src, dst=dst, nbytes=nbytes, local=local,
                label=label, clock="sim",
            )
            obs.metrics.histogram("netsim.transfer_bytes").observe(nbytes)
            obs.metrics.counter("netsim.wan_bytes").inc(record.wide_area_bytes)
            obs.metrics.counter("netsim.transfers").inc()
        return record

    # -- accounting ---------------------------------------------------------------

    def total_wan_bytes(self) -> int:
        return sum(r.wide_area_bytes for r in self.records)

    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    def reset_accounting(self) -> None:
        self.records.clear()
