"""``repro.obs`` — unified observability: metrics, tracing, event log.

The archive is pitched as an *active* archive serving a distributed
community; its operational claims (transfer times, operations savings,
bandwidth budgets) are measurement claims.  This package is the single
instrumentation substrate every layer reports through:

* :mod:`repro.obs.metrics` — counters, gauges, histograms with quantile
  summaries, in a :class:`MetricsRegistry`;
* :mod:`repro.obs.tracing` — context-managed spans with parent/child
  propagation and an in-memory ring-buffer exporter;
* :mod:`repro.obs.events` — structured events plus a threshold-driven
  slow-query log.

One :class:`Observability` object bundles the three.  A module-global
default starts in **no-op mode** — every instrument is a shared null
object, so the hot paths (``Database.execute``, servlet dispatch, token
issue) pay only an attribute check until someone opts in::

    import repro.obs as obs

    handle = obs.enable(slow_query_seconds=0.01)   # install a live default
    ... run the workload ...
    print(handle.metrics.render_text())
    print(handle.tracer.snapshot()[-1])
    obs.disable()                                   # back to no-op

Components accept an explicit ``Observability`` instance where isolation
matters (tests, multi-archive processes); everything else picks up the
global default at call time via :func:`get_observability`.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.obs.events import (
    DEFAULT_SLOW_QUERY_SECONDS,
    EventLog,
    NullEventLog,
    NullSlowQueryLog,
    SlowQueryLog,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.tracing import NullTracer, Span, Tracer

__all__ = [
    "Observability",
    "get_observability",
    "set_observability",
    "enable",
    "disable",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "EventLog",
    "SlowQueryLog",
]


class Observability:
    """Bundle of one metrics registry, one tracer and one event log.

    ``enabled=False`` builds the null variants of all three, making every
    instrumentation call a no-op; the flag itself is the hot-path guard
    instrumented code checks before doing any extra work.
    """

    def __init__(
        self,
        enabled: bool = True,
        slow_query_seconds: float = DEFAULT_SLOW_QUERY_SECONDS,
        time_source: Callable[[], float] | None = None,
        span_capacity: int = 512,
        event_capacity: int = 1024,
    ) -> None:
        self.enabled = enabled
        if enabled:
            self.metrics = MetricsRegistry()
            self.tracer = Tracer(capacity=span_capacity)
            self.events = EventLog(
                capacity=event_capacity,
                time_source=time_source or time.time,
            )
            self.slow_query = SlowQueryLog(self.events, slow_query_seconds)
        else:
            self.metrics = NullRegistry()
            self.tracer = NullTracer()
            self.events = NullEventLog()
            self.slow_query = NullSlowQueryLog()

    def reset(self) -> None:
        """Drop all collected data (instrument definitions included)."""
        self.metrics.reset()
        self.tracer.reset()
        self.events.reset()

    def snapshot(self) -> dict[str, Any]:
        """One plain-data view of everything collected so far."""
        return {
            "enabled": self.enabled,
            "metrics": self.metrics.snapshot(),
            "spans": self.tracer.snapshot(),
            "events": self.events.events(),
            "slow_queries": self.slow_query.entries(),
        }

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "no-op"
        return f"Observability({state})"


#: the process-wide default; starts as a shared no-op
_NULL = Observability(enabled=False)
_default: Observability = _NULL


def get_observability() -> Observability:
    """The current process-wide default (no-op until :func:`enable`)."""
    return _default


def set_observability(obs: Observability | None) -> Observability:
    """Install ``obs`` as the process-wide default (None restores the
    no-op); returns the previous default so callers can restore it."""
    global _default
    previous = _default
    _default = obs if obs is not None else _NULL
    return previous


def enable(**kwargs: Any) -> Observability:
    """Install (and return) a live default; kwargs as for Observability."""
    obs = Observability(enabled=True, **kwargs)
    set_observability(obs)
    return obs


def disable() -> None:
    """Restore the no-op default."""
    set_observability(None)
