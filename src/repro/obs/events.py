"""Structured event log and the slow-query log built on top of it.

Events are plain dictionaries (``kind`` plus arbitrary fields, stamped
with a sequence number and a timestamp) held in a bounded ring buffer.
Optional *sinks* — callables receiving each event as it is emitted — let
other layers mirror the stream: the benchmark reporter routes its table
output through here, and tests attach list-appending sinks.

The :class:`SlowQueryLog` is the classic operational tool the paper's
production counterparts (XSA server statistics, SDAMS quick-look
monitoring) treat as table stakes: any statement whose elapsed time
crosses a configurable threshold is recorded with its SQL text, bound
parameters and row counts, ready for ``/metrics``-style inspection.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable

__all__ = ["EventLog", "SlowQueryLog", "NullEventLog", "NullSlowQueryLog"]

#: default ring-buffer capacity
DEFAULT_CAPACITY = 1024

#: default slow-query threshold, seconds (50 ms: generous for an in-memory
#: engine, so only genuinely mis-planned statements surface)
DEFAULT_SLOW_QUERY_SECONDS = 0.05


class EventLog:
    """Bounded, sink-fanning structured event stream."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        time_source: Callable[[], float] = time.time,
    ) -> None:
        self._time = time_source
        self._seq = 0
        self._seq_lock = threading.Lock()
        self.ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        #: callables invoked with each event as it is emitted
        self.sinks: list[Callable[[dict[str, Any]], None]] = []

    def emit(self, kind: str, **fields: Any) -> dict[str, Any]:
        with self._seq_lock:
            self._seq += 1
            seq = self._seq
        event = {"seq": seq, "ts": self._time(), "kind": kind, **fields}
        self.ring.append(event)
        for sink in self.sinks:
            sink(event)
        return event

    def add_sink(self, sink: Callable[[dict[str, Any]], None]) -> None:
        self.sinks.append(sink)

    def events(self, kind: str | None = None) -> list[dict[str, Any]]:
        """Retained events, oldest first, optionally filtered by kind."""
        if kind is None:
            return list(self.ring)
        return [e for e in self.ring if e["kind"] == kind]

    def reset(self) -> None:
        self.ring.clear()

    def __len__(self) -> int:
        return len(self.ring)


class SlowQueryLog:
    """Threshold-driven statement log feeding the shared event stream."""

    def __init__(
        self,
        events: EventLog,
        threshold_seconds: float = DEFAULT_SLOW_QUERY_SECONDS,
    ) -> None:
        self.events = events
        self.threshold_seconds = threshold_seconds

    def record(
        self,
        sql: str,
        elapsed: float,
        params: Any = None,
        rows: int = 0,
        rows_scanned: int = 0,
    ) -> bool:
        """Log the statement if it crossed the threshold; True when logged."""
        if elapsed < self.threshold_seconds:
            return False
        self.events.emit(
            "slow_query",
            sql=sql,
            elapsed=elapsed,
            params=tuple(params) if params else (),
            rows=rows,
            rows_scanned=rows_scanned,
        )
        return True

    def entries(self) -> list[dict[str, Any]]:
        return self.events.events("slow_query")


class NullEventLog:
    """Disabled-mode event log."""

    ring: deque = deque(maxlen=0)
    sinks: list = []

    def emit(self, kind: str, **fields: Any) -> dict[str, Any]:
        return {}

    def add_sink(self, sink) -> None:
        pass

    def events(self, kind: str | None = None) -> list[dict[str, Any]]:
        return []

    def reset(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


class NullSlowQueryLog:
    """Disabled-mode slow-query log."""

    threshold_seconds = float("inf")

    def record(self, sql: str, elapsed: float, params: Any = None,
               rows: int = 0, rows_scanned: int = 0) -> bool:
        return False

    def entries(self) -> list[dict[str, Any]]:
        return []
