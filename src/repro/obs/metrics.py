"""Metrics primitives: counters, gauges and histograms in a registry.

Design constraints, in order:

1. **Cheap on hot paths.**  A counter increment is one attribute add; a
   histogram observation is a few float operations plus a bounded-deque
   append.  When observability is globally disabled the shared null
   instruments make every call a no-op attribute lookup.
2. **Quantiles without dependencies.**  Histograms keep a sliding window
   of recent observations (bounded ``deque``) and compute quantiles over
   it on demand — exact for small workloads, a recency-weighted estimate
   for long-running ones, and fully deterministic either way.
3. **Introspectable.**  ``MetricsRegistry.snapshot()`` returns plain
   dictionaries and ``render_text()`` emits a Prometheus-flavoured text
   exposition, which the web layer's ``/metrics`` endpoint and the
   ``repro obs`` CLI command serve verbatim.

Instruments are keyed by name plus optional labels::

    registry.counter("sql.statements", kind="SELECT").inc()
    registry.histogram("http.request_seconds", path="/search").observe(dt)
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
]

#: histogram sliding-window size (recent observations kept for quantiles)
DEFAULT_WINDOW = 1024


def _metric_key(name: str, labels: dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("key", "value")

    kind = "counter"

    def __init__(self, key: str) -> None:
        self.key = key
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def describe(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A value that can go up and down (or be computed on read)."""

    __slots__ = ("key", "_value", "_fn")

    kind = "gauge"

    def __init__(self, key: str) -> None:
        self.key = key
        self._value: float = 0.0
        self._fn = None

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        self._value -= amount

    def set_function(self, fn) -> None:
        """Pull-style gauge: ``fn()`` is evaluated at snapshot time."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value

    def describe(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Running aggregates plus a sliding window for quantile summaries."""

    __slots__ = ("key", "count", "total", "min", "max", "_window")

    kind = "histogram"

    def __init__(self, key: str, window: int = DEFAULT_WINDOW) -> None:
        self.key = key
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._window: deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._window.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Quantile over the retained window (nearest-rank, linear
        interpolation); 0.0 when nothing has been observed."""
        if not self._window:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        ordered = sorted(self._window)
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction

    def summary(self, quantiles: Iterable[float] = (0.5, 0.9, 0.99)) -> dict[str, Any]:
        out: dict[str, Any] = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": 0.0 if self.count == 0 else self.min,
            "max": 0.0 if self.count == 0 else self.max,
        }
        for q in quantiles:
            out[f"p{int(q * 100)}"] = self.quantile(q)
        return out

    def describe(self) -> dict[str, Any]:
        return {"type": self.kind, **self.summary()}


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Registration is lock-guarded so concurrent first-touches of the same
    key resolve to one instrument.  Updates on the instruments themselves
    are plain attribute arithmetic — individually atomic enough under the
    GIL for monitoring data, and kept lock-free to stay cheap on hot
    paths (a lost increment under extreme contention skews a statistic,
    never correctness).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, labels: dict[str, Any]):
        key = _metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(key)
                    self._metrics[key] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {key!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Every instrument's current state, keyed by full metric key."""
        with self._lock:
            items = list(self._metrics.items())
        return {key: metric.describe() for key, metric in sorted(items)}

    def render_text(self) -> str:
        """Prometheus-flavoured exposition of the whole registry."""
        lines: list[str] = []
        for key, state in self.snapshot().items():
            if state["type"] == "histogram":
                for field, value in state.items():
                    if field == "type":
                        continue
                    lines.append(f"{key}.{field} {value:g}")
            else:
                value = state["value"]
                text = f"{value:g}" if isinstance(value, float) else str(value)
                lines.append(f"{key} {text}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)


# -- no-op variants (global disabled mode) -------------------------------------


class NullCounter:
    __slots__ = ()
    kind = "counter"
    value = 0

    def inc(self, amount: int | float = 1) -> None:
        pass


class NullGauge:
    __slots__ = ()
    kind = "gauge"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set_function(self, fn) -> None:
        pass


class NullHistogram:
    __slots__ = ()
    kind = "histogram"
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def summary(self, quantiles: Iterable[float] = ()) -> dict[str, Any]:
        return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """Shared-singleton registry: every instrument is a no-op."""

    def counter(self, name: str, **labels: Any) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: Any) -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, **labels: Any) -> NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> dict[str, dict[str, Any]]:
        return {}

    def render_text(self) -> str:
        return ""

    def reset(self) -> None:
        pass

    def __len__(self) -> int:
        return 0
