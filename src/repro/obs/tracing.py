"""Context-managed tracing spans with an in-memory ring-buffer exporter.

A :class:`Tracer` maintains a stack of open spans (the archive is an
in-process, synchronous system — one request is on the stack at a time),
so ``tracer.span(...)`` calls nest naturally: the span opened inside
another becomes its child, sharing the root's ``trace_id``.

Finished spans land in a bounded ring buffer (newest win), which the web
layer's ``/trace`` endpoint and the ``repro obs`` CLI render from — no
external collector required.

Two clocks are supported:

* the default ``time.perf_counter`` for real executions, and
* :meth:`Tracer.record` for *externally timed* spans, which is how the
  network simulator reports transfers in simulated seconds — benchmarks
  running under :class:`repro.netsim.SimClock` trace correctly instead of
  reporting the (near-zero) wall time of the simulation step.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = ["Span", "Tracer", "NullTracer"]

#: default ring-buffer capacity for finished spans
DEFAULT_CAPACITY = 512


class Span:
    """One timed operation, possibly nested under a parent."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "start", "end", "attributes", "status",
    )

    def __init__(
        self,
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: int | None,
        start: float,
        attributes: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.attributes = attributes or {}
        self.status = "ok"

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attributes.update(attributes)
        return self

    set_attribute = set

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.duration * 1e3:.3f}ms)"
        )


class Tracer:
    """Creates spans, tracks the open-span stack, exports to a ring buffer."""

    def __init__(
        self,
        time_source: Callable[[], float] = time.perf_counter,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self._time = time_source
        #: the open-span stack is per *thread* — each request thread in the
        #: threaded web tier gets its own nesting context, so concurrent
        #: requests never adopt each other's spans as parents
        self._local = threading.local()
        self._next_id = 1
        self._id_lock = threading.Lock()
        self.finished: deque[Span] = deque(maxlen=capacity)

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- span lifecycle --------------------------------------------------------

    def _new_span(self, name: str, start: float, attrs: dict[str, Any]) -> Span:
        with self._id_lock:
            span_id = self._next_id
            self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        return Span(
            name,
            trace_id=parent.trace_id if parent else span_id,
            span_id=span_id,
            parent_id=parent.span_id if parent else None,
            start=start,
            attributes=attrs,
        )

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child of the current span for the duration of the block.

        >>> tracer = Tracer()
        >>> with tracer.span("outer") as outer:
        ...     with tracer.span("inner") as inner:
        ...         pass
        >>> inner.parent_id == outer.span_id
        True
        """
        span = self._new_span(name, self._time(), attributes)
        self._stack.append(span)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.end = self._time()
            self._stack.pop()
            self.finished.append(span)

    def record(self, name: str, start: float, end: float,
               **attributes: Any) -> Span:
        """Export an externally timed span (e.g. simulated-clock seconds
        from :class:`repro.netsim.TransferEngine`) without touching the
        open-span stack's timing."""
        span = self._new_span(name, start, attributes)
        span.end = end
        self.finished.append(span)
        return span

    # -- introspection ---------------------------------------------------------

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def snapshot(self) -> list[dict[str, Any]]:
        """Finished spans, oldest first, as plain dictionaries."""
        return [span.describe() for span in self.finished]

    def reset(self) -> None:
        self.finished.clear()


class _NullSpan:
    """Shared do-nothing span — also its own context manager."""

    __slots__ = ()
    name = ""
    trace_id = 0
    span_id = 0
    parent_id = None
    start = 0.0
    end = 0.0
    duration = 0.0
    status = "ok"
    attributes: dict[str, Any] = {}

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    set_attribute = set

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled-mode tracer: spans cost two no-op calls."""

    finished: deque = deque(maxlen=0)
    current = None

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name: str, start: float, end: float,
               **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def snapshot(self) -> list[dict[str, Any]]:
        return []

    def reset(self) -> None:
        pass
