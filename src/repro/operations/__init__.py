"""Server-side post-processing operations.

The value-add layer that makes the archive *active*: reusable codes,
themselves archived as DATALINKs, are loosely coupled to datasets through
XUIS markup and executed next to the data — only the (small) results
cross the network.

* :class:`OperationEngine` — resolve / fetch / unpack / execute / collect,
* :class:`CodeUploader` — user code upload under the strict sandbox,
* :class:`Sandbox` / :class:`SandboxPolicy` — confinement,
* :class:`BatchScript` / :func:`pack_code_archive` — the batch-file
  mechanism and archive packaging,
* :class:`OperationCache` / :class:`OperationStats` — the paper's
  future-work features (result caching, statistics for future users),
* :func:`scientific_data_browser` — the NCSA-SDB-style URL service.
"""

from repro.operations.archive_back import ResultArchiver
from repro.operations.batch import BatchScript, pack_code_archive, unpack_archive
from repro.operations.cache import OperationCache
from repro.operations.executor import OperationEngine, OperationResult
from repro.operations.sandbox import Sandbox, SandboxPolicy, SandboxResult
from repro.operations.stats import OperationStats
from repro.operations.upload import CodeUploader
from repro.operations.urlops import identity_service, scientific_data_browser

__all__ = [
    "OperationEngine",
    "OperationResult",
    "ResultArchiver",
    "CodeUploader",
    "Sandbox",
    "SandboxPolicy",
    "SandboxResult",
    "BatchScript",
    "pack_code_archive",
    "unpack_archive",
    "OperationCache",
    "OperationStats",
    "scientific_data_browser",
    "identity_service",
]
