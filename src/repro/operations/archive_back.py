"""Archiving operation outputs back into the archive.

The turbulence schema's VISUALISATION_FILE table exists precisely for
this: a slice image or spectrum produced by a server-side operation is
itself a scientific artefact worth keeping.  :class:`ResultArchiver`
closes the loop — the output file is written onto the *same file server*
that holds the source dataset (it never crosses the network), linked
under DATALINK control, and registered in the database within one
transaction.
"""

from __future__ import annotations

from typing import Any

from repro.datalink.linker import DataLinker
from repro.errors import OperationError
from repro.operations.executor import OperationResult
from repro.sqldb.database import Database
from repro.sqldb.types import Blob, DatalinkValue

__all__ = ["ResultArchiver"]

_MIME_BY_SUFFIX = {
    ".pgm": "image/x-portable-graymap",
    ".png": "image/png",
    ".json": "application/json",
    ".html": "text/html",
    ".txt": "text/plain",
}

#: outputs up to this size also get an in-database BLOB preview
_PREVIEW_LIMIT = 64 * 1024


class ResultArchiver:
    """Persists operation outputs as first-class archive entries."""

    def __init__(self, db: Database, linker: DataLinker,
                 table: str = "VISUALISATION_FILE") -> None:
        self.db = db
        self.linker = linker
        self.table = table.upper()

    def archive(
        self,
        result: OperationResult,
        dataset: DatalinkValue,
        simulation_key: str,
        output_name: str | None = None,
        vis_name: str | None = None,
    ) -> DatalinkValue:
        """Store one output of ``result`` next to its source ``dataset``.

        Returns the new DATALINK value registered in the database.  The
        whole step is transactional: if the row insert fails (e.g.
        duplicate name), the file link is discarded with it.
        """
        if output_name is None:
            output_name, data = result.primary_output()
        else:
            data = result.outputs.get(output_name)
            if data is None:
                raise OperationError(
                    f"operation produced no output named {output_name!r}"
                )
        if vis_name is None:
            stem, _, suffix = output_name.rpartition(".")
            base = stem or output_name
            vis_name = (
                f"{base}_{result.operation.name}_{simulation_key}"
                + (f".{suffix}" if suffix else "")
            )

        server = self.linker.server(dataset.host)
        directory = dataset.directory.rstrip("/")
        path = f"{directory}/vis/{vis_name}"
        server.put(path, data)

        suffix = "." + output_name.rsplit(".", 1)[-1] if "." in output_name else ""
        mime = _MIME_BY_SUFFIX.get(suffix, "application/octet-stream")
        preview = None
        if len(data) <= _PREVIEW_LIMIT:
            preview = Blob(data, mime)

        url = f"{dataset.scheme}://{dataset.host}{path}"
        try:
            self.db.execute(
                f"INSERT INTO {self.table} VALUES (?, ?, ?, ?, ?)",
                (
                    vis_name,
                    simulation_key,
                    suffix.lstrip(".").upper() or "BIN",
                    preview,
                    url,
                ),
            )
        except Exception:
            # the transactional hooks discard the pending link; also drop
            # the staged file so the server is not littered
            if server.filesystem.exists(path) and not (
                server.filesystem.entry(path).linked
            ):
                server.filesystem.delete(path)
            raise
        return DatalinkValue(url)

    def archive_all(
        self,
        result: OperationResult,
        dataset: DatalinkValue,
        simulation_key: str,
    ) -> list[DatalinkValue]:
        """Archive every output file of ``result``."""
        return [
            self.archive(result, dataset, simulation_key, output_name=name)
            for name in sorted(result.outputs)
        ]
