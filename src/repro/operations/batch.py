"""Batch-file emulation.

The paper's operations startup servlet could not redirect file output of
dynamically loaded Java classes (Sun bug 4307856: no way to set the
current directory), so it generates a *batch file* that changes into the
temporary directory, unpacks the code archive, and invokes a second
interpreter.  :class:`BatchScript` reproduces that artefact: it renders
the same shell-style script text (inspectable, shown to admins) and
executes the equivalent steps in-process.
"""

from __future__ import annotations

import io
import os
import tarfile
import zipfile

from repro.errors import OperationExecutionError

__all__ = ["BatchScript", "pack_code_archive", "unpack_archive"]

_SUPPORTED_FORMATS = ("zip", "jar", "tar", "tar.gz", "tgz", "gz")


def pack_code_archive(files: dict[str, bytes], format: str = "zip") -> bytes:
    """Build a code archive (the shape operations are archived in).

    ``files`` maps member names to contents.  Formats: zip/jar (zip
    container) and tar/tar.gz — "various compressed archive formats (such
    as tar.Z, gz, zip, tar etc.)".
    """
    format = format.lower()
    buffer = io.BytesIO()
    if format in ("zip", "jar"):
        with zipfile.ZipFile(buffer, "w", zipfile.ZIP_DEFLATED) as zf:
            for name, data in sorted(files.items()):
                zf.writestr(name, data)
    elif format in ("tar", "tar.gz", "tgz", "gz"):
        mode = "w:gz" if format in ("tar.gz", "tgz", "gz") else "w"
        with tarfile.open(fileobj=buffer, mode=mode) as tf:
            for name, data in sorted(files.items()):
                info = tarfile.TarInfo(name)
                info.size = len(data)
                tf.addfile(info, io.BytesIO(data))
    else:
        raise OperationExecutionError(
            f"unsupported archive format {format!r}; use one of {_SUPPORTED_FORMATS}"
        )
    return buffer.getvalue()


def unpack_archive(data: bytes, workdir: str) -> list[str]:
    """Unpack a zip/jar or tar(.gz) archive into ``workdir``.

    Member paths are confined to the working directory (no ``..`` or
    absolute-name escapes).  Returns the extracted member names.
    """
    names: list[str] = []
    workdir = os.path.abspath(workdir)

    def _target(name: str) -> str:
        full = os.path.abspath(os.path.join(workdir, name))
        if not full.startswith(workdir + os.sep):
            raise OperationExecutionError(f"archive member {name!r} escapes workdir")
        return full

    buffer = io.BytesIO(data)
    if zipfile.is_zipfile(buffer):
        with zipfile.ZipFile(buffer) as zf:
            for info in zf.infolist():
                if info.is_dir():
                    continue
                target = _target(info.filename)
                os.makedirs(os.path.dirname(target), exist_ok=True)
                with open(target, "wb") as fh:
                    fh.write(zf.read(info))
                names.append(info.filename)
        return names
    buffer.seek(0)
    try:
        with tarfile.open(fileobj=buffer) as tf:
            for member in tf.getmembers():
                if not member.isfile():
                    continue
                target = _target(member.name)
                os.makedirs(os.path.dirname(target), exist_ok=True)
                extracted = tf.extractfile(member)
                with open(target, "wb") as fh:
                    fh.write(extracted.read())
                names.append(member.name)
        return names
    except tarfile.TarError as exc:
        raise OperationExecutionError(f"unrecognised code archive: {exc}") from exc


class BatchScript:
    """The dynamically created batch file for one invocation."""

    def __init__(self, workdir: str, archive_name: str | None,
                 entry_point: str, dataset_name: str) -> None:
        self.workdir = workdir
        self.archive_name = archive_name
        self.entry_point = entry_point
        self.dataset_name = dataset_name

    def render(self) -> str:
        """The script text, as the startup servlet would write it."""
        lines = ["#!/bin/sh", f"cd {self.workdir}"]
        if self.archive_name:
            lines.append(f"unpack {self.archive_name}")
        lines.append(f"interpreter {self.entry_point} {self.dataset_name}")
        return "\n".join(lines) + "\n"

    def steps(self) -> list[str]:
        """The abstract steps, for tests/monitoring."""
        out = [f"cd {self.workdir}"]
        if self.archive_name:
            out.append(f"unpack {self.archive_name}")
        out.append(f"run {self.entry_point}({self.dataset_name})")
        return out
