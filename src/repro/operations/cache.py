"""Operation result caching (paper "Future": "Caching operations results").

Datasets under FILE LINK CONTROL are immutable — the file server blocks
renames, deletes and (with WRITE PERMISSION BLOCKED) overwrites — so a
result keyed by (operation, dataset URL, parameters) stays valid for as
long as the link exists.  The cache is a bounded LRU; unlink events should
call :meth:`invalidate_dataset`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

__all__ = ["OperationCache", "CachedResult"]


class CachedResult:
    """The subset of an OperationResult worth keeping."""

    __slots__ = ("outputs", "stdout", "dataset_bytes")

    def __init__(self, outputs: dict[str, bytes], stdout: str, dataset_bytes: int) -> None:
        self.outputs = outputs
        self.stdout = stdout
        self.dataset_bytes = dataset_bytes


class OperationCache:
    """Bounded LRU keyed by (operation, dataset URL, sorted params)."""

    def __init__(self, max_entries: int = 128, max_bytes: int = 256 * 1024 * 1024) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple, CachedResult] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        # concurrent request threads run operations; LRU reordering and
        # eviction are multi-step and must not interleave
        self._lock = threading.Lock()

    @staticmethod
    def key(operation: str, dataset_url: str, params: dict[str, Any]) -> tuple:
        return (operation, dataset_url, tuple(sorted(params.items())))

    def get(self, key: tuple) -> CachedResult | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, result) -> None:
        size = sum(len(d) for d in result.outputs.values())
        if size > self.max_bytes:
            return  # too large to be worth keeping
        with self._lock:
            if key in self._entries:
                self._evict_one(key)
            entry = CachedResult(dict(result.outputs), result.stdout, result.dataset_bytes)
            self._entries[key] = entry
            self._bytes += size
            while len(self._entries) > self.max_entries or self._bytes > self.max_bytes:
                oldest = next(iter(self._entries))
                self._evict_one(oldest)

    def _evict_one(self, key: tuple) -> None:
        entry = self._entries.pop(key)
        self._bytes -= sum(len(d) for d in entry.outputs.values())

    def invalidate_dataset(self, dataset_url: str) -> int:
        """Drop every entry for one dataset (call on unlink)."""
        with self._lock:
            stale = [k for k in self._entries if k[1] == dataset_url]
            for key in stale:
                self._evict_one(key)
            return len(stale)

    def invalidate_file(self, host: str, path: str) -> int:
        """Drop entries whose dataset URL points at ``host``/``path``,
        whatever the scheme — the shape unlink notifications arrive in."""
        suffix = f"//{host}{path}"
        with self._lock:
            stale = [
                k for k in self._entries
                if isinstance(k[1], str) and k[1].endswith(suffix)
            ]
            for key in stale:
                self._evict_one(key)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stored_bytes(self) -> int:
        return self._bytes
