"""The operation engine: resolve, fetch, unpack, execute, collect.

This is the paper's "operations" machinery end to end:

1. the XUIS names an operation on a DATALINK column, with ``<if>``
   conditions selecting the rows it applies to;
2. the operation's executable is resolved — either a code archive that is
   *itself* stored as a DATALINK (``<database.result>``) or an external
   URL service (``<URL>``);
3. a batch script is generated: cd into a fresh session-named temporary
   directory, unpack the archive, invoke the interpreter on the entry
   point with the dataset filename as its parameter;
4. the code runs in the sandbox next to the data (on the file-server
   host — no dataset bytes cross the wide-area network);
5. output files are collected and shipped to the user — this is the data
   reduction the architecture exists for.

The engine also implements the paper's "Future" list: result caching,
execution statistics for future users, runtime progress monitoring, and
operation chaining / multi-dataset application.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable

from repro.datalink.linker import DataLinker
from repro.errors import (
    AuthorizationError,
    OperationError,
    OperationNotApplicable,
    XuisError,
)
from repro.obs import get_observability
from repro.operations.batch import BatchScript, unpack_archive
from repro.operations.cache import OperationCache
from repro.operations.sandbox import Sandbox, SandboxPolicy
from repro.operations.stats import OperationStats
from repro.sqldb.database import Database
from repro.sqldb.types import DatalinkValue
from repro.xuis.model import (
    DatabaseResultLocation,
    OperationSpec,
    UrlLocation,
    XuisDocument,
    parse_colid,
)

__all__ = ["OperationEngine", "OperationResult"]

#: progress stages reported to monitoring hooks, in order
STAGES = ("resolve", "fetch", "unpack", "execute", "collect")


class OperationResult:
    """Everything one invocation produced."""

    def __init__(
        self,
        operation: OperationSpec,
        outputs: dict[str, bytes],
        stdout: str = "",
        batch_script: BatchScript | None = None,
        elapsed: float = 0.0,
        dataset_bytes: int = 0,
        cached: bool = False,
    ) -> None:
        self.operation = operation
        self.outputs = outputs
        self.stdout = stdout
        self.batch_script = batch_script
        self.elapsed = elapsed
        #: size of the dataset the operation consumed (stayed server-side)
        self.dataset_bytes = dataset_bytes
        self.cached = cached

    @property
    def output_bytes(self) -> int:
        """Bytes actually shipped back to the user."""
        return sum(len(d) for d in self.outputs.values())

    @property
    def reduction_factor(self) -> float:
        """Dataset size over shipped size — the bandwidth saving."""
        if self.output_bytes == 0:
            return float("inf")
        return self.dataset_bytes / self.output_bytes

    def primary_output(self) -> tuple[str, bytes]:
        """The single output, for chaining; ambiguous outputs are an error."""
        if len(self.outputs) != 1:
            raise OperationError(
                f"operation {self.operation.name} produced "
                f"{len(self.outputs)} outputs; chaining needs exactly one"
            )
        return next(iter(self.outputs.items()))


class OperationEngine:
    """Executes XUIS-declared operations against archived datasets."""

    def __init__(
        self,
        db: Database,
        linker: DataLinker,
        document: XuisDocument,
        sandbox_root: str,
        cache: OperationCache | None = None,
        stats: OperationStats | None = None,
        keep_workdirs: bool = False,
    ) -> None:
        self.db = db
        self.linker = linker
        self.document = document
        self.sandbox = Sandbox(sandbox_root)
        self.cache = cache if cache is not None else OperationCache()
        self.stats = stats if stats is not None else OperationStats()
        # Cached results become stale the moment their dataset is unlinked
        # (the file may then be deleted or replaced).
        linker.unlink_listeners.append(self.cache.invalidate_file)
        self.keep_workdirs = keep_workdirs
        self._url_services: dict[str, Callable] = {}
        #: progress monitoring callbacks: fn(operation_name, stage, detail)
        self.progress_listeners: list[Callable[[str, str, str], None]] = []
        #: recent progress events for runtime monitoring (future-work):
        #: (sequence, session_tag, operation, stage, detail)
        from collections import deque

        self.recent_events: "deque[tuple[int, str, str, str, str]]" = deque(
            maxlen=256
        )
        import threading

        self._event_seq = 0
        self._event_lock = threading.Lock()
        # the session tag travels with the *calling thread*: concurrent
        # requests running operations must not stamp each other's events
        self._session_local = threading.local()

    @property
    def _current_session(self) -> str:
        return getattr(self._session_local, "tag", "")

    @_current_session.setter
    def _current_session(self, tag: str) -> None:
        self._session_local.tag = tag

    # -- registry -----------------------------------------------------------------

    def register_url_service(self, url: str, handler: Callable) -> None:
        """Register the handler behind a ``<URL>`` operation (the paper's
        NCSA Scientific Data Browser servlet).  ``handler(dataset_bytes,
        params) -> dict[name, bytes]``."""
        self._url_services[url] = handler

    def add_progress_listener(self, listener: Callable[[str, str, str], None]) -> None:
        self.progress_listeners.append(listener)

    def _progress(self, operation: str, stage: str, detail: str = "") -> None:
        with self._event_lock:
            self._event_seq += 1
            self.recent_events.append(
                (self._event_seq, self._current_session, operation, stage, detail)
            )
        for listener in self.progress_listeners:
            listener(operation, stage, detail)

    def events_for_session(self, session_tag: str) -> list[tuple]:
        """Recent progress events recorded for one session (monitoring)."""
        return [e for e in self.recent_events if e[1] == session_tag]

    # -- lookup -------------------------------------------------------------------------

    def operations_for(self, colid: str, row: dict[str, Any],
                       user=None) -> list[OperationSpec]:
        """Operations applicable to ``row`` on ``colid`` for ``user``."""
        column = self.document.column(colid)
        out = []
        for operation in column.operations:
            if not operation.applies_to(row):
                continue
            if user is not None and not user.can_run_operation(operation):
                continue
            out.append(operation)
        return out

    def operation(self, colid: str, name: str) -> OperationSpec:
        column = self.document.column(colid)
        for operation in column.operations:
            if operation.name == name:
                return operation
        raise OperationError(f"no operation {name!r} on column {colid}")

    # -- invocation -----------------------------------------------------------------------

    def invoke(
        self,
        name: str,
        colid: str,
        row: dict[str, Any],
        params: dict[str, Any] | None = None,
        user=None,
        session_tag: str = "session",
        use_cache: bool = True,
    ) -> OperationResult:
        """Run one operation against the dataset referenced by ``row``."""
        operation = self.operation(colid, name)
        if not operation.applies_to(row):
            raise OperationNotApplicable(
                f"operation {name} does not apply to this row"
            )
        if user is not None and not user.can_run_operation(operation):
            raise AuthorizationError(
                f"guest users may not run operation {name}"
            )
        if operation.is_chain:
            # XUIS-declared chain (extended DTD): run the named sibling
            # operations in sequence, each consuming the previous output.
            for step in operation.chain:
                step_op = self.operation(colid, step)
                if user is not None and not user.can_run_operation(step_op):
                    raise AuthorizationError(
                        f"guest users may not run chain step {step}"
                    )
            results = self.invoke_chain(
                operation.chain, colid, row,
                user=user, session_tag=session_tag,
            )
            final = results[-1]
            return OperationResult(
                operation,
                dict(final.outputs),
                final.stdout,
                batch_script=final.batch_script,
                elapsed=sum(r.elapsed for r in results),
                dataset_bytes=results[0].dataset_bytes,
            )

        params = self._validate_params(operation, params or {})
        self._current_session = session_tag
        self._progress(name, "resolve")

        dataset = row.get(colid)
        if not isinstance(dataset, DatalinkValue):
            raise OperationError(
                f"row has no DATALINK dataset in column {colid}"
            )
        obs = get_observability()
        cache_key = self.cache.key(name, dataset.url, params)
        if use_cache:
            hit = self.cache.get(cache_key)
            if hit is not None:
                self.stats.record_cache_hit(name)
                if obs.enabled:
                    obs.metrics.counter("operation.cache_hits").inc()
                return OperationResult(
                    operation, dict(hit.outputs), hit.stdout,
                    dataset_bytes=hit.dataset_bytes, cached=True,
                )
            if obs.enabled:
                obs.metrics.counter("operation.cache_misses").inc()

        with obs.tracer.span(
            "operation.invoke", operation=name, dataset=dataset.url
        ) as span:
            started = time.perf_counter()
            self._progress(name, "fetch", dataset.url)
            server = self.linker.server(dataset.host)
            # The operation runs on the file-server host: the dataset is read
            # locally, never shipped over the wide area.
            data = server.filesystem.read(dataset.server_path)

            if isinstance(operation.location, UrlLocation):
                result = self._invoke_url_service(operation, data, params, started)
            else:
                result = self._invoke_archived(
                    operation, dataset, data, params, session_tag, started
                )
            span.set(
                dataset_bytes=result.dataset_bytes,
                output_bytes=result.output_bytes,
            )
        self.stats.record(
            name, result.elapsed, result.dataset_bytes, result.output_bytes
        )
        if obs.enabled:
            obs.metrics.counter("operation.invocations", operation=name).inc()
            obs.metrics.histogram("operation.seconds").observe(result.elapsed)
            obs.metrics.histogram("operation.output_bytes").observe(
                result.output_bytes
            )
        if use_cache:
            self.cache.put(cache_key, result)
        return result

    def _invoke_url_service(self, operation, data, params, started) -> OperationResult:
        url = operation.location.url
        handler = self._url_services.get(url)
        if handler is None:
            raise OperationError(
                f"no service registered for URL operation at {url}"
            )
        self._progress(operation.name, "execute", url)
        outputs = handler(data, params)
        if not isinstance(outputs, dict):
            raise OperationError("URL service must return a dict of outputs")
        self._progress(operation.name, "collect")
        return OperationResult(
            operation, outputs,
            elapsed=time.perf_counter() - started,
            dataset_bytes=len(data),
        )

    def _invoke_archived(self, operation, dataset, data, params,
                         session_tag, started) -> OperationResult:
        location = operation.location
        if not isinstance(location, DatabaseResultLocation):
            raise OperationError(
                f"operation {operation.name} has no usable location"
            )
        code_link = self._resolve_code_link(location)
        code_server = self.linker.server(code_link.host)
        archive = code_server.filesystem.read(code_link.server_path)

        workdir = self.sandbox.make_workdir(session_tag)
        try:
            with open(f"{workdir}/{dataset.filename}", "wb") as fh:
                fh.write(data)
            self._progress(operation.name, "unpack", code_link.filename)
            members = unpack_archive(archive, workdir)
            entry_name, source = self._entry_point(
                operation, workdir, members
            )
            script = BatchScript(
                workdir, code_link.filename, entry_name, dataset.filename
            )
            self._progress(operation.name, "execute", entry_name)
            with get_observability().tracer.span(
                "operation.sandbox", operation=operation.name, entry=entry_name
            ):
                sandbox_result = self.sandbox.run_source(
                    source,
                    workdir,
                    dataset.filename,
                    params,
                    policy=SandboxPolicy.for_operations(),
                )
            self._progress(operation.name, "collect")
            return OperationResult(
                operation,
                sandbox_result.outputs,
                sandbox_result.stdout,
                batch_script=script,
                elapsed=time.perf_counter() - started,
                dataset_bytes=len(data),
            )
        finally:
            if not self.keep_workdirs:
                self.sandbox.cleanup(workdir)

    def _resolve_code_link(self, location: DatabaseResultLocation) -> DatalinkValue:
        """Run the <database.result> query to find the code's DATALINK."""
        table, column = parse_colid(location.colid)
        clauses = []
        params: list[Any] = []
        for condition in location.conditions:
            cond_table, cond_column = parse_colid(condition.colid)
            if cond_table != table:
                raise OperationError(
                    f"location condition {condition.colid} is not on {table}"
                )
            op_sql = {
                "eq": "=", "ne": "<>", "lt": "<", "le": "<=",
                "gt": ">", "ge": ">=", "like": "LIKE",
            }[condition.op]
            clauses.append(f"{cond_column} {op_sql} ?")
            params.append(condition.value)
        sql = f"SELECT {column} FROM {table}"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        result = self.db.execute(sql, tuple(params))
        if len(result.rows) != 1:
            raise OperationError(
                f"operation code lookup returned {len(result.rows)} rows "
                f"(expected exactly 1): {sql}"
            )
        value = result.scalar()
        if not isinstance(value, DatalinkValue):
            raise OperationError(f"{location.colid} did not yield a DATALINK")
        return value

    def _entry_point(self, operation, workdir: str, members: list[str]) -> tuple[str, str]:
        """Find the executable member.  The XUIS names a Java class file
        (``GetImage.class``); the Python stand-in is ``<stem>.py``, with
        ``main.py`` as fallback."""
        stem = operation.filename.rsplit(".", 1)[0] if operation.filename else ""
        candidates = []
        if stem:
            candidates.extend([f"{stem}.py", operation.filename])
        candidates.append("main.py")
        for candidate in candidates:
            if candidate in members:
                with open(f"{workdir}/{candidate}", encoding="utf-8") as fh:
                    return candidate, fh.read()
        raise OperationError(
            f"archive for {operation.name} has no entry point "
            f"(tried {candidates}; members: {sorted(members)})"
        )

    def _validate_params(self, operation: OperationSpec,
                         provided: dict[str, Any]) -> dict[str, Any]:
        """Check user inputs against the operation's parameter controls and
        fill defaults; reject unknown or out-of-range values."""
        known = {param.name: param for param in operation.params}
        unknown = set(provided) - set(known)
        if unknown:
            raise OperationError(
                f"unknown parameter(s) for {operation.name}: {sorted(unknown)}"
            )
        resolved: dict[str, Any] = {}
        for param_name, param in known.items():
            if param_name in provided:
                value = str(provided[param_name])
                if not param.control.accepts(value):
                    raise OperationError(
                        f"value {value!r} not allowed for parameter {param_name}"
                    )
            else:
                value = param.control.default_value()
                if value is None:
                    raise OperationError(
                        f"parameter {param_name} of {operation.name} is required"
                    )
            resolved[param_name] = value
        return resolved

    # -- future-work features: chaining and multi-dataset ------------------------------

    def invoke_chain(
        self,
        names: Iterable[str],
        colid: str,
        row: dict[str, Any],
        params_list: Iterable[dict[str, Any] | None] = (),
        user=None,
        session_tag: str = "chain",
    ) -> list[OperationResult]:
        """Operation chaining: each operation consumes the previous one's
        (single) output as its dataset."""
        names = list(names)
        params_list = list(params_list) or [None] * len(names)
        if len(params_list) != len(names):
            raise OperationError("params_list length must match names")
        results: list[OperationResult] = []
        current_row = dict(row)
        column = self.document.column(colid)
        dataset = current_row.get(colid)
        for i, (name, params) in enumerate(zip(names, params_list)):
            result = self.invoke(
                name, colid, current_row, params, user=user,
                session_tag=f"{session_tag}_{i}",
            )
            results.append(result)
            if i + 1 < len(names):
                # Stage the output next to the original dataset so the next
                # operation can link to it.
                out_name, out_data = result.primary_output()
                server = self.linker.server(dataset.host)
                staged_path = f"{dataset.directory.rstrip('/')}/chain_{i}_{out_name}"
                server.filesystem.write(staged_path, out_data)
                staged = DatalinkValue(
                    f"{dataset.scheme}://{dataset.host}{staged_path}"
                )
                current_row = dict(current_row)
                current_row[colid] = staged
                current_row[column.name] = staged
        return results

    def invoke_multi(
        self,
        name: str,
        colid: str,
        rows: Iterable[dict[str, Any]],
        params: dict[str, Any] | None = None,
        user=None,
        session_tag: str = "multi",
    ) -> list[OperationResult]:
        """Apply one operation to many datasets (future-work feature)."""
        return [
            self.invoke(
                name, colid, row, params, user=user,
                session_tag=f"{session_tag}_{i}",
            )
            for i, row in enumerate(rows)
        ]
