"""Sandboxed execution of post-processing codes.

The paper runs archived/uploaded codes through a dynamically created batch
file that (1) changes into a per-invocation temporary directory named
after the servlet session, (2) unpacks the code archive, and (3) invokes a
second interpreter under a security manager ("a special secure application
class ... declares appropriate security restrictions and then dynamically
loads and runs the user's uploaded code").

Here the uploaded/archived codes are Python sources standing in for the
Java classes.  :class:`Sandbox` provides the equivalent guarantees:

* a fresh working directory per invocation (session + serial number),
* file access confined to that directory — the injected ``open`` resolves
  relative names inside the working directory and refuses to escape it
  (the paper's "code must write output to relative filenames"),
* imports restricted to a harmless whitelist,
* dangerous builtins (``exec``/``eval``/``__import__``/attribute
  introspection helpers) removed,
* an execution *step budget* enforced via ``sys.settrace`` so runaway
  uploads cannot wedge the archive.

The code contract matches the paper's: the initial executable receives the
dataset's filename (injected as ``INPUT_FILENAME``) plus the user-supplied
parameters (``PARAMS``) and writes any output to relative filenames.
"""

from __future__ import annotations

import builtins
import os
import shutil
import sys
from typing import Any

from repro.errors import OperationExecutionError, SandboxViolation

__all__ = ["SandboxPolicy", "Sandbox", "SandboxResult"]

#: modules uploaded code may import — numeric/stdlib helpers only
SAFE_MODULES = frozenset({
    "math", "struct", "array", "json", "statistics", "itertools",
    "functools", "collections", "zlib", "base64", "numpy",
})

_SAFE_BUILTIN_NAMES = (
    "abs", "all", "any", "bin", "bool", "bytearray", "bytes", "chr",
    "dict", "divmod", "enumerate", "filter", "float", "format",
    "frozenset", "hash", "hex", "int", "isinstance", "issubclass",
    "iter", "len", "list", "map", "max", "min", "next", "oct", "ord",
    "pow", "print", "range", "repr", "reversed", "round", "set",
    "slice", "sorted", "str", "sum", "tuple", "zip", "ValueError",
    "TypeError", "KeyError", "IndexError", "ZeroDivisionError",
    "ArithmeticError", "Exception", "StopIteration", "RuntimeError",
)


class SandboxPolicy:
    """Tunable restrictions for one class of code.

    ``trusted`` relaxes the import whitelist and step budget — used for the
    archive's own *operations* (reviewed codes archived by site staff), in
    contrast to arbitrary user uploads.
    """

    def __init__(
        self,
        allowed_modules: frozenset[str] = SAFE_MODULES,
        max_steps: int = 20_000_000,
        max_output_bytes: int = 64 * 1024 * 1024,
        trusted: bool = False,
    ) -> None:
        self.allowed_modules = allowed_modules
        self.max_steps = max_steps
        self.max_output_bytes = max_output_bytes
        self.trusted = trusted

    @classmethod
    def for_uploads(cls) -> "SandboxPolicy":
        """The stricter policy for user-uploaded code."""
        return cls(max_steps=5_000_000, max_output_bytes=16 * 1024 * 1024)

    @classmethod
    def for_operations(cls) -> "SandboxPolicy":
        """The policy for archive-curated operations."""
        return cls(trusted=True)


class SandboxResult:
    """What came out of one sandboxed run."""

    def __init__(self, outputs: dict[str, bytes], stdout: str, workdir: str) -> None:
        #: relative output filename -> bytes
        self.outputs = outputs
        self.stdout = stdout
        self.workdir = workdir

    @property
    def output_bytes(self) -> int:
        return sum(len(data) for data in self.outputs.values())

    def output(self, name: str) -> bytes:
        try:
            return self.outputs[name]
        except KeyError:
            raise OperationExecutionError(
                f"operation produced no output file {name!r}; got "
                f"{sorted(self.outputs)}"
            ) from None


class Sandbox:
    """Per-invocation working directories + restricted execution."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._serial = 0

    def make_workdir(self, session_tag: str) -> str:
        """A unique temporary directory, named after the session like the
        paper's startup servlet does."""
        self._serial += 1
        safe_tag = "".join(c for c in session_tag if c.isalnum() or c in "-_") or "anon"
        path = os.path.join(self.root, f"{safe_tag}_{self._serial:06d}")
        os.makedirs(path, exist_ok=False)
        return path

    def cleanup(self, workdir: str) -> None:
        if os.path.abspath(workdir).startswith(self.root):
            shutil.rmtree(workdir, ignore_errors=True)

    # -- execution ---------------------------------------------------------------

    def run_source(
        self,
        source: str,
        workdir: str,
        input_filename: str,
        params: dict[str, Any] | None = None,
        policy: SandboxPolicy | None = None,
    ) -> SandboxResult:
        """Execute ``source`` inside ``workdir`` under ``policy``.

        The code sees ``INPUT_FILENAME`` (the dataset file, relative to the
        working directory), ``PARAMS`` (user parameters) and a confined
        ``open``.  Files it writes (other than the input) are collected as
        outputs.
        """
        policy = policy or SandboxPolicy.for_uploads()
        params = dict(params or {})
        workdir = os.path.abspath(workdir)
        if not workdir.startswith(self.root):
            raise SandboxViolation(f"workdir {workdir} escapes the sandbox root")

        stdout_chunks: list[str] = []
        written: dict[str, int] = {}

        def _resolve(name: str) -> str:
            if os.path.isabs(name):
                raise SandboxViolation(
                    f"absolute paths are forbidden in the sandbox: {name!r}"
                )
            full = os.path.abspath(os.path.join(workdir, name))
            if not full.startswith(workdir + os.sep) and full != workdir:
                raise SandboxViolation(f"path {name!r} escapes the working directory")
            return full

        def safe_open(name, mode="r", *args, **kwargs):
            if any(flag in mode for flag in ("w", "a", "x", "+")):
                full = _resolve(str(name))
                written[os.path.relpath(full, workdir)] = 0
                return open(full, mode, *args, **kwargs)
            return open(_resolve(str(name)), mode, *args, **kwargs)

        def safe_print(*args, **kwargs):
            end = kwargs.get("end", "\n")
            sep = kwargs.get("sep", " ")
            stdout_chunks.append(sep.join(str(a) for a in args) + end)

        def safe_import(name, globals=None, locals=None, fromlist=(), level=0):
            root_name = name.split(".")[0]
            if root_name not in policy.allowed_modules:
                raise SandboxViolation(f"import of {name!r} is not permitted")
            return builtins.__import__(name, globals, locals, fromlist, level)

        safe_builtins = {
            name: getattr(builtins, name) for name in _SAFE_BUILTIN_NAMES
        }
        safe_builtins["open"] = safe_open
        safe_builtins["print"] = safe_print
        safe_builtins["__import__"] = safe_import

        env = {
            "__builtins__": safe_builtins,
            "__name__": "__sandbox__",
            "INPUT_FILENAME": input_filename,
            "PARAMS": params,
        }

        steps = [0]

        def tracer(frame, event, arg):
            steps[0] += 1
            if steps[0] > policy.max_steps:
                raise SandboxViolation(
                    f"step budget of {policy.max_steps} exceeded"
                )
            return tracer

        try:
            code = compile(source, "<operation>", "exec")
        except SyntaxError as exc:
            raise OperationExecutionError(f"operation code does not compile: {exc}")

        previous_cwd = os.getcwd()
        os.chdir(workdir)  # the batch file's `cd` step
        if not policy.trusted:
            sys.settrace(tracer)
        try:
            exec(code, env)
        except SandboxViolation:
            raise
        except Exception as exc:
            raise OperationExecutionError(
                f"operation raised {type(exc).__name__}: {exc}"
            ) from exc
        finally:
            if not policy.trusted:
                sys.settrace(None)
            os.chdir(previous_cwd)

        outputs: dict[str, bytes] = {}
        total = 0
        for dirpath, _dirnames, filenames in os.walk(workdir):
            for filename in filenames:
                full = os.path.join(dirpath, filename)
                rel = os.path.relpath(full, workdir)
                if rel == input_filename or rel.endswith(".py"):
                    continue
                with open(full, "rb") as fh:
                    data = fh.read()
                total += len(data)
                if total > policy.max_output_bytes:
                    raise SandboxViolation(
                        f"output exceeds {policy.max_output_bytes} bytes"
                    )
                outputs[rel] = data
        return SandboxResult(outputs, "".join(stdout_chunks), workdir)
