"""Operation execution statistics (paper "Future": "Store operation
statistics (execution time, output details) for benefit of future users").

Every invocation records its elapsed time and byte counts; the aggregate
view per operation is what the interface would show next to each
operation link ("typically takes 0.2 s, returns ~64 KB from a 32 MB
dataset").
"""

from __future__ import annotations

__all__ = ["OperationStats", "OperationSummary"]


class OperationSummary:
    """Aggregate over all recorded invocations of one operation."""

    __slots__ = (
        "name", "invocations", "cache_hits", "total_elapsed",
        "min_elapsed", "max_elapsed", "total_dataset_bytes",
        "total_output_bytes",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.invocations = 0
        self.cache_hits = 0
        self.total_elapsed = 0.0
        self.min_elapsed = float("inf")
        self.max_elapsed = 0.0
        self.total_dataset_bytes = 0
        self.total_output_bytes = 0

    @property
    def mean_elapsed(self) -> float:
        if self.invocations == 0:
            return 0.0
        return self.total_elapsed / self.invocations

    @property
    def mean_output_bytes(self) -> float:
        if self.invocations == 0:
            return 0.0
        return self.total_output_bytes / self.invocations

    @property
    def mean_reduction_factor(self) -> float:
        if self.total_output_bytes == 0:
            return float("inf")
        return self.total_dataset_bytes / self.total_output_bytes

    def describe(self) -> str:
        """One line for the interface ("for benefit of future users")."""
        return (
            f"{self.name}: {self.invocations} run(s), "
            f"mean {self.mean_elapsed * 1000:.1f} ms, "
            f"mean output {self.mean_output_bytes / 1024:.1f} KB, "
            f"data reduction {self.mean_reduction_factor:.0f}x"
        )


class OperationStats:
    """Per-operation statistics store."""

    def __init__(self) -> None:
        self._summaries: dict[str, OperationSummary] = {}

    def _summary(self, name: str) -> OperationSummary:
        summary = self._summaries.get(name)
        if summary is None:
            summary = OperationSummary(name)
            self._summaries[name] = summary
        return summary

    def record(self, name: str, elapsed: float, dataset_bytes: int,
               output_bytes: int) -> None:
        summary = self._summary(name)
        summary.invocations += 1
        summary.total_elapsed += elapsed
        summary.min_elapsed = min(summary.min_elapsed, elapsed)
        summary.max_elapsed = max(summary.max_elapsed, elapsed)
        summary.total_dataset_bytes += dataset_bytes
        summary.total_output_bytes += output_bytes

    def record_cache_hit(self, name: str) -> None:
        self._summary(name).cache_hits += 1

    def summary(self, name: str) -> OperationSummary | None:
        return self._summaries.get(name)

    def summaries(self) -> list[OperationSummary]:
        return sorted(self._summaries.values(), key=lambda s: s.name)

    def report(self) -> str:
        return "\n".join(s.describe() for s in self.summaries())

    # -- persistence ("store operation statistics ... for benefit of
    # future users" — stored in the archive database itself) --------------

    TABLE_DDL = (
        "CREATE TABLE IF NOT EXISTS OPERATION_STATS ("
        " NAME VARCHAR(80) PRIMARY KEY,"
        " INVOCATIONS INTEGER,"
        " CACHE_HITS INTEGER,"
        " TOTAL_ELAPSED DOUBLE,"
        " MIN_ELAPSED DOUBLE,"
        " MAX_ELAPSED DOUBLE,"
        " TOTAL_DATASET_BYTES INTEGER,"
        " TOTAL_OUTPUT_BYTES INTEGER)"
    )

    def persist(self, db) -> int:
        """Write every summary into the OPERATION_STATS table (replacing
        prior contents).  Returns the number of rows written."""
        db.execute(self.TABLE_DDL)
        db.execute("DELETE FROM OPERATION_STATS")
        for summary in self.summaries():
            db.execute(
                "INSERT INTO OPERATION_STATS VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    summary.name,
                    summary.invocations,
                    summary.cache_hits,
                    summary.total_elapsed,
                    0.0 if summary.min_elapsed == float("inf")
                    else summary.min_elapsed,
                    summary.max_elapsed,
                    summary.total_dataset_bytes,
                    summary.total_output_bytes,
                ),
            )
        return len(self._summaries)

    @classmethod
    def load(cls, db) -> "OperationStats":
        """Rebuild a statistics store from the database (e.g. after an
        archive restart), so history accumulates across sessions."""
        stats = cls()
        if not db.catalog.has_table("OPERATION_STATS"):
            return stats
        result = db.execute(
            "SELECT NAME, INVOCATIONS, CACHE_HITS, TOTAL_ELAPSED, "
            "MIN_ELAPSED, MAX_ELAPSED, TOTAL_DATASET_BYTES, "
            "TOTAL_OUTPUT_BYTES FROM OPERATION_STATS"
        )
        for (name, invocations, cache_hits, total, lo, hi,
             dataset_bytes, output_bytes) in result.rows:
            summary = stats._summary(name)
            summary.invocations = invocations
            summary.cache_hits = cache_hits
            summary.total_elapsed = total
            summary.min_elapsed = lo if invocations else float("inf")
            summary.max_elapsed = hi
            summary.total_dataset_bytes = dataset_bytes
            summary.total_output_bytes = output_bytes
        return stats
