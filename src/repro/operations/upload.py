"""User code upload for secure server-side execution.

Paper: "Authorised users can upload Java code for secure server-side
execution against datasets stored as DATALINKs on file server hosts.
Code must accept filename as first command line parameter.  Code must
write output to relative filenames."

:class:`CodeUploader` enforces the policy chain:

* the XUIS must declare ``<upload>`` on the target DATALINK column,
* the upload's ``<if>`` conditions must hold for the target row,
* guest users are refused unless ``guest.access="true"``,
* the archive runs under the *strict* sandbox policy (the "special secure
  application class"), in a fresh session-named temporary directory.
"""

from __future__ import annotations

from typing import Any

from repro.errors import AuthorizationError, OperationError, OperationNotApplicable
from repro.operations.batch import BatchScript, unpack_archive
from repro.operations.executor import OperationEngine, OperationResult
from repro.operations.sandbox import SandboxPolicy
from repro.sqldb.types import DatalinkValue
from repro.xuis.model import OperationSpec

__all__ = ["CodeUploader"]


class CodeUploader:
    """Runs user-uploaded code archives against archived datasets."""

    def __init__(self, engine: OperationEngine) -> None:
        self.engine = engine

    def run_upload(
        self,
        colid: str,
        row: dict[str, Any],
        archive: bytes,
        class_name: str,
        user=None,
        params: dict[str, Any] | None = None,
        session_tag: str = "upload",
    ) -> OperationResult:
        """Execute an uploaded archive's ``class_name`` against the row's
        dataset.  ``class_name`` is the user's requested entry point (the
        paper's reflection target), e.g. ``MyAnalysis`` ->
        ``MyAnalysis.py`` inside the archive."""
        column = self.engine.document.column(colid)
        upload = column.upload
        if upload is None:
            raise OperationError(f"column {colid} does not accept code uploads")
        if not upload.applies_to(row):
            raise OperationNotApplicable(
                "code upload is not permitted for this row"
            )
        if user is not None and user.is_guest and not upload.guest_access:
            raise AuthorizationError("guest users cannot upload post-processing codes")

        dataset = row.get(colid)
        if not isinstance(dataset, DatalinkValue):
            raise OperationError(f"row has no DATALINK dataset in column {colid}")
        server = self.engine.linker.server(dataset.host)
        data = server.filesystem.read(dataset.server_path)

        workdir = self.engine.sandbox.make_workdir(session_tag)
        try:
            with open(f"{workdir}/{dataset.filename}", "wb") as fh:
                fh.write(data)
            members = unpack_archive(archive, workdir)
            entry = self._entry_point(class_name, members)
            with open(f"{workdir}/{entry}", encoding="utf-8") as fh:
                source = fh.read()
            script = BatchScript(workdir, "upload.jar", entry, dataset.filename)
            import time

            started = time.perf_counter()
            sandbox_result = self.engine.sandbox.run_source(
                source,
                workdir,
                dataset.filename,
                params or {},
                policy=SandboxPolicy.for_uploads(),
            )
            pseudo_op = OperationSpec(
                f"upload:{class_name}", type=upload.type, format=upload.format
            )
            result = OperationResult(
                pseudo_op,
                sandbox_result.outputs,
                sandbox_result.stdout,
                batch_script=script,
                elapsed=time.perf_counter() - started,
                dataset_bytes=len(data),
            )
            self.engine.stats.record(
                pseudo_op.name, result.elapsed,
                result.dataset_bytes, result.output_bytes,
            )
            return result
        finally:
            if not self.engine.keep_workdirs:
                self.engine.sandbox.cleanup(workdir)

    @staticmethod
    def _entry_point(class_name: str, members: list[str]) -> str:
        candidates = [f"{class_name}.py", class_name, "main.py"]
        for candidate in candidates:
            if candidate in members:
                return candidate
        raise OperationError(
            f"uploaded archive has no entry point for class {class_name!r} "
            f"(members: {sorted(members)})"
        )
