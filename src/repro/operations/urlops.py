"""URL operations: external post-processing services.

Paper: "The XUIS can also specify operations as URLs.  These correspond to
Servlet or CGI based post-processing services running on the same host as
a particular DATALINK file server" — the example being NCSA's Scientific
Data Browser for HDF datasets.

:func:`scientific_data_browser` is a faithful stand-in for that service:
given a dataset, it returns an HTML summary page describing the file's
structure, which is what SDB fundamentally did.  Registered with the
engine via :meth:`OperationEngine.register_url_service`.
"""

from __future__ import annotations

from typing import Any

__all__ = ["scientific_data_browser", "identity_service"]


def scientific_data_browser(data: bytes, params: dict[str, Any]) -> dict[str, bytes]:
    """A summary-page service in the spirit of the NCSA SDB.

    Understands the turbulence dataset container (``TURB`` magic) well
    enough to describe its grid and fields; for anything else it reports
    size and a hex preview.
    """
    lines = ["<html><body><h1>Scientific Data Browser</h1>"]
    if data[:4] == b"TURB":
        import struct

        nx, ny, nz = struct.unpack("<iii", data[4:16])
        lines.append("<p>Format: TURB turbulence snapshot</p>")
        lines.append(f"<p>Grid: {nx} x {ny} x {nz}</p>")
        lines.append("<p>Fields: u, v, w (velocity components), p (pressure)</p>")
        expected = 16 + 4 * nx * ny * nz * 4
        status = "consistent" if expected == len(data) else "TRUNCATED"
        lines.append(f"<p>Payload: {len(data)} bytes ({status})</p>")
    else:
        preview = data[:16].hex()
        lines.append(f"<p>Unrecognised format; {len(data)} bytes</p>")
        lines.append(f"<p>First bytes: {preview}</p>")
    lines.append("</body></html>")
    return {"sdb.html": "".join(lines).encode("utf-8")}


def identity_service(data: bytes, params: dict[str, Any]) -> dict[str, bytes]:
    """Trivial service that echoes the dataset back (testing aid)."""
    return {"echo.bin": data}


def interactive_slice_browser(data: bytes, params: dict[str, Any]) -> dict[str, bytes]:
    """Applet-style interactive operation (paper future work: "Interactive
    applet based operations").

    Renders every x-slice of one field server-side and embeds them in a
    single self-contained HTML page with JavaScript slider controls — the
    modern equivalent of shipping a Java applet next to the data.  The
    user interactively browses the whole dataset while only O(n^3) bytes
    of *images* (not the 4-field float data) cross the network once.
    """
    import base64
    import struct

    if data[:4] != b"TURB":
        raise ValueError("interactive browser requires a TURB snapshot")
    nx, ny, nz = struct.unpack("<iii", data[4:16])
    count = nx * ny * nz
    component = str(params.get("type", "u"))
    offsets = {"u": 0, "v": 1, "w": 2, "p": 3}
    if component not in offsets:
        raise ValueError("type must be one of u, v, w, p")

    import array

    values = array.array("f")
    start = 16 + offsets[component] * 4 * count
    values.frombytes(data[start:start + 4 * count])
    lo = min(values)
    hi = max(values)
    span = (hi - lo) or 1.0

    header = f"P5\n{nz} {ny}\n255\n".encode("ascii")
    slices = []
    for i in range(nx):
        pixels = bytearray()
        for j in range(ny):
            base = (i * ny + j) * nz
            pixels.extend(
                int(255 * (values[base + k] - lo) / span) for k in range(nz)
            )
        slices.append(
            base64.b64encode(header + bytes(pixels)).decode("ascii")
        )

    slice_array = ",".join(f'"{s}"' for s in slices)
    html = f"""<html><head><title>Interactive slice browser</title></head>
<body>
<h1>Interactive slice browser — component {component}</h1>
<p>Grid {nx} x {ny} x {nz}; drag the slider to move through x.</p>
<input type="range" id="slice" min="0" max="{nx - 1}" value="0"
       oninput="show(this.value)"/>
<span id="label">x0</span>
<div><img id="view" width="{nz * 8}" height="{ny * 8}"
     style="image-rendering: pixelated"/></div>
<script>
var slices = [{slice_array}];
function show(i) {{
  document.getElementById("label").textContent = "x" + i;
  document.getElementById("view").src = "data:image/x-portable-graymap;base64," + slices[i];
}}
show(0);
</script>
</body></html>"""
    return {"browser.html": html.encode("utf-8")}
