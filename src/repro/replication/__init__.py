"""repro.replication — replicated DATALINK file servers.

The paper's architecture stores each simulation's files on the single
file server nearest to where they were generated; one dead host takes its
share of the archive offline.  This package removes that single point of
failure while leaving the SQL/MED surface untouched: every DATALINK URL
still names one *logical* host, but behind it stand N physical replicas
with health-checked read failover, asynchronous write replication, and
anti-entropy repair.

Components:

* :class:`PlacementPolicy` — deterministic rendezvous-hash placement of
  replicas on physical servers;
* :class:`ReplicaSet` — the FileServer-shaped facade the DataLinker
  talks to (primary writes + queued propagation, failover reads,
  logical-host token scoping);
* :class:`ReplicationQueue` — ordered op log with per-follower cursors,
  retry with exponential backoff, bounded-lag metrics;
* :class:`HealthMonitor` — probe-based up/suspect/down failure detector,
  wireable to :mod:`repro.netsim` partitions and slow links;
* :func:`repair_replica_set` / :func:`check_replica_set` — anti-entropy
  convergence from content-checksum manifests;
* :class:`ReplicationManager` — the per-deployment coordinator (set
  construction, background pump, repair, status).
"""

from repro.replication.health import HealthMonitor
from repro.replication.manager import ReplicationManager
from repro.replication.placement import PlacementPolicy
from repro.replication.queue import ReplicationOp, ReplicationQueue
from repro.replication.repair import (
    RepairReport,
    check_replica_set,
    repair_replica_set,
)
from repro.replication.replicaset import Replica, ReplicaSet

__all__ = [
    "HealthMonitor",
    "PlacementPolicy",
    "RepairReport",
    "Replica",
    "ReplicaSet",
    "ReplicationManager",
    "ReplicationOp",
    "ReplicationQueue",
    "check_replica_set",
    "repair_replica_set",
]
