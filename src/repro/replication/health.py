"""Probe-based failure detection for replica sets.

The :class:`HealthMonitor` actively probes every replica (a cheap
connectivity + filesystem round-trip) and drives the per-replica status
machine::

    up --(1 failed probe)--> suspect --(N failed probes)--> down
    any --(1 good probe)--> up

Reads never *wait* on the detector — :meth:`ReplicaSet._read_order` merely
prefers replicas the detector believes healthy — so a wrong verdict costs
latency, not availability.  A probe that answers but slower than
``latency_suspect_s`` marks the replica suspect (slow-link demotion for
:mod:`repro.netsim` topologies) without counting toward ``down``.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

from repro.obs import get_observability
from repro.replication.replicaset import Replica, ReplicaSet

__all__ = ["HealthMonitor"]


class HealthMonitor:
    """Active failure detector over one or more replica sets."""

    def __init__(
        self,
        suspect_after: int = 1,
        down_after: int = 3,
        latency_suspect_s: float | None = None,
        latency_probe: Callable[[Replica], float] | None = None,
    ) -> None:
        self.suspect_after = suspect_after
        self.down_after = down_after
        #: probes slower than this mark the replica suspect (None disables)
        self.latency_suspect_s = latency_suspect_s
        #: override for the probe round-trip measurement; by default the
        #: wall-clock cost of touching the replica's filesystem is used,
        #: netsim tests supply the topology's simulated link latency instead
        self.latency_probe = latency_probe
        self.probes = 0
        self.transitions = 0

    def probe(self, replica_set: ReplicaSet, replica: Replica) -> str:
        """Probe one replica and return its (possibly new) status."""
        self.probes = self.probes + 1
        before = replica.status
        if not replica.is_connected():
            replica.note_failure(self.suspect_after, self.down_after)
        else:
            latency = self._measure(replica)
            if latency is None:
                # the probe itself failed mid-flight
                replica.note_failure(self.suspect_after, self.down_after)
            elif (
                self.latency_suspect_s is not None
                and latency > self.latency_suspect_s
            ):
                # answering, but too slowly to be preferred for reads
                replica.consecutive_failures = 0
                replica.status = "suspect"
            else:
                replica.note_success()
        if replica.status != before:
            self._record_transition(replica_set, replica, before)
        return replica.status

    def _measure(self, replica: Replica) -> float | None:
        if self.latency_probe is not None:
            return self.latency_probe(replica)
        started = time.perf_counter()
        try:
            len(replica.server.filesystem)
        except Exception:
            return None
        return time.perf_counter() - started

    def probe_set(self, replica_set: ReplicaSet) -> dict[str, str]:
        return {
            replica.host: self.probe(replica_set, replica)
            for replica in replica_set.replicas
        }

    def probe_all(self, replica_sets: Iterable[ReplicaSet]) -> dict[str, dict[str, str]]:
        return {rs.host: self.probe_set(rs) for rs in replica_sets}

    def _record_transition(self, replica_set: ReplicaSet, replica: Replica,
                           before: str) -> None:
        self.transitions += 1
        obs = get_observability()
        if obs.enabled:
            obs.metrics.counter(
                "replication.health.transitions",
                set=replica_set.host, to=replica.status,
            ).inc()
            obs.events.emit(
                "replication.health",
                set=replica_set.host, replica=replica.host,
                before=before, after=replica.status,
            )
