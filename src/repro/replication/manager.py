"""The replication manager: replica sets, placement, health, repair.

One :class:`ReplicationManager` oversees every replicated logical host of
a deployment.  It

* creates :class:`~repro.replication.replicaset.ReplicaSet` facades
  (optionally ranking candidates with the deterministic
  :class:`~repro.replication.placement.PlacementPolicy`) and registers
  them with the :class:`~repro.datalink.linker.DataLinker` under the
  logical host name — the rest of the stack keeps talking to "one file
  server per host";
* pumps the per-set replication queues, either on demand (:meth:`pump`,
  :meth:`drain`) or from a background thread (:meth:`start`);
* runs the :class:`~repro.replication.health.HealthMonitor` over every
  replica each cycle;
* exposes :meth:`repair` (anti-entropy) and :meth:`status` for the CLI and
  the web tier's ``/metrics``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable, Sequence

from repro.errors import ReplicationError
from repro.obs import get_observability
from repro.replication.health import HealthMonitor
from repro.replication.placement import PlacementPolicy
from repro.replication.repair import RepairReport, repair_replica_set
from repro.replication.replicaset import ReplicaSet

__all__ = ["ReplicationManager"]


class ReplicationManager:
    """Coordinates every replica set attached to one DataLinker."""

    def __init__(
        self,
        linker,
        replication_factor: int = 2,
        time_source: Callable[[], float] = time.time,
        backoff_base: float = 0.05,
        backoff_cap: float = 5.0,
        suspect_after: int = 1,
        down_after: int = 3,
        latency_suspect_s: float | None = None,
    ) -> None:
        self.linker = linker
        self.placement = PlacementPolicy(replication_factor)
        self.health = HealthMonitor(
            suspect_after=suspect_after,
            down_after=down_after,
            latency_suspect_s=latency_suspect_s,
        )
        self._now = time_source
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.sets: dict[str, ReplicaSet] = {}
        self._pump_thread: threading.Thread | None = None
        self._stop = threading.Event()
        linker.replication = self

    # -- set construction --------------------------------------------------------

    def create_replica_set(
        self,
        logical_host: str,
        servers: Sequence,
        use_placement: bool = True,
    ) -> ReplicaSet:
        """Build a replica set for ``logical_host`` from candidate servers
        and register it with the linker under the logical name.

        With ``use_placement`` the deterministic policy picks
        ``replication_factor`` members (primary first); otherwise the given
        order is used verbatim.
        """
        if logical_host in self.sets:
            raise ReplicationError(
                f"replica set {logical_host!r} already exists"
            )
        members = (
            self.placement.choose(logical_host, servers)
            if use_placement else list(servers)
        )
        replica_set = ReplicaSet(
            logical_host, members,
            time_source=self._now,
            backoff_base=self.backoff_base,
            backoff_cap=self.backoff_cap,
        )
        self.linker.register_server(replica_set)
        self.sets[logical_host] = replica_set
        obs = get_observability()
        if obs.enabled:
            obs.events.emit(
                "replication.set.created",
                set=logical_host,
                replicas=[r.host for r in replica_set.replicas],
            )
        return replica_set

    def replica_set(self, logical_host: str) -> ReplicaSet:
        try:
            return self.sets[logical_host]
        except KeyError:
            raise ReplicationError(
                f"no replica set for logical host {logical_host!r}"
            ) from None

    # -- fault wiring ------------------------------------------------------------

    def attach_network(self, network, origin: str) -> None:
        """Wire every replica's reachability to a :mod:`repro.netsim`
        topology: a replica behind a partition (or on a downed host) as
        seen from ``origin`` becomes unreachable, and the health monitor
        probes use the simulated link latency instead of wall-clock."""
        for replica_set in self.sets.values():
            for replica in replica_set.replicas:
                host = replica.host

                def reachable(h: str = host) -> bool:
                    return network.is_reachable(origin, h)

                replica.reachable = reachable
        self.health.latency_probe = (
            lambda replica: network.latency_between(origin, replica.host)
        )

    # -- steady-state operation ---------------------------------------------------

    def pump(self, force: bool = False) -> int:
        """One replication cycle: probe health, push queued ops."""
        self.health.probe_all(self.sets.values())
        return sum(rs.pump(force=force) for rs in self.sets.values())

    def drain(self) -> int:
        """Push until every follower is caught up (or stops accepting)."""
        return sum(rs.drain() for rs in self.sets.values())

    def start(self, interval: float = 0.05) -> None:
        """Run :meth:`pump` on a daemon thread every ``interval`` seconds."""
        if self._pump_thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval):
                try:
                    self.pump()
                except Exception:  # noqa: BLE001 - keep the pump alive
                    obs = get_observability()
                    if obs.enabled:
                        obs.metrics.counter("replication.pump.errors").inc()

        self._pump_thread = threading.Thread(
            target=loop, name="replication-pump", daemon=True
        )
        self._pump_thread.start()

    def stop(self) -> None:
        if self._pump_thread is None:
            return
        self._stop.set()
        self._pump_thread.join(timeout=5.0)
        self._pump_thread = None

    # -- anti-entropy -------------------------------------------------------------

    def repair(self, logical_host: str | None = None,
               prune: bool = False) -> list[RepairReport]:
        """Run an anti-entropy pass over one set (or all of them)."""
        targets: Iterable[ReplicaSet]
        if logical_host is not None:
            targets = [self.replica_set(logical_host)]
        else:
            targets = self.sets.values()
        return [repair_replica_set(rs, prune=prune) for rs in targets]

    # -- reporting ----------------------------------------------------------------

    def status(self) -> dict:
        sets = {host: rs.status() for host, rs in sorted(self.sets.items())}
        return {
            "replication_factor": self.placement.replication_factor,
            "sets": sets,
            "total_failovers": sum(s["failovers"] for s in sets.values()),
            "max_lag": max(
                (s["max_lag"] for s in sets.values()), default=0
            ),
            "health_probes": self.health.probes,
            "health_transitions": self.health.transitions,
        }

    def describe(self) -> str:
        """Human-readable status for ``repro replicas status``."""
        status = self.status()
        lines = [
            f"replication factor {status['replication_factor']}, "
            f"{len(status['sets'])} replica set(s), "
            f"max lag {status['max_lag']}, "
            f"{status['total_failovers']} failover(s)",
        ]
        for host, s in status["sets"].items():
            lines.append(
                f"{host}: depth={s['queue_depth']} "
                f"applied={s['ops_applied']}/{s['ops_enqueued']} "
                f"retries={s['retries']}"
            )
            for r in s["replicas"]:
                lines.append(
                    f"  {r['role']:<8} {r['host']:<28} {r['status']:<8} "
                    f"lag={r['lag']} files={r['files']}"
                )
        return "\n".join(lines)
