"""Deterministic replica placement.

Rendezvous (highest-random-weight) hashing: every (logical host, physical
server) pair gets a stable score, and the top ``replication_factor``
servers hold the set's replicas, highest score first (the primary).  The
choice depends only on the names involved, so every archive node — and
every rebuild of the same deployment — computes the same placement without
coordination, and removing one candidate only moves the replicas that
lived on it.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.errors import ReplicationError

__all__ = ["PlacementPolicy"]


class PlacementPolicy:
    """Chooses which physical servers back a logical host."""

    def __init__(self, replication_factor: int = 2) -> None:
        if replication_factor < 1:
            raise ReplicationError("replication factor must be >= 1")
        self.replication_factor = replication_factor

    @staticmethod
    def score(logical_host: str, physical_host: str) -> str:
        digest = hashlib.sha256(
            f"{logical_host}|{physical_host}".encode("utf-8")
        ).hexdigest()
        return digest

    def choose(self, logical_host: str, candidates: Sequence) -> list:
        """Pick the replica servers for ``logical_host`` from ``candidates``
        (FileServer instances), primary first.  Deterministic."""
        if not candidates:
            raise ReplicationError(
                f"no candidate servers for replica set {logical_host!r}"
            )
        hosts = [server.host for server in candidates]
        if len(set(hosts)) != len(hosts):
            raise ReplicationError(
                f"candidate servers for {logical_host!r} have duplicate hosts"
            )
        ranked = sorted(
            candidates,
            key=lambda server: self.score(logical_host, server.host),
            reverse=True,
        )
        return ranked[: self.replication_factor]
