"""Asynchronous primary -> follower replication queue.

Every mutation a :class:`~repro.replication.replicaset.ReplicaSet` applies
to its primary (``put``, ``dl_link``, ``dl_unlink``) is appended here with
a monotonically increasing sequence number.  :meth:`ReplicationQueue.pump`
pushes outstanding operations to each follower **in order**, tracking a
per-follower cursor; a follower that cannot be reached backs off
exponentially (base doubling per consecutive failure, capped) instead of
hammering a dead host.

Lag is observable: ``seq - cursor`` per follower, surfaced as the
``replication.lag`` gauge and through ``/metrics``.  The queue keeps an
operation until every follower has applied it, then compacts.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable

from repro.errors import FileServerError, ReplicaUnavailableError
from repro.obs import get_observability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.replication.replicaset import Replica, ReplicaSet

__all__ = ["ReplicationQueue", "ReplicationOp"]


class ReplicationOp:
    """One primary mutation awaiting propagation."""

    __slots__ = ("seq", "kind", "path", "data", "flags")

    def __init__(self, seq: int, kind: str, path: str,
                 data: bytes | None = None,
                 flags: dict | None = None) -> None:
        self.seq = seq
        self.kind = kind  # put | link | unlink
        self.path = path
        self.data = data
        self.flags = flags or {}

    def __repr__(self) -> str:
        return f"ReplicationOp(#{self.seq} {self.kind} {self.path})"


class ReplicationQueue:
    """Ordered op log for one replica set, with retry + backoff."""

    def __init__(
        self,
        replica_set: "ReplicaSet",
        time_source: Callable[[], float],
        backoff_base: float = 0.05,
        backoff_cap: float = 5.0,
    ) -> None:
        self._set = replica_set
        self._now = time_source
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.seq = 0
        self._ops: list[ReplicationOp] = []
        self._lock = threading.Lock()
        #: lifetime statistics
        self.ops_enqueued = 0
        self.ops_applied = 0
        self.retries = 0

    # -- producer (the replica set's primary write path) -----------------------

    def enqueue(self, kind: str, path: str, data: bytes | None = None,
                **flags) -> ReplicationOp:
        with self._lock:
            self.seq += 1
            op = ReplicationOp(self.seq, kind, path, data, flags)
            self._ops.append(op)
            self.ops_enqueued += 1
        obs = get_observability()
        if obs.enabled:
            obs.metrics.counter(
                "replication.queue.enqueued", set=self._set.host
            ).inc()
            obs.metrics.gauge(
                "replication.queue.depth", set=self._set.host
            ).set(self.depth())
        return op

    # -- observability ---------------------------------------------------------

    def depth(self) -> int:
        """Operations not yet applied by every follower."""
        followers = self._set.followers
        if not followers:
            return 0
        floor = min(r.cursor for r in followers)
        return max(0, self.seq - floor)

    def lag(self, replica: "Replica") -> int:
        return max(0, self.seq - replica.cursor)

    def max_lag(self) -> int:
        followers = self._set.followers
        return max((self.lag(r) for r in followers), default=0)

    # -- consumer -------------------------------------------------------------

    def pump(self, force: bool = False) -> int:
        """Push outstanding ops to every follower; returns ops applied.

        ``force`` ignores backoff timers (used by :meth:`drain` and tests
        driving simulated time).  Order per follower is strict: a failed op
        stops that follower's round so no later op can overtake it.
        """
        now = self._now()
        obs = get_observability()
        applied = 0
        for replica in self._set.followers:
            if not force and now < replica.next_attempt_at:
                continue
            with self._lock:
                pending = [op for op in self._ops if op.seq > replica.cursor]
            for op in pending:
                try:
                    self._set.apply_to_follower(replica, op)
                except (FileServerError, ReplicaUnavailableError) as exc:
                    replica.push_attempts += 1
                    delay = min(
                        self.backoff_cap,
                        self.backoff_base * (2 ** (replica.push_attempts - 1)),
                    )
                    replica.next_attempt_at = now + delay
                    self.retries += 1
                    if obs.enabled:
                        obs.metrics.counter(
                            "replication.push.retries", set=self._set.host
                        ).inc()
                        obs.events.emit(
                            "replication.push.failed",
                            set=self._set.host, replica=replica.host,
                            seq=op.seq, retry_in=delay, error=str(exc),
                        )
                    break
                else:
                    replica.cursor = op.seq
                    replica.push_attempts = 0
                    replica.next_attempt_at = 0.0
                    applied += 1
                    self.ops_applied += 1
        self.compact()
        if obs.enabled:
            obs.metrics.gauge(
                "replication.queue.depth", set=self._set.host
            ).set(self.depth())
            obs.metrics.gauge(
                "replication.lag", set=self._set.host
            ).set(self.max_lag())
            if applied:
                obs.metrics.counter(
                    "replication.push.applied", set=self._set.host
                ).inc(applied)
        return applied

    def compact(self) -> None:
        """Drop ops every follower has applied (or fast-forwarded past)."""
        followers = self._set.followers
        floor = min((r.cursor for r in followers), default=self.seq)
        with self._lock:
            self._ops = [op for op in self._ops if op.seq > floor]

    def fast_forward(self, replica: "Replica") -> None:
        """Mark ``replica`` caught up without pushing (anti-entropy repair
        just resynchronised it from the primary, superseding the backlog)."""
        replica.cursor = self.seq
        replica.push_attempts = 0
        replica.next_attempt_at = 0.0
        self.compact()
