"""Anti-entropy repair: converge followers on the primary's state.

Asynchronous replication plus failures (partitions, crashes between the
WAL commit point and the queue push, operators poking a replica's disk)
lets follower replicas diverge silently.  The repair pass makes the
divergence visible and fixes it:

1. pull the content-checksum **manifest** of the primary and of each
   follower (path → sha256 + DATALINK flags, from
   :meth:`repro.fileserver.filesystem.ServerFileSystem.manifest`);
2. diff them, producing :class:`~repro.datalink.reconcile.Finding`-shaped
   findings — ``missing`` (file absent on the follower),
   ``checksum_mismatch`` (bytes differ), ``stale_flags`` (link-control
   flags differ), ``extra`` (follower has a file the primary doesn't);
3. re-sync from the primary over the replication control plane
   (``dl_put`` / ``dl_set_flags`` / ``dl_remove``) and fast-forward the
   follower's queue cursor — the backlog is superseded by the full sync.

``extra`` files are reported but only deleted with ``prune=True``:
dropping data a follower holds and the primary lost is a curator's
decision, exactly like dangling references in
:mod:`repro.datalink.reconcile`.
"""

from __future__ import annotations

from repro.datalink.reconcile import Finding
from repro.obs import get_observability
from repro.replication.replicaset import Replica, ReplicaSet

__all__ = ["RepairReport", "check_replica_set", "repair_replica_set"]


class RepairReport:
    """Outcome of one anti-entropy pass over one replica set."""

    def __init__(self, host: str) -> None:
        self.host = host
        self.findings: list[Finding] = []
        self.files_checked = 0
        self.replicas_checked = 0
        self.repaired = 0

    def by_kind(self, kind: str) -> list[Finding]:
        return [f for f in self.findings if f.kind == kind]

    @property
    def consistent(self) -> bool:
        return not self.findings

    def describe(self) -> str:
        lines = [
            f"replica set {self.host}: checked {self.replicas_checked} "
            f"follower(s), {self.files_checked} file(s)",
        ]
        if self.consistent:
            lines.append("replicas are checksum-clean")
        else:
            lines.append(f"repaired {self.repaired} finding(s)")
        lines.extend(f.describe() for f in self.findings)
        return "\n".join(lines)


_FLAG_KEYS = ("linked", "read_db", "write_blocked", "recovery")


def _diff_replica(host: str, primary_manifest: dict, replica: Replica) -> list[Finding]:
    findings: list[Finding] = []
    replica_manifest = replica.server.manifest()
    for path, truth in primary_manifest.items():
        mine = replica_manifest.get(path)
        if mine is None:
            findings.append(Finding(
                "missing", replica.host, path,
                detail=f"present on primary of {host}",
            ))
            continue
        if mine["sha256"] != truth["sha256"]:
            findings.append(Finding(
                "checksum_mismatch", replica.host, path,
                detail=f"{mine['sha256'][:12]} != {truth['sha256'][:12]}",
            ))
        if any(mine[k] != truth[k] for k in _FLAG_KEYS):
            stale = ",".join(k for k in _FLAG_KEYS if mine[k] != truth[k])
            findings.append(Finding(
                "stale_flags", replica.host, path, detail=stale,
            ))
    for path in replica_manifest:
        if path not in primary_manifest:
            findings.append(Finding(
                "extra", replica.host, path,
                detail=f"absent on primary of {host}",
            ))
    return findings


def check_replica_set(replica_set: ReplicaSet) -> RepairReport:
    """Detect divergence without fixing anything (dry run)."""
    report = RepairReport(replica_set.host)
    primary_manifest = replica_set.primary.server.manifest()
    for replica in replica_set.followers:
        if not replica.is_connected():
            report.findings.append(Finding(
                "unreachable", replica.host, "",
                detail="skipped: replica not reachable",
            ))
            continue
        report.replicas_checked += 1
        report.files_checked += len(primary_manifest)
        report.findings.extend(
            _diff_replica(replica_set.host, primary_manifest, replica)
        )
    return report


def repair_replica_set(replica_set: ReplicaSet, prune: bool = False) -> RepairReport:
    """Detect *and fix* divergence, re-syncing followers from the primary."""
    report = check_replica_set(replica_set)
    obs = get_observability()
    primary_fs = replica_set.primary.server.filesystem
    touched: set[str] = set()
    for finding in report.findings:
        if finding.kind == "unreachable":
            continue
        replica = replica_set.replica(finding.host)
        fs = replica.server.filesystem
        if finding.kind in ("missing", "checksum_mismatch"):
            truth = primary_fs.entry(finding.path)
            fs.dl_put(finding.path, truth.data)
            fs.dl_set_flags(
                finding.path,
                linked=truth.linked, read_db=truth.read_db,
                write_blocked=truth.write_blocked, recovery=truth.recovery,
            )
        elif finding.kind == "stale_flags":
            truth = primary_fs.entry(finding.path)
            fs.dl_set_flags(
                finding.path,
                linked=truth.linked, read_db=truth.read_db,
                write_blocked=truth.write_blocked, recovery=truth.recovery,
            )
        elif finding.kind == "extra":
            if not prune:
                continue  # reported, not deleted — curator's decision
            fs.dl_remove(finding.path)
        report.repaired += 1
        touched.add(replica.host)
        if obs.enabled:
            obs.metrics.counter(
                "replication.repair.fixed",
                set=replica_set.host, kind=finding.kind,
            ).inc()
    # a fully resynced follower no longer needs the queued backlog
    for host in touched:
        replica_set.queue.fast_forward(replica_set.replica(host))
    if obs.enabled:
        obs.metrics.counter(
            "replication.repair.passes", set=replica_set.host
        ).inc()
        obs.events.emit(
            "replication.repair",
            set=replica_set.host,
            findings=len(report.findings), repaired=report.repaired,
        )
    return report
