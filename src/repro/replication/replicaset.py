"""Replica sets: one logical file-server name, N physical replicas.

A :class:`ReplicaSet` is registered with the
:class:`~repro.datalink.linker.DataLinker` exactly like a single
:class:`~repro.fileserver.server.FileServer` — it exposes the same host /
token_manager / filesystem / control-plane surface — so every DATALINK URL
keeps naming the *logical* host while the bytes live on several physical
machines:

* **writes** (``put``, ``dl_link``, ``dl_unlink``) apply synchronously to
  the primary and are queued for asynchronous propagation to followers
  (:mod:`repro.replication.queue`);
* **reads** (``serve``, ``head``, ``dl_size``, ``dl_exists``) fail over:
  healthy replicas are tried first, a replica that errors is passively
  marked suspect/down, and only when *every* replica fails does the read
  raise :class:`~repro.errors.AllReplicasDownError` (the web tier's 503);
* **tokens** issued for the logical host validate on any replica, because
  each member's ``token_scope_host`` is the set's logical name.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable

from repro.errors import (
    AllReplicasDownError,
    FileNotFoundOnServer,
    ReplicaUnavailableError,
    ReplicationError,
)
from repro.fileserver.server import FileServer
from repro.obs import get_observability
from repro.replication.queue import ReplicationOp, ReplicationQueue

__all__ = ["Replica", "ReplicaSet"]

#: consecutive passive failures after which a replica is considered down
#: even without the health monitor probing it
PASSIVE_DOWN_AFTER = 3


class Replica:
    """One physical server inside a replica set, plus its tracked state."""

    __slots__ = ("server", "status", "killed", "reachable",
                 "consecutive_failures", "cursor", "push_attempts",
                 "next_attempt_at")

    def __init__(self, server: FileServer) -> None:
        self.server = server
        #: failure-detector verdict: up | suspect | down
        self.status = "up"
        #: hard kill switch (process death in tests/benchmarks)
        self.killed = False
        #: optional connectivity predicate (netsim partitions); None = wired
        self.reachable: Callable[[], bool] | None = None
        self.consecutive_failures = 0
        #: replication-queue position (last applied op seq)
        self.cursor = 0
        self.push_attempts = 0
        self.next_attempt_at = 0.0

    @property
    def host(self) -> str:
        return self.server.host

    def is_connected(self) -> bool:
        if self.killed:
            return False
        return self.reachable is None or self.reachable()

    def note_failure(self, suspect_after: int = 1,
                     down_after: int = PASSIVE_DOWN_AFTER) -> None:
        self.consecutive_failures += 1
        if self.consecutive_failures >= down_after:
            self.status = "down"
        elif self.consecutive_failures >= suspect_after:
            self.status = "suspect"

    def note_success(self) -> None:
        self.consecutive_failures = 0
        self.status = "up"

    def __repr__(self) -> str:
        return f"Replica({self.host!r}, {self.status})"


class ReplicaSet:
    """A logical file-server host backed by N physical replicas."""

    def __init__(
        self,
        host: str,
        servers: Iterable[FileServer],
        time_source: Callable[[], float] = time.time,
        backoff_base: float = 0.05,
        backoff_cap: float = 5.0,
    ) -> None:
        self.host = host
        self.replicas = [Replica(server) for server in servers]
        if not self.replicas:
            raise ReplicationError(f"replica set {host!r} needs >= 1 replica")
        seen = {r.host for r in self.replicas}
        if len(seen) != len(self.replicas):
            raise ReplicationError(
                f"replica set {host!r} has duplicate physical hosts"
            )
        for replica in self.replicas:
            replica.server.token_scope_host = host
        self._token_manager = None
        self.queue = ReplicationQueue(self, time_source, backoff_base, backoff_cap)
        #: reads that succeeded only after skipping/failing past >= 1 replica
        self.failovers = 0
        self._stats_lock = threading.Lock()

    # -- the FileServer-compatible surface the DataLinker expects ---------------

    @property
    def token_manager(self):
        return self._token_manager

    @token_manager.setter
    def token_manager(self, manager) -> None:
        """Installing the shared token manager fans out to every replica,
        mirroring how each host's file manager shares key material."""
        self._token_manager = manager
        for replica in self.replicas:
            replica.server.token_manager = manager

    @property
    def primary(self) -> Replica:
        return self.replicas[0]

    @property
    def followers(self) -> list[Replica]:
        return self.replicas[1:]

    @property
    def filesystem(self):
        """The primary's filesystem (source of truth for reconcile/backup
        callers that address a server's local store directly)."""
        return self.primary.server.filesystem

    def __repr__(self) -> str:
        members = ", ".join(r.host for r in self.replicas)
        return f"ReplicaSet({self.host!r} -> [{members}])"

    # -- replica lookup / fault controls ----------------------------------------

    def replica(self, physical_host: str) -> Replica:
        for replica in self.replicas:
            if replica.host == physical_host:
                return replica
        raise ReplicationError(
            f"replica set {self.host!r} has no replica {physical_host!r}"
        )

    def kill(self, physical_host: str) -> None:
        """Simulate the death of one physical replica."""
        replica = self.replica(physical_host)
        replica.killed = True
        replica.status = "down"

    def revive(self, physical_host: str) -> None:
        replica = self.replica(physical_host)
        replica.killed = False
        replica.note_success()

    def promote(self, physical_host: str) -> Replica:
        """Manual write failover: make ``physical_host`` the primary.

        Asynchronous replication means the new primary may be missing the
        tail of the old primary's operations (non-zero RPO); run an
        anti-entropy repair afterwards so the followers converge on the
        new primary's state.
        """
        replica = self.replica(physical_host)
        self.replicas.remove(replica)
        self.replicas.insert(0, replica)
        self.queue.fast_forward(replica)
        obs = get_observability()
        if obs.enabled:
            obs.events.emit(
                "replication.promote", set=self.host, primary=replica.host
            )
        return replica

    # -- write path: primary synchronously, followers via the queue -------------

    def put(self, path: str, data: bytes) -> int:
        n = self.primary.server.put(path, data)
        self.queue.enqueue("put", path, data=data)
        return n

    def dl_link(self, path: str, read_db: bool, write_blocked: bool,
                recovery: bool) -> None:
        self.primary.server.dl_link(path, read_db, write_blocked, recovery)
        self.queue.enqueue(
            "link", path,
            read_db=read_db, write_blocked=write_blocked, recovery=recovery,
        )

    def dl_unlink(self, path: str, delete: bool) -> None:
        self.primary.server.dl_unlink(path, delete)
        self.queue.enqueue("unlink", path, delete=delete)

    def apply_to_follower(self, replica: Replica, op: ReplicationOp) -> None:
        """Apply one queued op on a follower (idempotent, so a retry after
        a half-acknowledged push cannot corrupt the replica)."""
        if not replica.is_connected():
            raise ReplicaUnavailableError(
                f"replica {replica.host} of {self.host} is unreachable"
            )
        server = replica.server
        if op.kind == "put":
            server.dl_put(op.path, op.data)
        elif op.kind == "link":
            fs = server.filesystem
            if fs.exists(op.path) and fs.entry(op.path).linked:
                fs.dl_set_flags(op.path, linked=True, **op.flags)
            else:
                server.dl_link(op.path, **op.flags)
        elif op.kind == "unlink":
            fs = server.filesystem
            if not fs.exists(op.path):
                return  # already gone: the delete propagated earlier
            if fs.entry(op.path).linked:
                server.dl_unlink(op.path, delete=op.flags.get("delete", False))
            elif op.flags.get("delete"):
                fs.dl_remove(op.path)
        else:  # pragma: no cover - enqueue() only produces the three kinds
            raise ReplicationError(f"unknown replication op {op.kind!r}")

    def pump(self, force: bool = False) -> int:
        return self.queue.pump(force=force)

    def drain(self, max_rounds: int = 1000) -> int:
        """Pump (ignoring backoff) until no follower lags or progress stops."""
        total = 0
        for _ in range(max_rounds):
            if self.queue.max_lag() == 0:
                break
            applied = self.queue.pump(force=True)
            total += applied
            if applied == 0:
                break
        return total

    # -- read path: transparent failover -----------------------------------------

    def _read_order(self) -> list[Replica]:
        """Healthy first (primary leading), then suspects, then — as a last
        resort — replicas marked down: stale failure-detector verdicts must
        degrade latency, not availability."""
        ups = [r for r in self.replicas if not r.killed and r.status == "up"]
        suspects = [
            r for r in self.replicas if not r.killed and r.status == "suspect"
        ]
        downs = [r for r in self.replicas if not r.killed and r.status == "down"]
        return ups + suspects + downs

    def _failover(self, method: str, *args, **kwargs):
        """Invoke ``method`` on replicas in health order until one answers.

        Availability errors rotate to the next replica; a missing file on
        one replica (replication lag) also rotates, but if *every* reachable
        replica lacks the file the not-found error propagates unchanged.
        Permission/token errors propagate immediately — retrying a denial
        on another replica of the same logical host cannot succeed.
        """
        candidates = self._read_order()
        not_found: FileNotFoundOnServer | None = None
        failures: list[str] = []
        for replica in candidates:
            if not replica.is_connected():
                replica.note_failure()
                failures.append(f"{replica.host}: unreachable")
                continue
            try:
                result = getattr(replica.server, method)(*args, **kwargs)
            except FileNotFoundOnServer as exc:
                not_found = exc
                continue
            replica.note_success()
            if replica is not self.primary:
                # served by a non-primary replica: the read failed over
                # (the primary was killed, partitioned, or demoted)
                self._record_failover(replica, method)
            return result
        if not_found is not None:
            raise not_found
        raise AllReplicasDownError(
            f"all {len(self.replicas)} replica(s) of {self.host} are down "
            f"({'; '.join(failures) or 'no replica reachable'})"
        )

    def _record_failover(self, replica: Replica, method: str) -> None:
        with self._stats_lock:
            self.failovers += 1
        obs = get_observability()
        if obs.enabled:
            obs.metrics.counter("replication.failovers", set=self.host).inc()
            obs.events.emit(
                "replication.failover",
                set=self.host, served_by=replica.host, method=method,
            )

    def serve(self, path: str, token: str | None = None) -> bytes:
        return self._failover("serve", path, token=token)

    def head(self, path: str) -> int:
        return self._failover("head", path)

    def dl_exists(self, path: str) -> bool:
        return self._failover("dl_exists", path)

    def dl_size(self, path: str) -> int:
        return self._failover("dl_size", path)

    def dl_recovery_paths(self) -> list[str]:
        return self._failover("dl_recovery_paths")

    def healthy_entry(self, path: str):
        """The file entry from any healthy replica (coordinated backup must
        not fail because one replica — even the primary — is down)."""
        return self._failover_entry(path)

    def _failover_entry(self, path: str):
        not_found: FileNotFoundOnServer | None = None
        for replica in self._read_order():
            if not replica.is_connected():
                replica.note_failure()
                continue
            try:
                return replica.server.filesystem.entry(path)
            except FileNotFoundOnServer as exc:
                not_found = exc
                continue
        if not_found is not None:
            raise not_found
        raise AllReplicasDownError(
            f"all replica(s) of {self.host} are down; cannot read {path}"
        )

    # -- status ------------------------------------------------------------------

    def status(self) -> dict:
        """Plain-data view for the CLI and ``/metrics``."""
        replicas = []
        for i, replica in enumerate(self.replicas):
            replicas.append({
                "host": replica.host,
                "role": "primary" if i == 0 else "follower",
                "status": "killed" if replica.killed else replica.status,
                "lag": 0 if i == 0 else self.queue.lag(replica),
                "files": len(replica.server.filesystem),
            })
        return {
            "host": self.host,
            "replicas": replicas,
            "queue_depth": self.queue.depth(),
            "max_lag": self.queue.max_lag(),
            "failovers": self.failovers,
            "ops_enqueued": self.queue.ops_enqueued,
            "ops_applied": self.queue.ops_applied,
            "retries": self.queue.retries,
        }
