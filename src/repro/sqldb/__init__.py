"""A from-scratch object-relational engine.

This package is the database substrate beneath the EASIA reproduction.  It
provides the pieces the paper's architecture relies on:

* an SQL subset (DDL + DML + queries with joins, aggregates and LIKE),
* a system catalog rich enough to drive automatic interface generation
  (tables, columns, types, primary keys, foreign keys, sample values),
* primary-key / foreign-key referential integrity,
* BLOB, CLOB and DATALINK column types,
* transactions with rollback, a write-ahead log, crash recovery, and
  coordinated backup that includes externally linked files.

The public entry point is :class:`repro.sqldb.Database`:

>>> from repro.sqldb import Database
>>> db = Database()
>>> _ = db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(20))")
>>> _ = db.execute("INSERT INTO t VALUES (1, 'alpha')")
>>> db.execute("SELECT name FROM t WHERE id = 1").scalar()
'alpha'
"""

from repro.errors import LockTimeout
from repro.sqldb.connection import Connection, ConnectionPool
from repro.sqldb.database import Database, Result
from repro.sqldb.schema import Column, ForeignKey, TableSchema
from repro.sqldb.types import (
    Blob,
    Clob,
    DatalinkValue,
    SqlType,
    type_from_name,
)

__all__ = [
    "Database",
    "Result",
    "Connection",
    "ConnectionPool",
    "LockTimeout",
    "Column",
    "ForeignKey",
    "TableSchema",
    "Blob",
    "Clob",
    "DatalinkValue",
    "SqlType",
    "type_from_name",
]
