"""System catalog.

Tracks every table's schema and provides the metadata queries the rest of
EASIA is driven by.  The paper's interface generator works purely from
"referential integrity constraints in the DB catalogue metadata"; the
methods here (:meth:`Catalog.references_to`, :meth:`Catalog.foreign_keys_of`)
are exactly what the XUIS generator and the browse-link builder consume.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import CatalogError
from repro.sqldb.schema import Column, ForeignKey, TableSchema
from repro.sqldb.storage import Table, VersionClock
from repro.sqldb.types import BooleanType, IntegerType, VarcharType

__all__ = ["Catalog", "SYSTEM_TABLES"]

#: queryable catalog views, in the style of DB2's SYSCAT — these are what
#: schema-driven tools (the paper's DBbrowse lineage) introspect via SQL
SYSTEM_TABLES = (
    "SYSTABLES",
    "SYSCOLUMNS",
    "SYSKEYS",
    "SYSFOREIGNKEYS",
    "SYSINDEXES",
    "SYSVIEWS",
)


class Catalog:
    """All table definitions plus their storage objects."""

    def __init__(self, clock: VersionClock | None = None) -> None:
        self._tables: dict[str, Table] = {}
        self._index_owner: dict[str, str] = {}
        #: view name -> (SelectStmt, original DDL text)
        self._views: dict[str, tuple] = {}
        #: shared version clock installed on every table's heap, so one
        #: commit sequence orders snapshot visibility across the database
        self.clock = clock if clock is not None else VersionClock()

    # -- definition --------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in SYSTEM_TABLES:
            raise CatalogError(f"{schema.name} is a reserved system table name")
        if schema.name in self._tables:
            raise CatalogError(f"table {schema.name} already exists")
        self._validate_foreign_keys(schema)
        table = Table(schema, clock=self.clock)
        self._tables[schema.name] = table
        for name in table.indexes:
            self._index_owner[name] = schema.name
        return table

    def _validate_foreign_keys(self, schema: TableSchema) -> None:
        for fk in schema.foreign_keys:
            if fk.ref_table == schema.name:
                ref_schema = schema  # self-referencing FK
            else:
                ref_schema = self.schema(fk.ref_table)
            for col in fk.ref_columns:
                if not ref_schema.has_column(col):
                    raise CatalogError(
                        f"foreign key references unknown column "
                        f"{fk.ref_table}.{col}"
                    )
            # The referenced columns must be the PK or a unique set so that
            # each child row maps to at most one parent.
            ref_cols = tuple(c.upper() for c in fk.ref_columns)
            targets = [ref_schema.primary_key, *ref_schema.unique_sets]
            if ref_cols not in targets:
                raise CatalogError(
                    f"foreign key must reference a primary key or unique "
                    f"columns of {fk.ref_table}, got ({', '.join(ref_cols)})"
                )

    def drop_table(self, name: str) -> Table:
        name = name.upper()
        table = self.table(name)
        referencing = [
            fk
            for other in self._tables.values()
            if other.schema.name != name
            for fk in other.schema.foreign_keys
            if fk.ref_table == name
        ]
        if referencing:
            raise CatalogError(
                f"cannot drop {name}: referenced by foreign key(s) "
                f"{[fk.name for fk in referencing]}"
            )
        for index_name in table.indexes:
            self._index_owner.pop(index_name, None)
        del self._tables[name]
        return table

    # -- views ----------------------------------------------------------------

    def create_view(self, name: str, select, ddl_text: str) -> None:
        """Register a named stored SELECT."""
        name = name.upper()
        if name in SYSTEM_TABLES:
            raise CatalogError(f"{name} is a reserved system table name")
        if name in self._tables or name in self._views:
            raise CatalogError(f"table or view {name} already exists")
        self._views[name] = (select, ddl_text)

    def drop_view(self, name: str) -> None:
        name = name.upper()
        if name not in self._views:
            raise CatalogError(f"no view named {name}")
        del self._views[name]

    def is_view(self, name: str) -> bool:
        return name.upper() in self._views

    def view_select(self, name: str):
        try:
            return self._views[name.upper()][0]
        except KeyError:
            raise CatalogError(f"no view named {name.upper()}") from None

    def view_ddl(self, name: str) -> str:
        return self._views[name.upper()][1]

    def view_names(self) -> list[str]:
        return sorted(self._views)

    def register_index(self, index_name: str, table_name: str) -> None:
        if index_name in self._index_owner:
            raise CatalogError(f"index {index_name} already exists")
        self._index_owner[index_name] = table_name.upper()

    def drop_index(self, index_name: str) -> None:
        index_name = index_name.upper()
        owner = self._index_owner.pop(index_name, None)
        if owner is None:
            raise CatalogError(f"no index named {index_name}")
        self._tables[owner].drop_index(index_name)

    # -- lookup --------------------------------------------------------------

    def table(self, name: str) -> Table:
        name = name.upper()
        if name in SYSTEM_TABLES:
            return self._system_table(name)
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table named {name}") from None

    def schema(self, name: str) -> TableSchema:
        return self.table(name).schema

    def has_table(self, name: str) -> bool:
        name = name.upper()
        return name in self._tables or name in SYSTEM_TABLES

    @staticmethod
    def is_system_table(name: str) -> bool:
        return name.upper() in SYSTEM_TABLES

    # -- system catalog views -----------------------------------------------

    def _system_table(self, name: str) -> Table:
        """Synthesise a read-only catalog view as a transient table.

        Rebuilt on every access so it always reflects the current schema;
        the database layer refuses DML against these names.
        """
        builders = {
            "SYSTABLES": self._systables,
            "SYSCOLUMNS": self._syscolumns,
            "SYSKEYS": self._syskeys,
            "SYSFOREIGNKEYS": self._sysforeignkeys,
            "SYSINDEXES": self._sysindexes,
            "SYSVIEWS": self._sysviews,
        }
        schema, rows = builders[name]()
        table = Table(schema)
        for row in rows:
            table.insert(row)
        return table

    def _systables(self):
        schema = TableSchema(
            "SYSTABLES",
            [
                Column("TABLE_NAME", VarcharType(64)),
                Column("COLUMN_COUNT", IntegerType()),
                Column("ROW_COUNT", IntegerType()),
                Column("PRIMARY_KEY", VarcharType(255)),
            ],
        )
        rows = [
            (
                table.schema.name,
                len(table.schema.columns),
                len(table),
                ", ".join(table.schema.primary_key),
            )
            for table in self.tables()
        ]
        return schema, rows

    def _syscolumns(self):
        schema = TableSchema(
            "SYSCOLUMNS",
            [
                Column("TABLE_NAME", VarcharType(64)),
                Column("COLUMN_NAME", VarcharType(64)),
                Column("ORDINAL", IntegerType()),
                Column("TYPE_NAME", VarcharType(20)),
                Column("TYPE_SIZE", IntegerType()),
                Column("NULLABLE", BooleanType()),
                Column("IS_DATALINK", BooleanType()),
            ],
        )
        rows = []
        for table in self.tables():
            for i, column in enumerate(table.schema.columns):
                size = getattr(column.type, "size", None)
                rows.append(
                    (
                        table.schema.name,
                        column.name,
                        i + 1,
                        column.type.name,
                        size,
                        column.nullable,
                        column.is_datalink,
                    )
                )
        return schema, rows

    def _syskeys(self):
        schema = TableSchema(
            "SYSKEYS",
            [
                Column("TABLE_NAME", VarcharType(64)),
                Column("CONSTRAINT_TYPE", VarcharType(10)),
                Column("COLUMN_NAME", VarcharType(64)),
                Column("POSITION", IntegerType()),
            ],
        )
        rows = []
        for table in self.tables():
            for i, col in enumerate(table.schema.primary_key):
                rows.append((table.schema.name, "PRIMARY", col, i + 1))
            for uniq in table.schema.unique_sets:
                for i, col in enumerate(uniq):
                    rows.append((table.schema.name, "UNIQUE", col, i + 1))
        return schema, rows

    def _sysforeignkeys(self):
        schema = TableSchema(
            "SYSFOREIGNKEYS",
            [
                Column("TABLE_NAME", VarcharType(64)),
                Column("FK_NAME", VarcharType(64)),
                Column("COLUMN_NAME", VarcharType(64)),
                Column("REF_TABLE", VarcharType(64)),
                Column("REF_COLUMN", VarcharType(64)),
                Column("POSITION", IntegerType()),
            ],
        )
        rows = []
        for table in self.tables():
            for fk in table.schema.foreign_keys:
                for i, (col, ref) in enumerate(zip(fk.columns, fk.ref_columns)):
                    rows.append(
                        (table.schema.name, fk.name, col, fk.ref_table, ref, i + 1)
                    )
        return schema, rows

    def _sysindexes(self):
        schema = TableSchema(
            "SYSINDEXES",
            [
                Column("TABLE_NAME", VarcharType(64)),
                Column("INDEX_NAME", VarcharType(64)),
                Column("COLUMN_NAME", VarcharType(64)),
                Column("IS_UNIQUE", BooleanType()),
                Column("POSITION", IntegerType()),
            ],
        )
        rows = []
        for table in self.tables():
            for index_name, index in sorted(table.indexes.items()):
                for i, col in enumerate(index.columns):
                    rows.append(
                        (table.schema.name, index_name, col, index.unique, i + 1)
                    )
        return schema, rows

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def tables(self) -> Iterator[Table]:
        for name in self.table_names():
            yield self._tables[name]

    # -- referential metadata (drives XUIS + browsing) -------------------------

    def foreign_keys_of(self, table: str) -> list[ForeignKey]:
        """Outgoing foreign keys of ``table`` (enables FK browsing: a link
        on AUTHOR_KEY retrieves the full author row)."""
        return list(self.schema(table).foreign_keys)

    def references_to(self, table: str) -> list[tuple[str, ForeignKey]]:
        """Incoming references: ``(child_table, fk)`` pairs whose foreign
        key points at ``table``.  Enables PK browsing: SIMULATION_KEY links
        to RESULT_FILE, CODE_FILE and VISUALISATION_FILE."""
        table = table.upper()
        out = []
        for child in self.tables():
            for fk in child.schema.foreign_keys:
                if fk.ref_table == table:
                    out.append((child.schema.name, fk))
        return out

    def datalink_columns(self, table: str) -> list:
        """DATALINK columns of ``table`` (drive link-management hooks)."""
        return self.schema(table).datalink_columns

    def sample_values(self, table: str, column: str, limit: int = 3) -> list:
        """Up to ``limit`` distinct non-NULL values, for XUIS ``<samples>``."""
        tbl = self.table(table)
        index = tbl.schema.column_index(column)
        seen = []
        for _, row in tbl.scan():
            value = row[index]
            if value is None or value in seen:
                continue
            seen.append(value)
            if len(seen) >= limit:
                break
        return seen

    def _sysviews(self):
        schema = TableSchema(
            "SYSVIEWS",
            [
                Column("VIEW_NAME", VarcharType(64)),
                Column("DEFINITION", VarcharType(4096)),
            ],
        )
        rows = [(name, self._views[name][1]) for name in self.view_names()]
        return schema, rows

    def ddl_script(self) -> str:
        """Dump all table definitions in dependency order (parents first)."""
        emitted: list[str] = []
        remaining = dict(self._tables)
        while remaining:
            progressed = False
            for name in sorted(remaining):
                schema = remaining[name].schema
                deps = {
                    fk.ref_table
                    for fk in schema.foreign_keys
                    if fk.ref_table != name
                }
                if deps <= set(emitted):
                    emitted.append(name)
                    del remaining[name]
                    progressed = True
            if not progressed:
                # FK cycle: emit the rest in name order.
                for name in sorted(remaining):
                    emitted.append(name)
                remaining.clear()
        statements = [self._tables[name].schema.ddl() for name in emitted]
        statements.extend(self._views[name][1] for name in self.view_names())
        return ";\n\n".join(statements) + (";\n" if statements else "")
