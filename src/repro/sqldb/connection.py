"""Connection-scoped sessions: snapshot reads, the writer lock, pooling.

The paper's archive is a multi-user web system; this module is what turns
the single-user engine into one.  The pieces:

* :class:`WriterLock` — the engine's single writer lock.  Writes from any
  connection serialise through it; acquisition has a configurable timeout
  that raises :class:`~repro.errors.LockTimeout` instead of blocking
  forever, and every wait is measured (``sqldb.writer_lock.*`` metrics,
  including a queue-depth gauge).
* :class:`TableSnapshot` / :class:`SnapshotCatalog` — read-only,
  visibility-filtered views of the live catalog at one version-clock
  sequence.  A table untouched since the snapshot is served in *frozen*
  mode — live heap and live indexes, full index access paths — and the
  connection validates after the statement that it stayed untouched,
  retrying once in scan mode if a writer committed mid-read (optimistic
  snapshot reads).
* :class:`Connection` — one session's handle: its own
  :class:`~repro.sqldb.transactions.TransactionManager` (transaction state
  is *per connection*), its own executors (the executor keeps per-statement
  state and is not shareable across threads), and the snapshot read path.
* :class:`ConnectionPool` — a small fixed pool the servlet container
  checks a connection out of per request, installing it as the calling
  thread's implicit connection for the request's duration.

Isolation level offered (see docs/CONCURRENCY.md): autocommit reads on a
``snapshot_reads`` connection are *read-committed with per-statement
snapshots* — each statement sees one consistent committed state and never
blocks on the writer.  Reads inside an explicit transaction see the live
state (the transaction's own uncommitted writes included).  Connections
obtained via :meth:`Database.connect` default to snapshot reads; the
per-thread implicit connection behind ``Database.execute`` reads live,
preserving exact single-connection semantics.
"""

from __future__ import annotations

import queue
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Sequence

from repro.errors import LockTimeout, TransactionError
from repro.obs import get_observability
from repro.sqldb.executor import Executor
from repro.sqldb.transactions import TransactionManager

__all__ = [
    "Connection",
    "ConnectionPool",
    "SnapshotCatalog",
    "TableSnapshot",
    "WriterLock",
]

#: default writer-lock acquisition timeout, seconds
DEFAULT_LOCK_TIMEOUT = 30.0


class WriterLock:
    """The engine's single writer lock, with timeout and instrumentation.

    Not reentrant: one connection holds it from its first write statement
    until commit/rollback.  ``queue_depth`` is the number of threads
    currently blocked waiting — the writer-queue depth surfaced at
    ``/metrics``.
    """

    def __init__(self, timeout: float = DEFAULT_LOCK_TIMEOUT, obs=None) -> None:
        self._lock = threading.Lock()
        self.timeout = timeout
        self._obs = obs
        self._waiters = 0
        self._waiters_lock = threading.Lock()

    @property
    def queue_depth(self) -> int:
        return self._waiters

    def locked(self) -> bool:
        return self._lock.locked()

    def acquire(self, timeout: float | None = None) -> None:
        if timeout is None:
            timeout = self.timeout
        obs = self._obs or get_observability()
        # Fast path: uncontended acquisition costs one try-lock.
        if self._lock.acquire(blocking=False):
            if obs.enabled:
                obs.metrics.counter("sqldb.writer_lock.acquires").inc()
            return
        with self._waiters_lock:
            self._waiters += 1
            if obs.enabled:
                obs.metrics.gauge("sqldb.writer_lock.queue_depth").set(
                    self._waiters
                )
        started = perf_counter()
        try:
            acquired = self._lock.acquire(timeout=timeout)
        finally:
            waited = perf_counter() - started
            with self._waiters_lock:
                self._waiters -= 1
                if obs.enabled:
                    obs.metrics.gauge("sqldb.writer_lock.queue_depth").set(
                        self._waiters
                    )
        if obs.enabled:
            obs.metrics.histogram("sqldb.writer_lock.wait_seconds").observe(
                waited
            )
        if not acquired:
            if obs.enabled:
                obs.metrics.counter("sqldb.writer_lock.timeouts").inc()
                obs.events.emit(
                    "sqldb.writer_lock.timeout", timeout=timeout, waited=waited
                )
            raise LockTimeout(
                f"writer lock not acquired within {timeout:g}s "
                f"({self._waiters} other writer(s) waiting)"
            )
        if obs.enabled:
            obs.metrics.counter("sqldb.writer_lock.acquires").inc()

    def release(self) -> None:
        self._lock.release()


class TableSnapshot:
    """Read-only view of one :class:`~repro.sqldb.storage.Table` at a
    snapshot sequence, presenting the executor's table interface.

    *Frozen* mode (table unmodified since the snapshot, and not forced to
    scan): the live heap and live indexes serve the query — zero copying.
    Correctness relies on post-statement validation by the owning
    :class:`SnapshotCatalog`.  Otherwise every access goes through the
    heap's versioned reads and no indexes are offered, so the planner
    falls back to (visibility-filtered) sequential scans.
    """

    def __init__(self, table, snapshot: int, force_scan: bool = False) -> None:
        self._table = table
        self.snapshot = snapshot
        self.schema = table.schema
        self.frozen = not force_scan and table.version_seq <= snapshot
        self.indexes = dict(table.indexes) if self.frozen else {}
        self._visible: list[tuple[int, tuple]] | None = None

    def _materialised(self) -> list[tuple[int, tuple]]:
        if self._visible is None:
            self._visible = self._table.heap.scan_at(self.snapshot)
        return self._visible

    def scan(self):
        if self.frozen:
            return self._table.heap.scan()
        return iter(self._materialised())

    def row(self, rowid: int) -> tuple:
        return self._table.heap.get_at(rowid, self.snapshot)

    def index_on(self, columns, require_unique: bool = False):
        if not self.frozen:
            return None
        return self._table.index_on(columns, require_unique)

    def index_leading_on(self, column: str):
        if not self.frozen:
            return None
        return self._table.index_leading_on(column)

    def __len__(self) -> int:
        if self.frozen:
            return len(self._table)
        return len(self._materialised())


class SnapshotCatalog:
    """Catalog facade resolving every table to a :class:`TableSnapshot`.

    One per connection; :meth:`begin` re-arms it for each snapshot-read
    statement.  System catalog views are served live and unwrapped — they
    are synthesised transient tables, outside row versioning.
    """

    def __init__(self, catalog) -> None:
        self._catalog = catalog
        self.snapshot = 0
        self.force_scan = False
        #: tables handed out in frozen (live-index) mode, checked after
        #: the statement to detect a writer racing the read
        self._frozen_tables: list = []

    def begin(self, snapshot: int, force_scan: bool = False) -> None:
        self.snapshot = snapshot
        self.force_scan = force_scan
        self._frozen_tables = []

    def consistent(self) -> bool:
        """True when no frozen table was mutated past the snapshot."""
        return all(
            table.version_seq <= self.snapshot
            for table in self._frozen_tables
        )

    # -- the catalog surface the executor consumes -----------------------------

    def table(self, name: str):
        table = self._catalog.table(name)
        if self._catalog.is_system_table(name):
            return table
        snap = TableSnapshot(table, self.snapshot, force_scan=self.force_scan)
        if snap.frozen:
            self._frozen_tables.append(table)
        return snap

    def schema(self, name: str):
        return self._catalog.schema(name)

    def has_table(self, name: str) -> bool:
        return self._catalog.has_table(name)

    def is_system_table(self, name: str) -> bool:
        return self._catalog.is_system_table(name)

    def is_view(self, name: str) -> bool:
        return self._catalog.is_view(name)

    def view_select(self, name: str):
        return self._catalog.view_select(name)


class Connection:
    """One session's handle onto a :class:`~repro.sqldb.database.Database`.

    Owns its transaction state (so concurrent sessions can each hold an
    open transaction), its own executors, and — when ``snapshot_reads`` is
    on — the per-statement snapshot read path.  Not itself thread-safe:
    one connection serves one thread at a time, which is exactly how the
    pool hands them out.
    """

    def __init__(self, db, snapshot_reads: bool = True,
                 lock_timeout: float | None = None) -> None:
        self._db = db
        self.snapshot_reads = snapshot_reads
        #: per-connection override of the engine's writer-lock timeout
        self.lock_timeout = lock_timeout
        self.txns = TransactionManager(
            db.catalog,
            db._wal,
            id_allocator=db._allocate_txn_id,
            clock=db.catalog.clock,
            writer=db.writer_lock,
            snapshot_floor=db.snapshot_floor,
            obs=db._obs,
        )
        #: live executor: writes, explicit-transaction reads, EXPLAIN
        self.executor = Executor(db.catalog)
        self._snap_catalog = SnapshotCatalog(db.catalog)
        self._snap_executor = Executor(self._snap_catalog)
        self.closed = False

    # -- public API ------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = (),
                pushdown: bool = True):
        self._check_open()
        return self._db._execute_on(self, sql, params, pushdown)

    def execute_statement(self, stmt, params: Sequence[Any] = (),
                          sql: str | None = None, pushdown: bool = True):
        self._check_open()
        return self._db._execute_statement_on(self, stmt, params, sql, pushdown)

    def execute_script(self, sql: str, params: Sequence[Any] = ()):
        from repro.sqldb.parser import parse_script_with_sql

        return [
            self.execute_statement(stmt, params, sql=text)
            for stmt, text in parse_script_with_sql(sql)
        ]

    def transaction(self):
        return _ConnectionTransaction(self)

    @property
    def in_transaction(self) -> bool:
        return self.txns.in_explicit_transaction

    def close(self) -> None:
        """Roll back any open transaction and release the connection."""
        if self.closed:
            return
        if self.txns.active is not None:
            self.txns.rollback()
        self.closed = True

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _check_open(self) -> None:
        if self.closed:
            raise TransactionError("connection is closed")

    # -- the snapshot read path --------------------------------------------------

    def _execute_read(self, stmt, params: Sequence[Any], pushdown: bool):
        """Run a SELECT/UNION/EXPLAIN for this connection.

        Snapshot mode applies to autocommit reads on snapshot-enabled
        connections; reads inside an explicit transaction are live so the
        transaction observes its own writes.
        """
        db = self._db
        if not self.snapshot_reads or self.txns.active is not None:
            return db._run_read(stmt, params, pushdown, self.executor)
        with db._snapshot_scope() as snapshot:
            self._snap_catalog.begin(snapshot)
            result = db._run_read(stmt, params, pushdown, self._snap_executor)
            if self._snap_catalog.consistent():
                db._observe_snapshot_read(snapshot, retried=False)
                return result
            # A writer committed into a table we were reading through live
            # indexes; the result may mix generations.  Re-run against the
            # versioned scan path, which is race-free at this snapshot.
            self._snap_catalog.begin(snapshot, force_scan=True)
            result = db._run_read(stmt, params, pushdown, self._snap_executor)
            db._observe_snapshot_read(snapshot, retried=True)
            return result

    # -- instrumentation helpers (both executors belong to this connection) ----

    @property
    def rows_scanned(self) -> int:
        return self.executor.rows_scanned + self._snap_executor.rows_scanned

    @property
    def pushdown_filtered(self) -> int:
        return (
            self.executor.pushdown_filtered
            + self._snap_executor.pushdown_filtered
        )

    @property
    def hash_build_rows(self) -> int:
        return (
            self.executor.hash_build_rows
            + self._snap_executor.hash_build_rows
        )


class _ConnectionTransaction:
    def __init__(self, conn: Connection) -> None:
        self._conn = conn

    def __enter__(self) -> Connection:
        self._conn.execute("BEGIN")
        return self._conn

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._conn.execute("COMMIT")
        elif self._conn.in_transaction:
            self._conn.execute("ROLLBACK")
        return False


class ConnectionPool:
    """Fixed-size pool of snapshot-read connections for the web tier.

    ``scope()`` checks a connection out, installs it as the calling
    thread's implicit connection on the database (so every
    ``db.execute`` inside the request uses it), and returns it on exit —
    rolling back any transaction a buggy handler left open.  Checkout
    blocks when the pool is exhausted, which doubles as backpressure for
    the threaded server, and raises :class:`~repro.errors.LockTimeout`
    after ``checkout_timeout`` seconds.
    """

    def __init__(self, db, size: int = 4,
                 checkout_timeout: float = DEFAULT_LOCK_TIMEOUT,
                 lock_timeout: float | None = None) -> None:
        if size < 1:
            raise ValueError("pool size must be at least 1")
        self._db = db
        self.size = size
        self.checkout_timeout = checkout_timeout
        self._idle: "queue.Queue" = queue.Queue()
        for _ in range(size):
            self._idle.put(
                Connection(db, snapshot_reads=True, lock_timeout=lock_timeout)
            )
        self.checkouts = 0
        self._in_use = 0
        self._stats_lock = threading.Lock()

    @property
    def in_use(self) -> int:
        return self._in_use

    def checkout(self) -> Connection:
        obs = self._db._obs or get_observability()
        started = perf_counter()
        try:
            conn = self._idle.get(timeout=self.checkout_timeout)
        except queue.Empty:
            if obs.enabled:
                obs.metrics.counter("sqldb.pool.checkout_timeouts").inc()
            raise LockTimeout(
                f"no pooled connection available within "
                f"{self.checkout_timeout:g}s (pool size {self.size})"
            ) from None
        with self._stats_lock:
            self.checkouts += 1
            self._in_use += 1
        if obs.enabled:
            obs.metrics.counter("sqldb.pool.checkouts").inc()
            obs.metrics.gauge("sqldb.pool.in_use").set(self._in_use)
            obs.metrics.histogram("sqldb.pool.checkout_wait_seconds").observe(
                perf_counter() - started
            )
        return conn

    def checkin(self, conn: Connection) -> None:
        if conn.txns.active is not None:
            # a handler died mid-transaction: never return dirty state
            conn.txns.rollback()
            obs = self._db._obs or get_observability()
            if obs.enabled:
                obs.metrics.counter("sqldb.pool.abandoned_txns").inc()
        with self._stats_lock:
            self._in_use -= 1
        self._idle.put(conn)

    @contextmanager
    def scope(self):
        """Per-request scope: checkout + install as thread's connection."""
        conn = self.checkout()
        self._db._install_thread_connection(conn)
        try:
            yield conn
        finally:
            self._db._install_thread_connection(None)
            self.checkin(conn)
