"""The public database facade.

:class:`Database` exposes a DB-API-flavoured ``execute(sql, params)`` over
the parser, catalog, storage, transaction and WAL layers, and enforces the
cross-table rules:

* foreign-key referential integrity (RESTRICT semantics both directions),
* CHECK constraints,
* SQL/MED datalink hooks — on INSERT/UPDATE/DELETE of DATALINK columns the
  registered :class:`DatalinkHooks` implementation is consulted, so file
  linking participates in the same transaction as the metadata change, and
  on SELECT datalink values are decorated with access tokens.

Open with a directory path for durability (write-ahead logging + crash
recovery + checkpoints), or with no arguments for an in-memory database.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterator, Sequence

from repro.errors import (
    CatalogError,
    CheckViolation,
    ForeignKeyViolation,
    SqlSyntaxError,
    TransactionError,
)
from repro.sqldb.catalog import Catalog
from repro.sqldb.executor import Executor, SelectResult
from repro.sqldb.parser import parse_sql
from repro.sqldb.parser.ast_nodes import (
    AlterTableStmt,
    BeginStmt,
    CommitStmt,
    CreateIndexStmt,
    CreateTableStmt,
    CreateViewStmt,
    DeleteStmt,
    DropIndexStmt,
    DropTableStmt,
    DropViewStmt,
    ExplainStmt,
    InsertStmt,
    RollbackStmt,
    SelectStmt,
    Statement,
    UnionStmt,
    UpdateStmt,
)
from repro.obs import get_observability
from repro.sqldb.connection import (
    DEFAULT_LOCK_TIMEOUT,
    Connection,
    ConnectionPool,
    WriterLock,
)
from repro.sqldb.expressions import ColumnRef, truthy
from repro.sqldb.schema import TableSchema
from repro.sqldb.storage import HashIndex, SortedIndex
from repro.sqldb.types import DatalinkValue
from repro.sqldb.wal import WriteAheadLog

__all__ = ["Database", "Result", "DatalinkHooks", "Connection", "ConnectionPool"]


class Result:
    """Outcome of one statement."""

    def __init__(
        self,
        columns: list[str] | None = None,
        rows: list[tuple] | None = None,
        rowcount: int = 0,
        plan: list[str] | None = None,
    ) -> None:
        self.columns = columns or []
        self.rows = rows or []
        self.rowcount = rowcount
        self.plan = plan or []

    def scalar(self) -> Any:
        """First column of the first row (None when empty)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def first(self) -> tuple | None:
        return self.rows[0] if self.rows else None

    def dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Result({len(self.rows)} rows, rowcount={self.rowcount})"


class DatalinkHooks:
    """Interface the datalink manager implements to participate in the
    engine's transactions.  The default implementation is a no-op, which
    corresponds to ``NO LINK CONTROL`` behaviour for every column."""

    def on_insert_link(self, table: str, column: str, value: DatalinkValue,
                       spec, txn) -> None:
        """Called while inserting a non-NULL DATALINK value.  Must raise to
        veto the insert (e.g. FILE LINK CONTROL and the file is missing)."""

    def on_remove_link(self, table: str, column: str, value: DatalinkValue,
                       spec, txn) -> None:
        """Called while deleting/overwriting a non-NULL DATALINK value."""

    def statement_mark(self, txn) -> Any:
        """Snapshot pending link state before a statement (see the engine's
        statement-level atomicity)."""
        return None

    def statement_rollback(self, txn, mark: Any) -> None:
        """Discard pending link operations queued after ``mark``."""

    def decorate(self, value: DatalinkValue, spec, user: str | None = None) -> DatalinkValue:
        """Called for every DATALINK value in a SELECT result; returns the
        value to present (token attached for READ PERMISSION DB columns)."""
        return value


class Database:
    """A relational database with SQL/MED datalink support.

    >>> db = Database()
    >>> _ = db.execute("CREATE TABLE a (k INTEGER PRIMARY KEY, v VARCHAR(10))")
    >>> db.execute("INSERT INTO a VALUES (?, ?)", (1, 'x')).rowcount
    1
    """

    #: statement-cache capacity (entries); evicted least-recently-used
    STATEMENT_CACHE_SIZE = 512

    def __init__(self, directory: str | None = None, sync: bool = False,
                 obs=None, lock_timeout: float = DEFAULT_LOCK_TIMEOUT) -> None:
        #: explicit observability bundle; None means "use the process-wide
        #: default at call time" (a no-op unless repro.obs.enable() ran)
        self._obs = obs
        self.catalog = Catalog()
        self._wal = WriteAheadLog(directory, sync=sync) if directory else None
        self._hooks: DatalinkHooks = DatalinkHooks()
        self._statement_cache: OrderedDict[str, Statement] = OrderedDict()
        self._statement_cache_lock = threading.Lock()
        self.statement_cache_hits = 0
        self.statement_cache_misses = 0
        #: the engine's single writer lock (see docs/CONCURRENCY.md)
        self.writer_lock = WriterLock(lock_timeout, obs=obs)
        #: engine-wide transaction-id allocation: atomic, never reused
        self._txn_ids = itertools.count(1)
        self._txn_ids_lock = threading.Lock()
        #: active snapshot sequences -> reader count; the minimum bounds
        #: how much row history commits must retain
        self._snapshots: dict[int, int] = {}
        self._snapshots_lock = threading.Lock()
        #: per-thread implicit connection (``execute`` without ``connect``),
        #: plus the pool's per-request override
        self._tls = threading.local()
        #: identity of the requesting user, consulted when issuing tokens
        self.current_user: str | None = None
        #: populated by recovery on durable databases: replayed/skipped
        #: transaction counts, torn-tail bytes, checkpoint watermark/epoch
        self.recovery_stats: dict[str, int] | None = None
        if self._wal is not None:
            self._recover()

    # -- connections -------------------------------------------------------------

    def connect(self, snapshot_reads: bool = True,
                lock_timeout: float | None = None) -> Connection:
        """Open an independent connection with its own transaction state.

        ``snapshot_reads=True`` (the default) gives the connection
        per-statement snapshot isolation on autocommit reads, so it never
        blocks on the writer; ``lock_timeout`` overrides the engine-wide
        writer-lock timeout for this connection's writes.
        """
        return Connection(
            self, snapshot_reads=snapshot_reads, lock_timeout=lock_timeout
        )

    def _allocate_txn_id(self) -> int:
        with self._txn_ids_lock:
            return next(self._txn_ids)

    def _connection(self) -> Connection:
        """The calling thread's implicit connection.

        A pool-installed override wins; otherwise each thread lazily gets
        its own default connection with live (non-snapshot) reads, which
        preserves exact historical single-connection semantics for
        ``Database.execute``.
        """
        override = getattr(self._tls, "override", None)
        if override is not None:
            return override
        conn = getattr(self._tls, "conn", None)
        if conn is None:
            conn = Connection(self, snapshot_reads=False)
            self._tls.conn = conn
        return conn

    def _install_thread_connection(self, conn: Connection | None) -> None:
        """Install (or with None, remove) the thread's override connection
        — how the pool scopes a pooled connection to one request."""
        self._tls.override = conn

    # back-compat introspection: the thread's connection-scoped objects
    @property
    def _txns(self):
        return self._connection().txns

    @property
    def _executor(self):
        return self._connection().executor

    # -- snapshot registry --------------------------------------------------------

    @contextmanager
    def _snapshot_scope(self):
        """Pin the current committed sequence for one read statement."""
        with self._snapshots_lock:
            snapshot = self.catalog.clock.committed
            self._snapshots[snapshot] = self._snapshots.get(snapshot, 0) + 1
        try:
            yield snapshot
        finally:
            with self._snapshots_lock:
                count = self._snapshots.get(snapshot, 1) - 1
                if count > 0:
                    self._snapshots[snapshot] = count
                else:
                    self._snapshots.pop(snapshot, None)

    def snapshot_floor(self) -> int | None:
        """Oldest snapshot still being read (None when no reader active)."""
        with self._snapshots_lock:
            return min(self._snapshots) if self._snapshots else None

    def _observe_snapshot_read(self, snapshot: int, retried: bool) -> None:
        obs = self._obs or get_observability()
        if not obs.enabled:
            return
        obs.metrics.counter("sqldb.snapshot.reads").inc()
        obs.metrics.histogram("sqldb.snapshot.age_commits").observe(
            self.catalog.clock.committed - snapshot
        )
        if retried:
            obs.metrics.counter("sqldb.snapshot.retries").inc()

    # -- configuration -----------------------------------------------------------

    def set_datalink_hooks(self, hooks: DatalinkHooks) -> None:
        """Register the SQL/MED datalink manager."""
        self._hooks = hooks

    @property
    def datalink_hooks(self) -> DatalinkHooks:
        return self._hooks

    # -- execution -----------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = (),
                pushdown: bool = True) -> Result:
        """Parse (with LRU caching) and execute one statement.

        ``pushdown=False`` disables the cost-aware planner (predicate
        pushdown, hash joins, range scans, Top-N) and runs the naive
        nested-loop / filter-at-the-end path — the escape hatch the
        differential tests compare against.
        """
        return self._execute_on(self._connection(), sql, params, pushdown)

    def _execute_on(self, conn: Connection, sql: str, params: Sequence[Any],
                    pushdown: bool) -> Result:
        stmt = self._parse_cached(sql)
        return self._execute_statement_on(conn, stmt, params, sql, pushdown)

    def _parse_cached(self, sql: str) -> Statement:
        """Statement-cache lookup, thread-safe; parsing runs unlocked."""
        cache = self._statement_cache
        with self._statement_cache_lock:
            stmt = cache.get(sql)
            if stmt is not None:
                self.statement_cache_hits += 1
                cache.move_to_end(sql)
                return stmt
            self.statement_cache_misses += 1
        stmt = parse_sql(sql)
        with self._statement_cache_lock:
            if sql not in cache:
                if len(cache) >= self.STATEMENT_CACHE_SIZE:
                    cache.popitem(last=False)
                cache[sql] = stmt
        return stmt

    @property
    def statement_cache_stats(self) -> dict[str, float]:
        """Hit/miss/size counters plus the derived hit ratio."""
        hits, misses = self.statement_cache_hits, self.statement_cache_misses
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "entries": len(self._statement_cache),
            "hit_ratio": hits / total if total else 0.0,
        }

    def execute_script(self, sql: str, params: Sequence[Any] = ()) -> list[Result]:
        """Execute a ``;``-separated script, returning per-statement results.

        Each statement keeps its own slice of the script text, so tracing
        and the slow-query log attribute work to real SQL; placeholders are
        numbered across the whole script, so one ``params`` sequence serves
        every statement.
        """
        from repro.sqldb.parser import parse_script_with_sql

        return [
            self.execute_statement(stmt, params, sql=text)
            for stmt, text in parse_script_with_sql(sql)
        ]

    def execute_statement(
        self, stmt: Statement, params: Sequence[Any] = (),
        sql: str | None = None, pushdown: bool = True,
    ) -> Result:
        return self._execute_statement_on(
            self._connection(), stmt, params, sql, pushdown
        )

    def _execute_statement_on(
        self, conn: Connection, stmt: Statement, params: Sequence[Any],
        sql: str | None = None, pushdown: bool = True,
    ) -> Result:
        obs = self._obs or get_observability()
        if not obs.enabled:
            return self._dispatch_statement(conn, stmt, params, sql, pushdown)
        return self._execute_instrumented(obs, conn, stmt, params, sql, pushdown)

    def _execute_instrumented(
        self,
        obs,
        conn: Connection,
        stmt: Statement,
        params: Sequence[Any],
        sql: str | None,
        pushdown: bool = True,
    ) -> Result:
        kind = type(stmt).__name__.removesuffix("Stmt").upper()
        scanned_before = conn.rows_scanned
        pushed_before = conn.pushdown_filtered
        hashed_before = conn.hash_build_rows
        with obs.tracer.span(
            "sql.statement", statement=kind, sql=sql or f"<{kind}>"
        ) as span:
            started = perf_counter()
            result = self._dispatch_statement(conn, stmt, params, sql, pushdown)
            elapsed = perf_counter() - started
        scanned = conn.rows_scanned - scanned_before
        span.set(
            elapsed=elapsed,
            rows=len(result.rows) or result.rowcount,
            rows_scanned=scanned,
        )
        metrics = obs.metrics
        metrics.counter("sql.statements", kind=kind).inc()
        metrics.counter("sql.rows_returned").inc(len(result.rows))
        metrics.counter("sql.rows_scanned").inc(scanned)
        pushed = conn.pushdown_filtered - pushed_before
        if pushed:
            metrics.counter("sqldb.scan.pushdown_filtered").inc(pushed)
        hashed = conn.hash_build_rows - hashed_before
        if hashed:
            metrics.counter("sqldb.join.hash_build_rows").inc(hashed)
        metrics.histogram("sql.statement_seconds").observe(elapsed)
        metrics.counter("sql.statement_cache.hits").value = (
            self.statement_cache_hits
        )
        metrics.counter("sql.statement_cache.misses").value = (
            self.statement_cache_misses
        )
        obs.slow_query.record(
            sql or f"<{kind}>", elapsed, params=params,
            rows=len(result.rows) or result.rowcount, rows_scanned=scanned,
        )
        return result

    def _dispatch_statement(
        self, conn: Connection, stmt: Statement, params: Sequence[Any],
        sql: str | None, pushdown: bool = True,
    ) -> Result:
        if isinstance(stmt, (SelectStmt, UnionStmt, ExplainStmt)):
            return conn._execute_read(stmt, params, pushdown)
        if isinstance(stmt, BeginStmt):
            conn.txns.begin(explicit=True)
            return Result()
        if isinstance(stmt, CommitStmt):
            if not conn.txns.in_explicit_transaction:
                raise TransactionError("COMMIT outside a transaction")
            conn.txns.commit()
            return Result()
        if isinstance(stmt, RollbackStmt):
            if not conn.txns.in_explicit_transaction:
                raise TransactionError("ROLLBACK outside a transaction")
            conn.txns.rollback()
            return Result()

        # All remaining statements mutate; serialise through the writer
        # lock *before* creating transaction state, so a timeout leaves the
        # connection untouched.  No-op when this connection already holds
        # the lock (explicit transaction with earlier writes).
        conn.txns.acquire_writer(conn.lock_timeout)
        txn, owns = conn.txns.ensure()
        stmt_mark = conn.txns.statement_mark(txn)
        hook_mark = self._hooks.statement_mark(txn)
        try:
            if isinstance(stmt, CreateTableStmt):
                result = self._execute_create_table(conn, stmt, txn, sql)
            elif isinstance(stmt, CreateViewStmt):
                result = self._execute_create_view(conn, stmt, txn, sql)
            elif isinstance(stmt, DropViewStmt):
                result = self._execute_drop_view(stmt, txn)
            elif isinstance(stmt, AlterTableStmt):
                result = self._execute_alter_table(stmt, txn, sql)
            elif isinstance(stmt, DropTableStmt):
                result = self._execute_drop_table(stmt, txn)
            elif isinstance(stmt, CreateIndexStmt):
                result = self._execute_create_index(conn, stmt, txn, sql)
            elif isinstance(stmt, DropIndexStmt):
                result = self._execute_drop_index(stmt)
            elif isinstance(stmt, InsertStmt):
                result = self._execute_insert(conn, stmt, params, txn)
            elif isinstance(stmt, UpdateStmt):
                result = self._execute_update(conn, stmt, params, txn)
            elif isinstance(stmt, DeleteStmt):
                result = self._execute_delete(conn, stmt, params, txn)
            else:
                raise SqlSyntaxError(f"unsupported statement {type(stmt).__name__}")
        except Exception:
            if owns:
                conn.txns.rollback()
            else:
                # Statement-level atomicity inside an explicit transaction:
                # a failed statement leaves no partial effects, but earlier
                # statements of the transaction survive.
                conn.txns.statement_rollback(txn, stmt_mark)
                self._hooks.statement_rollback(txn, hook_mark)
            raise
        if owns:
            conn.txns.commit()
        return result

    def _run_read(self, stmt: Statement, params: Sequence[Any],
                  pushdown: bool, executor: Executor) -> Result:
        """Execute a read statement against the given executor — either a
        connection's live executor or its snapshot executor (the snapshot
        read path runs the *whole* statement, UNION branches included,
        against one snapshot)."""
        if isinstance(stmt, SelectStmt):
            return self._select_result(stmt, params, pushdown, executor)
        if isinstance(stmt, UnionStmt):
            return self._execute_union(stmt, params, pushdown, executor)
        assert isinstance(stmt, ExplainStmt)
        if stmt.analyze:
            return self._execute_explain_analyze(stmt, params, pushdown, executor)
        result = executor.execute_select(stmt.select, params, optimize=pushdown)
        return Result(
            ["PLAN"], [(step,) for step in result.plan],
            rowcount=len(result.plan),
        )

    def transaction(self) -> "_TransactionContext":
        """Context manager: BEGIN on enter, COMMIT on success, ROLLBACK on
        exception.

        >>> db = Database()
        >>> _ = db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY)")
        >>> with db.transaction():
        ...     _ = db.execute("INSERT INTO t VALUES (1)")
        """
        return _TransactionContext(self)

    def explain(self, sql: str, params: Sequence[Any] = (),
                pushdown: bool = True) -> str:
        """Access-path description for a SELECT (tests pin index usage)."""
        from repro.sqldb.planner import explain as render

        stmt = parse_sql(sql)
        if not isinstance(stmt, SelectStmt):
            raise SqlSyntaxError("EXPLAIN supports SELECT only")
        result = self._executor.execute_select(stmt, params, optimize=pushdown)
        return render(result.plan)

    def _execute_explain_analyze(self, stmt: ExplainStmt,
                                 params: Sequence[Any],
                                 pushdown: bool = True,
                                 executor: Executor | None = None) -> Result:
        """EXPLAIN ANALYZE: run the SELECT and annotate every plan step
        with the rows it produced and its measured (cumulative) time."""
        executor = executor if executor is not None else self._executor
        started = perf_counter()
        result = executor.execute_select(
            stmt.select, params, analyze=True, optimize=pushdown
        )
        total = perf_counter() - started
        rows: list[tuple] = []
        stats = result.step_stats or {}
        for i, step in enumerate(result.plan):
            timing = stats.get(i)
            if timing is not None:
                rows.append((
                    f"{step} [rows={timing.rows}, "
                    f"{timing.seconds * 1e3:.3f} ms cumulative]",
                ))
            else:
                rows.append((step,))
        rows.append((
            f"total: {len(result.rows)} row(s) in {total * 1e3:.3f} ms",
        ))
        return Result(["PLAN"], rows, rowcount=len(rows))

    # -- DDL -----------------------------------------------------------------------

    def _execute_create_table(self, conn: Connection, stmt: CreateTableStmt,
                              txn, sql: str | None) -> Result:
        if stmt.if_not_exists and self.catalog.has_table(stmt.name):
            return Result()
        schema = TableSchema(
            stmt.name,
            stmt.columns,
            primary_key=stmt.primary_key,
            foreign_keys=stmt.foreign_keys,
            unique_sets=stmt.unique_sets,
            checks=stmt.checks,
        )
        self.catalog.create_table(schema)
        conn.txns.record_ddl(txn, ("create_table", stmt.name), sql or schema.ddl())
        return Result()

    def _execute_create_view(self, conn: Connection, stmt: CreateViewStmt,
                             txn, sql: str | None) -> Result:
        # Dry-run the stored SELECT so bad definitions (unknown tables,
        # duplicate output names) fail at CREATE VIEW time, not first use.
        probe = conn.executor.execute_select(stmt.select)
        seen: set[str] = set()
        for label in probe.columns:
            if label in seen:
                raise CatalogError(
                    f"view {stmt.name} has duplicate output column {label}; "
                    f"alias the select items"
                )
            seen.add(label)
        ddl_text = sql or f"CREATE VIEW {stmt.name} AS <select>"
        self.catalog.create_view(stmt.name, stmt.select, ddl_text)
        txn.record(("create_view", stmt.name), {"op": "ddl", "sql": ddl_text})
        return Result()

    def _execute_drop_view(self, stmt: DropViewStmt, txn) -> Result:
        if stmt.if_exists and not self.catalog.is_view(stmt.name):
            return Result()
        select = self.catalog.view_select(stmt.name)
        ddl_text = self.catalog.view_ddl(stmt.name)
        self.catalog.drop_view(stmt.name)
        txn.record(
            ("drop_view", stmt.name, select, ddl_text),
            {"op": "ddl", "sql": f"DROP VIEW {stmt.name}"},
        )
        return Result()

    def _execute_alter_table(self, stmt: AlterTableStmt, txn, sql: str | None) -> Result:
        # Schema changes are not row-undoable; autocommit only, like DROP.
        if txn.explicit:
            raise TransactionError(
                "ALTER TABLE is not allowed inside a transaction"
            )
        table = self._writable_table(stmt.table)
        if stmt.action == "add":
            table.add_column(stmt.column)
        else:
            column = table.schema.column(stmt.column_name)
            dropped = table.drop_column(stmt.column_name)
            if column.is_datalink:
                # dropping a DATALINK column releases every linked file
                for value in dropped:
                    if value is not None:
                        self._hooks.on_remove_link(
                            stmt.table, column.name, value,
                            column.type.spec, txn,
                        )
        rendered = sql or f"ALTER TABLE {stmt.table} ..."
        txn.redo.append({"op": "ddl", "sql": rendered})
        return Result()

    def _execute_drop_table(self, stmt: DropTableStmt, txn) -> Result:
        if self.catalog.is_system_table(stmt.name):
            raise CatalogError(f"{stmt.name} is a read-only system catalog view")
        if stmt.if_exists and not self.catalog.has_table(stmt.name):
            return Result()
        table = self.catalog.table(stmt.name)
        if len(table):
            # Dropping a populated table must release datalinked files.
            for column in table.schema.datalink_columns:
                index = table.schema.column_index(column.name)
                for _rowid, row in table.scan():
                    value = row[index]
                    if value is not None:
                        self._hooks.on_remove_link(
                            stmt.name, column.name, value, column.type.spec, txn
                        )
        # DROP TABLE is not undoable row-by-row; forbid inside explicit txns.
        if txn.explicit:
            raise TransactionError("DROP TABLE is not allowed inside a transaction")
        self.catalog.drop_table(stmt.name)
        txn.redo.append({"op": "ddl", "sql": f"DROP TABLE {stmt.name}"})
        return Result()

    def _execute_create_index(self, conn: Connection, stmt: CreateIndexStmt,
                              txn, sql: str | None) -> Result:
        table = self._writable_table(stmt.table)
        index_cls = HashIndex if stmt.unique else SortedIndex
        index = index_cls(stmt.name, stmt.columns, unique=stmt.unique)
        table.add_index(index)
        self.catalog.register_index(stmt.name, stmt.table)
        rendered = sql or (
            f"CREATE {'UNIQUE ' if stmt.unique else ''}INDEX {stmt.name} "
            f"ON {stmt.table} ({', '.join(stmt.columns)})"
        )
        conn.txns.record_ddl(txn, ("create_index", stmt.name), rendered)
        return Result()

    def _execute_drop_index(self, stmt: DropIndexStmt) -> Result:
        self.catalog.drop_index(stmt.name)
        return Result()

    # -- DML -----------------------------------------------------------------------

    def _writable_table(self, name: str):
        if self.catalog.is_system_table(name):
            raise CatalogError(f"{name} is a read-only system catalog view")
        return self.catalog.table(name)

    def _execute_insert(self, conn: Connection, stmt: InsertStmt,
                        params: Sequence[Any], txn) -> Result:
        table = self._writable_table(stmt.table)
        schema = table.schema
        count = 0
        if stmt.select is not None:
            source = conn.executor.execute_select(stmt.select, params)
            value_rows: list[list[Any]] = [list(row) for row in source.rows]
        else:
            value_rows = [
                [expr.evaluate({}, params) for expr in row_exprs]
                for row_exprs in stmt.rows
            ]
        for values in value_rows:
            if stmt.columns is not None:
                full = schema.apply_defaults(stmt.columns, values)
            else:
                if len(values) != len(schema.columns):
                    raise SqlSyntaxError(
                        f"INSERT supplies {len(values)} values for "
                        f"{len(schema.columns)} columns"
                    )
                full = list(values)
            validated = schema.validate_row(full)
            self._check_foreign_keys_child(schema, validated)
            self._check_checks(schema, validated)
            for column in schema.datalink_columns:
                value = validated[schema.column_index(column.name)]
                if value is not None:
                    self._hooks.on_insert_link(
                        schema.name, column.name, value, column.type.spec, txn
                    )
            rowid, stored = table.insert(validated)
            conn.txns.record_insert(txn, schema.name, rowid, stored)
            count += 1
        return Result(rowcount=count)

    def _execute_update(self, conn: Connection, stmt: UpdateStmt,
                        params: Sequence[Any], txn) -> Result:
        table = self._writable_table(stmt.table)
        schema = table.schema
        targets = self._matching_rowids(conn, table, stmt.where, params)
        count = 0
        for rowid in targets:
            old_row = table.row(rowid)
            env = self._row_env(schema, old_row)
            new_row = list(old_row)
            for column_name, expr in stmt.assignments:
                index = schema.column_index(column_name)
                new_row[index] = expr.evaluate(env, params)
            validated = schema.validate_row(new_row)
            if validated == old_row:
                count += 1
                continue
            self._check_foreign_keys_child(schema, validated)
            self._check_foreign_keys_parent_change(schema, old_row, validated)
            self._check_checks(schema, validated)
            for column in schema.datalink_columns:
                index = schema.column_index(column.name)
                old_value, new_value = old_row[index], validated[index]
                if old_value == new_value:
                    continue
                if old_value is not None:
                    self._hooks.on_remove_link(
                        schema.name, column.name, old_value, column.type.spec, txn
                    )
                if new_value is not None:
                    self._hooks.on_insert_link(
                        schema.name, column.name, new_value, column.type.spec, txn
                    )
            old, new = table.update(rowid, validated)
            conn.txns.record_update(txn, schema.name, rowid, old, new)
            count += 1
        return Result(rowcount=count)

    def _execute_delete(self, conn: Connection, stmt: DeleteStmt,
                        params: Sequence[Any], txn) -> Result:
        table = self._writable_table(stmt.table)
        schema = table.schema
        targets = self._matching_rowids(conn, table, stmt.where, params)
        count = 0
        for rowid in targets:
            row = table.row(rowid)
            self._check_foreign_keys_parent_delete(schema, row)
            for column in schema.datalink_columns:
                value = row[schema.column_index(column.name)]
                if value is not None:
                    self._hooks.on_remove_link(
                        schema.name, column.name, value, column.type.spec, txn
                    )
            removed = table.delete(rowid)
            conn.txns.record_delete(txn, schema.name, rowid, removed)
            count += 1
        return Result(rowcount=count)

    def _matching_rowids(self, conn: Connection, table, where,
                         params: Sequence[Any]) -> list[int]:
        schema = table.schema
        if where is not None:
            # UPDATE/DELETE predicates may contain (uncorrelated) subqueries.
            conn.executor.bind_subqueries([where], params)
        candidates = self._candidate_rowids(table, where, params)
        out = []
        for rowid in candidates:
            row = table.row(rowid)
            if where is None or truthy(
                where.evaluate(self._row_env(schema, row), params)
            ):
                out.append(rowid)
        return out

    def _candidate_rowids(self, table, where, params: Sequence[Any]) -> list[int]:
        """Use an index point-lookup for ``col = constant`` predicates in
        UPDATE/DELETE, mirroring the SELECT access-path choice."""
        from repro.sqldb.planner import conjuncts, constant_equalities

        schema = table.schema
        if where is not None:
            bound: dict[str, Any] = {}
            for ref, value in constant_equalities(conjuncts(where), params):
                if ref.table is not None and ref.table != schema.name:
                    continue
                if not schema.has_column(ref.column):
                    continue
                try:
                    bound[ref.column] = schema.column(ref.column).type.validate(value)
                except Exception:
                    continue
            if bound:
                best = None
                for index in table.indexes.values():
                    if all(column in bound for column in index.columns):
                        if best is None or len(index.columns) > len(best.columns):
                            best = index
                if best is not None:
                    key = tuple(bound[column] for column in best.columns)
                    return sorted(best.find(key))
        return [rowid for rowid, _row in table.scan()]

    @staticmethod
    def _row_env(schema: TableSchema, row: tuple) -> dict[str, Any]:
        env: dict[str, Any] = {}
        for i, name in enumerate(schema.column_names):
            env[name] = row[i]
            env[f"{schema.name}.{name}"] = row[i]
        return env

    # -- constraint enforcement ---------------------------------------------------

    def _check_foreign_keys_child(self, schema: TableSchema, row: tuple) -> None:
        """Every FK value in ``row`` must have a parent (or be NULL)."""
        for fk in schema.foreign_keys:
            key = schema.key_of(row, fk.columns)
            if any(part is None for part in key):
                continue
            parent = self.catalog.table(fk.ref_table)
            index = parent.index_on(fk.ref_columns, require_unique=True)
            if index is not None:
                if index.contains(key):
                    continue
            else:  # pragma: no cover - FKs must target PK/unique, so indexed
                parent_schema = parent.schema
                if any(
                    parent_schema.key_of(prow, fk.ref_columns) == key
                    for _rid, prow in parent.scan()
                ):
                    continue
            raise ForeignKeyViolation(
                f"{schema.name}({', '.join(fk.columns)}) = {key!r} has no "
                f"matching row in {fk.ref_table}"
            )

    def _referencing_children(self, schema: TableSchema, key_columns, key: tuple):
        """Yield (child_table_name, fk) pairs that hold a reference to
        ``key`` in ``schema`` via ``key_columns``."""
        for child_name, fk in self.catalog.references_to(schema.name):
            if tuple(fk.ref_columns) != tuple(key_columns):
                continue
            child = self.catalog.table(child_name)
            index = child.index_on(fk.columns)
            if index is not None:
                if index.contains(key):
                    yield child_name, fk
            else:  # pragma: no cover - FK columns are auto-indexed
                child_schema = child.schema
                if any(
                    child_schema.key_of(crow, fk.columns) == key
                    for _rid, crow in child.scan()
                ):
                    yield child_name, fk

    def _check_foreign_keys_parent_delete(self, schema: TableSchema, row: tuple) -> None:
        """RESTRICT: a referenced parent row cannot be deleted."""
        for key_columns in [schema.primary_key, *schema.unique_sets]:
            if not key_columns:
                continue
            key = schema.key_of(row, key_columns)
            if any(part is None for part in key):
                continue
            for child_name, fk in self._referencing_children(schema, key_columns, key):
                raise ForeignKeyViolation(
                    f"cannot delete from {schema.name}: key {key!r} is "
                    f"referenced by {child_name}({', '.join(fk.columns)})"
                )

    def _check_foreign_keys_parent_change(
        self, schema: TableSchema, old_row: tuple, new_row: tuple
    ) -> None:
        """RESTRICT: a referenced key cannot be changed away from."""
        for key_columns in [schema.primary_key, *schema.unique_sets]:
            if not key_columns:
                continue
            old_key = schema.key_of(old_row, key_columns)
            new_key = schema.key_of(new_row, key_columns)
            if old_key == new_key or any(part is None for part in old_key):
                continue
            for child_name, fk in self._referencing_children(schema, key_columns, old_key):
                raise ForeignKeyViolation(
                    f"cannot update {schema.name}: key {old_key!r} is "
                    f"referenced by {child_name}({', '.join(fk.columns)})"
                )

    def _check_checks(self, schema: TableSchema, row: tuple) -> None:
        env = self._row_env(schema, row)
        for check in schema.checks:
            value = check.evaluate(env, ())
            if value is False:  # NULL passes, per SQL
                raise CheckViolation(
                    f"CHECK constraint failed on {schema.name}"
                )

    # -- SELECT -----------------------------------------------------------------------

    def _execute_union(self, stmt: UnionStmt, params: Sequence[Any],
                       pushdown: bool = True,
                       executor: Executor | None = None) -> Result:
        """UNION / UNION ALL over compatible selects.

        Column labels come from the first select; every branch must yield
        the same column count.  Plain UNION removes duplicate rows.
        """
        executor = executor if executor is not None else self._executor
        first = self._select_result(stmt.selects[0], params, pushdown, executor)
        rows = list(first.rows)
        for branch in stmt.selects[1:]:
            branch_result = self._select_result(branch, params, pushdown, executor)
            if len(branch_result.columns) != len(first.columns):
                raise SqlSyntaxError(
                    f"UNION branches have {len(first.columns)} and "
                    f"{len(branch_result.columns)} columns"
                )
            rows.extend(branch_result.rows)
        if not stmt.all_rows:
            from repro.sqldb.storage import _NullsFirstKey

            seen: set = set()
            deduped = []
            for row in rows:
                key = tuple(_NullsFirstKey((v,)) for v in row)
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            rows = deduped
        return Result(first.columns, rows, rowcount=len(rows))

    def _select_result(self, stmt: SelectStmt, params: Sequence[Any],
                       pushdown: bool, executor: Executor) -> Result:
        result = executor.execute_select(stmt, params, optimize=pushdown)
        rows = self._decorate_datalinks(result)
        return Result(result.columns, rows, rowcount=len(rows), plan=result.plan)

    def _decorate_datalinks(self, result: SelectResult) -> list[tuple]:
        """Attach access tokens (and sizes) to DATALINK values in results."""
        specs: list[Any] = []
        any_datalink = False
        for item in result.items:
            spec = None
            expr = item.expr
            if isinstance(expr, ColumnRef):
                table_name = (
                    result.alias_tables.get(expr.table)
                    if expr.table
                    else self._single_table_owner(result, expr.column)
                )
                if table_name and self.catalog.has_table(table_name):
                    schema = self.catalog.schema(table_name)
                    if schema.has_column(expr.column):
                        column = schema.column(expr.column)
                        if column.is_datalink:
                            spec = column.type.spec
                            any_datalink = True
            specs.append(spec)
        if not any_datalink:
            # Still decorate loose DatalinkValues (computed expressions).
            return result.rows
        out = []
        for row in result.rows:
            new_row = list(row)
            for i, spec in enumerate(specs):
                value = new_row[i]
                if spec is not None and isinstance(value, DatalinkValue):
                    new_row[i] = self._hooks.decorate(value, spec, self.current_user)
            out.append(tuple(new_row))
        return out

    def _single_table_owner(self, result: SelectResult, column: str) -> str | None:
        owners = [
            name
            for name in set(result.alias_tables.values())
            if self.catalog.has_table(name)
            and self.catalog.schema(name).has_column(column)
        ]
        return owners[0] if len(owners) == 1 else None

    # -- durability ----------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Serialise the full database state and truncate the WAL.

        Holds the writer lock for the duration so the snapshot captures a
        committed state with no writer mid-transaction.  Must not be
        called by a thread already holding the lock (the lock is not
        reentrant) — i.e. not from inside an explicit transaction.
        """
        if self._wal is None:
            raise RecoveryUnavailable()
        self.writer_lock.acquire()
        try:
            snapshot = {
                "ddl": self.catalog.ddl_script(),
                "indexes": self._user_indexes_ddl(),
                "tables": {
                    table.schema.name: WriteAheadLog.encode_table_rows(table.scan())
                    for table in self.catalog.tables()
                },
            }
            self._wal.write_checkpoint(snapshot)
        finally:
            self.writer_lock.release()

    def _user_indexes_ddl(self) -> list[str]:
        out = []
        for table in self.catalog.tables():
            for name, index in table.indexes.items():
                if name.startswith(("PK_", "UQ_", "IX_")):
                    continue
                unique = "UNIQUE " if index.unique else ""
                out.append(
                    f"CREATE {unique}INDEX {name} ON {table.schema.name} "
                    f"({', '.join(index.columns)})"
                )
        return out

    def _recover(self) -> None:
        """Load the checkpoint (if any) then replay the WAL.

        Replay is idempotent: v2 records carry an LSN, and any record at
        or below the checkpoint's watermark is already part of the
        snapshot, so it is skipped instead of double-applied (the crash
        window between checkpoint rename and WAL truncation).  A torn
        final record is truncated away so later appends start clean.
        """
        assert self._wal is not None
        obs = self._obs or get_observability()
        if not obs.enabled:
            self._recover_inner()
            return
        with obs.tracer.span(
            "wal.recovery", directory=self._wal.directory
        ) as span:
            self._recover_inner()
        span.set(**self.recovery_stats)
        metrics = obs.metrics
        metrics.counter("wal.recovery.runs").inc()
        metrics.counter("wal.recovery.replayed_txns").inc(
            self.recovery_stats["replayed_txns"]
        )
        metrics.counter("wal.recovery.skipped_stale").inc(
            self.recovery_stats["skipped_stale"]
        )
        if self.recovery_stats["torn_tail_bytes"]:
            metrics.counter("wal.recovery.torn_tail_bytes").inc(
                self.recovery_stats["torn_tail_bytes"]
            )
        obs.events.emit("wal.recovery", **self.recovery_stats)

    def _recover_inner(self) -> None:
        from repro.sqldb.parser import parse_script

        checkpoint = self._wal.read_checkpoint()
        if checkpoint is not None:
            for ddl_stmt in parse_script(checkpoint["ddl"]):
                self._apply_recovered_ddl(ddl_stmt)
            for index_sql in checkpoint.get("indexes", []):
                self._apply_recovered_ddl(parse_sql(index_sql))
            for table_name, entries in checkpoint["tables"].items():
                table = self.catalog.table(table_name)
                for rowid, row in WriteAheadLog.decode_table_rows(entries):
                    table.insert(row, rowid)
        watermark = self._wal.checkpoint_lsn
        replayed = skipped = 0
        for lsn, _txn_id, ops in self._wal.iter_transactions():
            if lsn is not None and lsn <= watermark:
                skipped += 1  # already captured by the checkpoint snapshot
                continue
            for op in ops:
                self._replay(op)
            replayed += 1
        torn_bytes = self._wal.repair_torn_tail()
        # Rows loaded above were stamped at the pending sequence while the
        # clock sat at 0; one commit makes the entire recovered state the
        # first committed snapshot.
        self.catalog.clock.commit()
        self.recovery_stats = {
            "replayed_txns": replayed,
            "skipped_stale": skipped,
            "torn_tail_bytes": torn_bytes,
            "checkpoint_lsn": watermark,
            "epoch": self._wal.epoch,
        }

    def _apply_recovered_ddl(self, stmt: Statement, sql_text: str | None = None) -> None:
        if isinstance(stmt, CreateViewStmt):
            self.catalog.create_view(
                stmt.name,
                stmt.select,
                sql_text or f"CREATE VIEW {stmt.name} AS <select>",
            )
            return
        if isinstance(stmt, DropViewStmt):
            if self.catalog.is_view(stmt.name):
                self.catalog.drop_view(stmt.name)
            return
        if isinstance(stmt, AlterTableStmt):
            table = self.catalog.table(stmt.table)
            if stmt.action == "add":
                table.add_column(stmt.column)
            else:
                table.drop_column(stmt.column_name)
            return
        if isinstance(stmt, CreateTableStmt):
            schema = TableSchema(
                stmt.name,
                stmt.columns,
                primary_key=stmt.primary_key,
                foreign_keys=stmt.foreign_keys,
                unique_sets=stmt.unique_sets,
                checks=stmt.checks,
            )
            self.catalog.create_table(schema)
        elif isinstance(stmt, CreateIndexStmt):
            table = self.catalog.table(stmt.table)
            index_cls = HashIndex if stmt.unique else SortedIndex
            table.add_index(index_cls(stmt.name, stmt.columns, unique=stmt.unique))
            self.catalog.register_index(stmt.name, stmt.table)
        elif isinstance(stmt, DropTableStmt):
            if self.catalog.has_table(stmt.name):
                self.catalog.drop_table(stmt.name)
        elif isinstance(stmt, DropIndexStmt):
            self.catalog.drop_index(stmt.name)
        else:  # pragma: no cover - only DDL reaches here
            raise CatalogError(f"unexpected recovered statement {stmt}")

    def _replay(self, op: dict) -> None:
        kind = op["op"]
        if kind == "ddl":
            self._apply_recovered_ddl(parse_sql(op["sql"]), op["sql"])
            return
        table = self.catalog.table(op["table"])
        if kind == "insert":
            table.insert(op["row"], op["rowid"])
        elif kind == "delete":
            table.delete(op["rowid"])
        elif kind == "update":
            table.update(op["rowid"], op["row"])
        else:  # pragma: no cover - defensive
            raise CatalogError(f"unknown WAL op {kind!r}")

    # -- introspection ----------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._txns.in_explicit_transaction

    def table_names(self) -> list[str]:
        return self.catalog.table_names()


class RecoveryUnavailable(TransactionError):
    def __init__(self) -> None:
        super().__init__("checkpoint requires a durable (directory-backed) database")


class _TransactionContext:
    def __init__(self, db: Database) -> None:
        self._db = db

    def __enter__(self) -> Database:
        self._db.execute("BEGIN")
        return self._db

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._db.execute("COMMIT")
        else:
            if self._db.in_transaction:
                self._db.execute("ROLLBACK")
        return False
