"""SELECT execution: scans, index lookups, joins, grouping and ordering.

The executor materialises joined row *environments* (dicts mapping
``ALIAS.COLUMN`` — plus unambiguous bare column names — to values) and
evaluates expressions against them.  This keeps evaluation uniform between
WHERE clauses, join conditions, select items, CHECK constraints and the
operations layer's XUIS ``<condition>`` elements, which reuse the same
expression engine.

Planning is cost-aware where it matters for the EASIA workloads:

* WHERE conjuncts are *pushed down* to the earliest pipeline position
  whose tables cover their columns, so scans and early joins filter rows
  instead of the full join product being filtered at the end;
* equi-joins with no usable index run as **hash joins** (build on the
  inner side, probe with the outer stream) instead of O(n·m) nested loops;
* inequality / BETWEEN / LIKE-prefix predicates drive
  :meth:`SortedIndex.range_scan` instead of forcing sequential scans;
* ``ORDER BY ... LIMIT k`` keeps a **top-N heap** instead of sorting the
  full result, and ``LIMIT`` without ORDER BY stops producing rows early;
* DISTINCT deduplicates through a hash set, and uncorrelated IN
  subqueries are hashed semi-joins (see :mod:`repro.sqldb.expressions`).

Every operator announces itself in the ``plan`` list (EXPLAIN) and counts
rows through :class:`_StepStats` under EXPLAIN ANALYZE.  Passing
``optimize=False`` (the ``pushdown=off`` escape hatch on
``Database.execute``) disables all of the above and runs the naive
nested-loop / filter-at-the-end path, which the differential tests compare
against.
"""

from __future__ import annotations

from heapq import nsmallest
from itertools import islice
from time import perf_counter
from typing import Any, Callable, Iterator, Sequence

from repro.errors import CatalogError, SqlSyntaxError
from repro.sqldb.expressions import (
    AggregateCall,
    ColumnRef,
    ExistsSubquery,
    Expression,
    InSubquery,
    Star,
    Subquery,
    hash_key,
    truthy,
)
from repro.sqldb.parser.ast_nodes import Join, SelectItem, SelectStmt, TableRef
from repro.sqldb.planner import (
    assign_filters,
    conjuncts,
    constant_equalities,
    describe,
    join_equalities,
    range_bounds,
    single_alias_filters,
)
from repro.sqldb.storage import SortedIndex, _NullsFirstKey

__all__ = ["Executor", "SelectResult"]


class SelectResult:
    """Materialised result of a SELECT: column names plus row tuples."""

    def __init__(
        self,
        columns: list[str],
        rows: list[tuple],
        plan: list[str],
        items: list[SelectItem] | None = None,
        alias_tables: dict[str, str] | None = None,
        step_stats: "dict[int, _StepStats] | None" = None,
    ) -> None:
        self.columns = columns
        self.rows = rows
        #: access-path descriptions, surfaced through Database.explain()
        self.plan = plan
        #: expanded select items (stars resolved); lets the database layer
        #: map output columns back to source table columns (for DATALINK
        #: token decoration and the web layer's browse links)
        self.items = items or []
        #: FROM-clause alias -> real table name
        self.alias_tables = alias_tables or {}
        #: plan-index -> measured rows/seconds, populated by EXPLAIN ANALYZE
        self.step_stats = step_stats


class _StepStats:
    """Measured output of one plan step under EXPLAIN ANALYZE.

    ``seconds`` is cumulative: pulling a row from step N drives every step
    upstream of it, so each entry reports the time spent producing that
    step's output including its inputs."""

    __slots__ = ("rows", "seconds")

    def __init__(self) -> None:
        self.rows = 0
        self.seconds = 0.0


def _timed_iter(iterator: Iterator, stats: _StepStats) -> Iterator:
    """Count rows and accumulate the time spent inside ``next()``."""
    iterator = iter(iterator)
    while True:
        started = perf_counter()
        try:
            item = next(iterator)
        except StopIteration:
            stats.seconds += perf_counter() - started
            return
        stats.seconds += perf_counter() - started
        stats.rows += 1
        yield item


class _BoundTable:
    """A FROM-clause entry resolved against the catalog."""

    __slots__ = ("alias", "table", "schema", "join_kind", "join_on")

    def __init__(self, alias: str, table, join_kind: str | None = None,
                 join_on: Expression | None = None) -> None:
        self.alias = alias
        self.table = table
        self.schema = table.schema
        self.join_kind = join_kind  # None for the first table / cross joins
        self.join_on = join_on


class Executor:
    def __init__(self, catalog) -> None:
        self._catalog = catalog
        self._expanding_views: set[str] = set()
        #: view name -> materialised transient Table, valid for the duration
        #: of one top-level statement (a self-joined or re-referenced view
        #: runs its stored SELECT once, not per reference)
        self._view_cache: dict[str, Any] = {}
        self._depth = 0
        #: statement-level optimiser switch, set on execute_select entry;
        #: view materialisation and subquery execution inherit it
        self._optimize = True
        #: lifetime count of rows examined by scans and lookups (including
        #: view materialisation and subqueries); the database layer
        #: snapshots deltas around each statement for metrics
        self.rows_scanned = 0
        #: lifetime count of rows removed by pushed-down filters before the
        #: end of the join pipeline (obs: sqldb.scan.pushdown_filtered)
        self.pushdown_filtered = 0
        #: lifetime count of rows hashed into join build tables
        #: (obs: sqldb.join.hash_build_rows)
        self.hash_build_rows = 0
        #: lifetime count of view SELECTs actually executed (cache misses)
        self.view_materialisations = 0

    # -- public ----------------------------------------------------------------

    def execute_select(
        self, stmt: SelectStmt, params: Sequence[Any] = (),
        analyze: bool = False, optimize: bool = True,
    ) -> SelectResult:
        if self._depth == 0:
            self._optimize = optimize
        optimize = self._optimize
        self._depth += 1
        try:
            return self._execute_select(stmt, params, analyze, optimize)
        finally:
            self._depth -= 1
            if self._depth == 0:
                self._view_cache.clear()

    def _execute_select(
        self, stmt: SelectStmt, params: Sequence[Any],
        analyze: bool, optimize: bool,
    ) -> SelectResult:
        plan: list[str] = []
        step_stats: dict[int, _StepStats] | None = None
        instrument: Callable[[Iterator[dict]], Iterator[dict]] | None = None
        if analyze:
            step_stats = {}

            def instrument(envs: Iterator[dict]) -> Iterator[dict]:
                """Attach a timing probe to the plan entry appended last."""
                stats = _StepStats()
                step_stats[len(plan) - 1] = stats
                return _timed_iter(envs, stats)

        self.bind_subqueries(
            self._statement_expressions(stmt), params,
            plan=plan if optimize else None,
        )
        bound = self._bind_tables(stmt)

        where_conjuncts = conjuncts(stmt.where)
        if bound:
            unambiguous = self._unambiguous_columns(bound)
            if optimize:
                stage_filters, residual = assign_filters(
                    where_conjuncts, [b.alias for b in bound], unambiguous
                )
            else:
                stage_filters = [[] for _ in bound]
                residual = where_conjuncts
            envs = self._produce_envs(
                stmt, bound, unambiguous, params, plan, instrument,
                optimize, stage_filters,
            )
        else:
            # SELECT without FROM: a single empty environment.
            envs = iter([{}])
            residual = where_conjuncts
            plan.append("no FROM clause: single empty row")
            if instrument is not None:
                envs = instrument(envs)

        if residual:
            envs = (
                env for env in envs
                if all(truthy(p.evaluate(env, params)) for p in residual)
            )

        items = self._expand_items(stmt, bound)
        grouped = bool(stmt.group_by) or any(
            item.expr is not None and item.expr.contains_aggregate()
            for item in items
        ) or (stmt.having is not None and stmt.having.contains_aggregate())

        if grouped:
            # GROUP BY may name a select-list alias, like ORDER BY.
            alias_exprs = {
                item.alias: item.expr for item in items if item.alias
            }
            group_exprs = []
            for expr in stmt.group_by:
                if (
                    isinstance(expr, ColumnRef)
                    and expr.table is None
                    and expr.column in alias_exprs
                ):
                    expr = alias_exprs[expr.column]
                group_exprs.append(expr)
            envs = self._group(stmt, items, envs, params, group_exprs)
            plan.append(
                f"hash aggregate on {len(stmt.group_by)} grouping expression(s)"
            )
            if instrument is not None:
                envs = instrument(envs)
        elif stmt.having is not None:
            raise SqlSyntaxError("HAVING requires GROUP BY or aggregates")

        columns = [self._item_label(item, i) for i, item in enumerate(items)]
        evaluated: Iterator[tuple[dict, tuple]] = (
            (env, tuple(item.expr.evaluate(env, params) for item in items))
            for env in envs
        )

        if stmt.distinct:
            plan.append("distinct (hash)")
            evaluated = self._distinct(evaluated)
            if instrument is not None:
                evaluated = _timed_iter(evaluated, self._stats_slot(step_stats, plan))

        offset = stmt.offset or 0
        if stmt.order_by:
            order_key = self._order_key(stmt, items, params)
            if optimize and stmt.limit is not None:
                top = stmt.limit + offset
                plan.append(
                    f"top-N sort (N={top}) on "
                    f"{len(stmt.order_by)} key(s)"
                )
                started = perf_counter()
                output = nsmallest(top, evaluated, key=order_key)
                self._record_step(step_stats, plan, len(output),
                                  perf_counter() - started)
            else:
                plan.append(f"sort on {len(stmt.order_by)} key(s)")
                started = perf_counter()
                output = sorted(evaluated, key=order_key)
                self._record_step(step_stats, plan, len(output),
                                  perf_counter() - started)
            rows = [row for _env, row in output]
            rows = rows[offset:]
            if stmt.limit is not None:
                rows = rows[: stmt.limit]
        elif optimize and stmt.limit is not None:
            plan.append(f"limit {stmt.limit} (early stop)")
            rows = [
                row for _env, row in islice(
                    evaluated, offset, offset + stmt.limit
                )
            ]
            self._record_step(step_stats, plan, len(rows), 0.0)
        else:
            rows = [row for _env, row in evaluated]
            rows = rows[offset:]
            if stmt.limit is not None:
                rows = rows[: stmt.limit]

        alias_tables = {b.alias: b.schema.name for b in bound}
        return SelectResult(
            columns, rows, plan, items, alias_tables, step_stats=step_stats
        )

    # -- result-shaping helpers -------------------------------------------------

    @staticmethod
    def _stats_slot(step_stats, plan: list[str]) -> _StepStats:
        stats = _StepStats()
        if step_stats is not None:
            step_stats[len(plan) - 1] = stats
        return stats

    @staticmethod
    def _record_step(step_stats, plan: list[str], rows: int,
                     seconds: float) -> None:
        if step_stats is None:
            return
        stats = _StepStats()
        stats.rows = rows
        stats.seconds = seconds
        step_stats[len(plan) - 1] = stats

    @staticmethod
    def _distinct(
        evaluated: Iterator[tuple[dict, tuple]]
    ) -> Iterator[tuple[dict, tuple]]:
        """Set-based DISTINCT over hashable NULLs-first keys (O(n), not the
        quadratic list-membership scan)."""
        seen: set[tuple] = set()
        for env, row in evaluated:
            key = tuple(_NullsFirstKey((v,)) for v in row)
            if key not in seen:
                seen.add(key)
                yield env, row

    def _order_key(self, stmt: SelectStmt, items: list[SelectItem],
                   params: Sequence[Any]):
        # ORDER BY may name a select-list alias (ORDER BY n for
        # "COUNT(*) AS n"); resolve those to the aliased expression.
        alias_exprs = {item.alias: item.expr for item in items if item.alias}
        order_exprs = []
        for order in stmt.order_by:
            expr = order.expr
            if (
                isinstance(expr, ColumnRef)
                and expr.table is None
                and expr.column in alias_exprs
            ):
                expr = alias_exprs[expr.column]
            order_exprs.append((expr, order.ascending))

        def order_key(pair):
            env, _row = pair
            return tuple(
                _SortPart(
                    _NullsFirstKey((expr.evaluate(env, params),)),
                    ascending,
                )
                for expr, ascending in order_exprs
            )

        return order_key

    # -- subquery materialisation ---------------------------------------------

    @staticmethod
    def _statement_expressions(stmt: SelectStmt) -> list[Expression]:
        out: list[Expression] = []
        for item in stmt.items:
            if item.expr is not None:
                out.append(item.expr)
        for join in stmt.joins:
            if join.on is not None:
                out.append(join.on)
        if stmt.where is not None:
            out.append(stmt.where)
        out.extend(stmt.group_by)
        if stmt.having is not None:
            out.append(stmt.having)
        out.extend(order.expr for order in stmt.order_by)
        return out

    def bind_subqueries(
        self, exprs: list[Expression], params: Sequence[Any],
        plan: list[str] | None = None,
    ) -> None:
        """Materialise every (uncorrelated) subquery once per execution.

        Nested subqueries are handled by the recursive execute_select call;
        a correlated subquery surfaces as an unknown-column error from its
        standalone execution.  When a ``plan`` list is supplied, IN/EXISTS
        materialisations announce themselves (the hashed semi-join path).
        """
        for expr in exprs:
            for node in expr.walk():
                if isinstance(node, (Subquery, InSubquery, ExistsSubquery)):
                    result = self.execute_select(node.select, params)
                    node.bind(result.rows)
                    if plan is None:
                        continue
                    if isinstance(node, InSubquery):
                        plan.append(
                            f"hashed semi-join: IN (subquery) with "
                            f"{len(result.rows)} key(s)"
                        )
                    elif isinstance(node, ExistsSubquery):
                        plan.append(
                            f"semi-join: EXISTS (subquery), "
                            f"{len(result.rows)} row(s)"
                        )

    # -- binding ------------------------------------------------------------------

    def _bind_tables(self, stmt: SelectStmt) -> list[_BoundTable]:
        bound: list[_BoundTable] = []
        seen_aliases: set[str] = set()

        def bind(ref: TableRef, kind: str | None, on: Expression | None) -> None:
            if ref.alias in seen_aliases:
                raise CatalogError(f"duplicate table alias {ref.alias}")
            seen_aliases.add(ref.alias)
            bound.append(
                _BoundTable(ref.alias, self._resolve_relation(ref.name), kind, on)
            )

        for i, ref in enumerate(stmt.tables):
            bind(ref, None if i == 0 else "CROSS", None)
        for join in stmt.joins:
            bind(join.table, join.kind, join.on)
        return bound

    def _resolve_relation(self, name: str):
        """A FROM-clause name is either a base table or a view; views are
        materialised into a transient table by running their stored SELECT
        (once per statement — repeated references hit ``_view_cache``)."""
        name = name.upper()
        if not self._catalog.is_view(name):
            return self._catalog.table(name)
        cached = self._view_cache.get(name)
        if cached is not None:
            return cached
        if name in self._expanding_views:
            raise CatalogError(f"view {name} is recursively defined")
        from repro.sqldb.schema import Column, TableSchema
        from repro.sqldb.types import AnyType

        self._expanding_views.add(name)
        try:
            result = self.execute_select(self._catalog.view_select(name))
        finally:
            self._expanding_views.discard(name)
        seen: set[str] = set()
        columns = []
        for label in result.columns:
            if label in seen:
                raise CatalogError(
                    f"view {name} has duplicate output column {label}; "
                    f"alias the select items"
                )
            seen.add(label)
            columns.append(Column(label, AnyType()))
        from repro.sqldb.storage import Table

        table = Table(TableSchema(name, columns))
        for row in result.rows:
            table.insert(row)
        self.view_materialisations += 1
        self._view_cache[name] = table
        return table

    @staticmethod
    def _unambiguous_columns(bound: list[_BoundTable]) -> dict[str, str]:
        """Map bare column name -> owning alias when unique across tables."""
        counts: dict[str, list[str]] = {}
        for entry in bound:
            for name in entry.schema.column_names:
                counts.setdefault(name, []).append(entry.alias)
        return {
            name: aliases[0]
            for name, aliases in counts.items()
            if len(aliases) == 1
        }

    # -- row production --------------------------------------------------------------

    def _produce_envs(
        self,
        stmt: SelectStmt,
        bound: list[_BoundTable],
        unambiguous: dict[str, str],
        params: Sequence[Any],
        plan: list[str],
        instrument: Callable[[Iterator[dict]], Iterator[dict]] | None,
        optimize: bool,
        stage_filters: list[list[Expression]],
    ) -> Iterator[dict]:
        where_conjuncts = conjuncts(stmt.where)
        equalities = constant_equalities(where_conjuncts, params)
        ranges = range_bounds(where_conjuncts, params) if optimize else []

        def env_for(entry: _BoundTable, row: tuple | None) -> dict:
            env: dict[str, Any] = {}
            for i, name in enumerate(entry.schema.column_names):
                value = None if row is None else row[i]
                env[f"{entry.alias}.{name}"] = value
                if unambiguous.get(name) == entry.alias:
                    env[name] = value
            return env

        first = bound[0]
        base_rows = self._access_path(first, equalities, ranges, plan, optimize)
        envs: Iterator[dict] = (env_for(first, row) for row in base_rows)
        if instrument is not None:
            envs = instrument(envs)
        envs = self._pushed_filters(
            envs, stage_filters[0], first.alias, params, plan, instrument
        )

        for position, entry in enumerate(bound[1:], start=1):
            filters = stage_filters[position]
            inner_only: list[Expression] = []
            kind = entry.join_kind or "CROSS"
            if optimize and filters and kind != "LEFT":
                inner_only, filters = single_alias_filters(
                    filters, entry.alias, unambiguous
                )
            envs = self._join_one(
                entry, envs, env_for, params, plan, optimize, inner_only
            )
            if instrument is not None:
                envs = instrument(envs)
            envs = self._pushed_filters(
                envs, filters, entry.alias, params, plan, instrument
            )
        return envs

    def _pushed_filters(
        self,
        envs: Iterator[dict],
        filters: list[Expression],
        alias: str,
        params: Sequence[Any],
        plan: list[str],
        instrument: Callable[[Iterator[dict]], Iterator[dict]] | None,
    ) -> Iterator[dict]:
        """Apply pushed-down WHERE conjuncts right after ``alias`` joins the
        pipeline, counting removed rows for the obs layer."""
        if not filters:
            return envs
        plan.append(
            f"filter pushdown at {alias}: "
            + " AND ".join(describe(f) for f in filters)
        )

        def generate() -> Iterator[dict]:
            for env in envs:
                if all(truthy(f.evaluate(env, params)) for f in filters):
                    yield env
                else:
                    self.pushdown_filtered += 1

        out: Iterator[dict] = generate()
        if instrument is not None:
            out = instrument(out)
        return out

    def _access_path(
        self,
        entry: _BoundTable,
        equalities: list[tuple[ColumnRef, Any]],
        ranges,
        plan: list[str],
        optimize: bool,
    ) -> Iterator[tuple]:
        """Choose index point-lookup, range scan or sequential scan for a
        base table.

        Collects every ``column = constant`` binding on this table, then
        looks for an index whose full key is covered — so composite
        primary keys (FILE_NAME, SIMULATION_KEY) get point lookups too.
        Failing that, a single-column sorted index whose column carries a
        range bound drives :meth:`SortedIndex.range_scan`; the originating
        predicate remains as a pushed filter, so the range is free to be a
        superset of the matching rows.
        """
        bound: dict[str, Any] = {}
        for ref, value in equalities:
            if not self._ref_on(entry, ref):
                continue
            try:
                bound[ref.column] = entry.schema.column(
                    ref.column
                ).type.validate(value)
            except Exception:
                continue  # incomparable constant: not usable for a lookup

        if bound:
            best = None
            for index in entry.table.indexes.values():
                if all(column in bound for column in index.columns):
                    if best is None or len(index.columns) > len(best.columns):
                        best = index
            if best is not None:
                key = tuple(bound[column] for column in best.columns)
                plan.append(
                    f"index lookup {entry.alias} via {best.name} "
                    f"({', '.join(best.columns)} = {key!r})"
                )
                rows = [
                    entry.table.row(rowid) for rowid in best.find_sorted(key)
                ]
                self.rows_scanned += len(rows)
                return iter(rows)

        if optimize:
            scan = self._range_scan(entry, ranges, plan)
            if scan is not None:
                return scan

        plan.append(f"seq scan {entry.alias} ({len(entry.table)} rows)")
        self.rows_scanned += len(entry.table)
        return (row for _rowid, row in entry.table.scan())

    def _range_scan(self, entry: _BoundTable, ranges,
                    plan: list[str]) -> Iterator[tuple] | None:
        """A sorted-index range scan for the first usable range bound."""
        for crange in ranges:
            ref = crange.ref
            if not self._ref_on(entry, ref):
                continue
            column_type = entry.schema.column(ref.column).type
            index = None
            for candidate in entry.table.indexes.values():
                if (
                    isinstance(candidate, SortedIndex)
                    and candidate.columns == (ref.column,)
                ):
                    index = candidate
                    break
            if index is None:
                continue
            try:
                low = (
                    (column_type.validate(crange.low),)
                    if crange.low is not None else None
                )
                high = (
                    (column_type.validate(crange.high),)
                    if crange.high is not None else None
                )
            except Exception:
                continue  # bound not comparable with the column type
            rowids = index.range_scan(
                low, high,
                include_low=crange.include_low,
                include_high=crange.include_high,
            )
            plan.append(
                f"range scan {entry.alias} via {index.name} "
                f"({crange.describe()})"
            )
            self.rows_scanned += len(rowids)
            return iter([entry.table.row(rowid) for rowid in rowids])
        return None

    @staticmethod
    def _ref_on(entry: _BoundTable, ref: ColumnRef) -> bool:
        """Whether a (possibly bare) column reference addresses ``entry``."""
        if ref.table is not None and ref.table != entry.alias:
            return False
        if not entry.schema.has_column(ref.column):
            return False
        return True

    # -- joins -----------------------------------------------------------------

    def _join_one(
        self,
        entry: _BoundTable,
        outer_envs: Iterator[dict],
        env_for,
        params: Sequence[Any],
        plan: list[str],
        optimize: bool,
        inner_filters: list[Expression],
    ) -> Iterator[dict]:
        kind = entry.join_kind or "CROSS"
        keys = join_equalities(entry.join_on, entry.alias) if entry.join_on else []
        index = None
        key_pair = None
        for outer_ref, inner_ref in keys:
            candidate = entry.table.index_leading_on(inner_ref.column)
            if candidate is not None:
                index = candidate
                key_pair = (outer_ref, inner_ref)
                break
        if index is not None:
            filter_desc = (
                "; inner filter: "
                + " AND ".join(describe(f) for f in inner_filters)
                if inner_filters else ""
            )
            plan.append(
                f"index nested-loop join {entry.alias} via {index.name}"
                f"{filter_desc}"
            )
            return self._index_join(entry, outer_envs, env_for, params,
                                    index, key_pair, kind, inner_filters)
        if optimize and keys:
            return self._hash_join(entry, outer_envs, env_for, params,
                                   keys, kind, inner_filters, plan)
        return self._loop_join(entry, outer_envs, env_for, params,
                               kind, inner_filters, plan)

    def _index_join(self, entry, outer_envs, env_for, params,
                    index, key_pair, kind,
                    inner_filters: list[Expression]) -> Iterator[dict]:
        def generate() -> Iterator[dict]:
            for outer_env in outer_envs:
                matched = False
                outer_ref, _inner_ref = key_pair
                value = outer_ref.evaluate(outer_env, params)
                candidates = (
                    [entry.table.row(rowid)
                     for rowid in index.find_sorted((value,))]
                    if value is not None
                    else []
                )
                self.rows_scanned += len(candidates)
                for row in candidates:
                    inner_env = env_for(entry, row)
                    if inner_filters and not all(
                        truthy(f.evaluate(inner_env, params))
                        for f in inner_filters
                    ):
                        self.pushdown_filtered += 1
                        continue
                    env = {**outer_env, **inner_env}
                    if entry.join_on is not None and not truthy(
                        entry.join_on.evaluate(env, params)
                    ):
                        continue
                    matched = True
                    yield env
                if kind == "LEFT" and not matched:
                    yield {**outer_env, **env_for(entry, None)}

        return generate()

    def _hash_join(self, entry, outer_envs, env_for, params,
                   keys, kind, inner_filters, plan) -> Iterator[dict]:
        """Build a hash table on the inner table, probe with the outer
        stream.  The full join condition is re-checked on every hash match
        (residual), so extra non-equality conjuncts and hash-normalisation
        edge cases cannot produce wrong rows."""
        inner_refs = [inner for _outer, inner in keys]
        outer_refs = [outer for outer, _inner in keys]

        def generate() -> Iterator[dict]:
            build: dict[tuple, list[dict]] = {}
            built = 0
            self.rows_scanned += len(entry.table)
            for _rowid, row in entry.table.scan():
                inner_env = env_for(entry, row)
                if inner_filters and not all(
                    truthy(f.evaluate(inner_env, params))
                    for f in inner_filters
                ):
                    self.pushdown_filtered += 1
                    continue
                values = [ref.evaluate(inner_env, params) for ref in inner_refs]
                if any(v is None for v in values):
                    continue  # NULL keys never equal anything
                build.setdefault(
                    tuple(hash_key(v) for v in values), []
                ).append(inner_env)
                built += 1
            self.hash_build_rows += built
            for outer_env in outer_envs:
                matched = False
                values = [
                    ref.evaluate(outer_env, params) for ref in outer_refs
                ]
                if any(v is None for v in values):
                    candidates = []
                else:
                    candidates = build.get(
                        tuple(hash_key(v) for v in values), []
                    )
                for inner_env in candidates:
                    env = {**outer_env, **inner_env}
                    if entry.join_on is not None and not truthy(
                        entry.join_on.evaluate(env, params)
                    ):
                        continue
                    matched = True
                    yield env
                if kind == "LEFT" and not matched:
                    yield {**outer_env, **env_for(entry, None)}

        key_desc = ", ".join(
            f"{outer.key} = {inner.key}" for outer, inner in keys
        )
        filter_desc = (
            "; build filter: " + " AND ".join(describe(f) for f in inner_filters)
            if inner_filters else ""
        )
        plan.append(
            f"hash join {entry.alias} on {key_desc} "
            f"({kind.lower()}{filter_desc})"
        )
        return generate()

    def _loop_join(self, entry, outer_envs, env_for, params,
                   kind, inner_filters, plan) -> Iterator[dict]:
        filter_desc = (
            "; inner filter: " + " AND ".join(describe(f) for f in inner_filters)
            if inner_filters else ""
        )
        plan.append(
            f"nested-loop join {entry.alias} ({kind.lower()}{filter_desc})"
        )

        def generate() -> Iterator[dict]:
            inner_envs: list[dict] = []
            for _rowid, row in entry.table.scan():
                inner_env = env_for(entry, row)
                if inner_filters and not all(
                    truthy(f.evaluate(inner_env, params))
                    for f in inner_filters
                ):
                    self.pushdown_filtered += 1
                    continue
                inner_envs.append(inner_env)
            for outer_env in outer_envs:
                matched = False
                self.rows_scanned += len(inner_envs)
                for inner_env in inner_envs:
                    env = {**outer_env, **inner_env}
                    if entry.join_on is not None and not truthy(
                        entry.join_on.evaluate(env, params)
                    ):
                        continue
                    matched = True
                    yield env
                if kind == "LEFT" and not matched:
                    yield {**outer_env, **env_for(entry, None)}

        return generate()

    # -- select list ---------------------------------------------------------------------

    def _expand_items(self, stmt: SelectStmt, bound: list[_BoundTable]) -> list[SelectItem]:
        items: list[SelectItem] = []
        for item in stmt.items:
            if not item.is_star:
                items.append(item)
                continue
            targets = bound
            if item.star_table is not None:
                targets = [b for b in bound if b.alias == item.star_table]
                if not targets:
                    raise CatalogError(f"unknown table {item.star_table} in select list")
            if not targets:
                raise SqlSyntaxError("'*' requires a FROM clause")
            for entry in targets:
                for name in entry.schema.column_names:
                    items.append(
                        SelectItem(ColumnRef(name, table=entry.alias), alias=name)
                    )
        return items

    @staticmethod
    def _item_label(item: SelectItem, position: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ColumnRef):
            return item.expr.column
        if isinstance(item.expr, AggregateCall):
            return item.expr.name
        return f"EXPR{position + 1}"

    # -- grouping -------------------------------------------------------------------------

    def _group(
        self,
        stmt: SelectStmt,
        items: list[SelectItem],
        envs: Iterator[dict],
        params: Sequence[Any],
        group_exprs: list[Expression] | None = None,
    ) -> Iterator[dict]:
        if group_exprs is None:
            group_exprs = list(stmt.group_by)
        aggregates: list[AggregateCall] = []
        for item in items:
            for node in item.expr.walk():
                if isinstance(node, AggregateCall):
                    aggregates.append(node)
        if stmt.having is not None:
            for node in stmt.having.walk():
                if isinstance(node, AggregateCall):
                    aggregates.append(node)
        # De-duplicate by key so COUNT(*) appearing twice folds once.
        unique_aggs: dict[str, AggregateCall] = {}
        for agg in aggregates:
            unique_aggs.setdefault(agg.key, agg)

        groups: dict[tuple, dict] = {}
        for env in envs:
            key_values = tuple(
                expr.evaluate(env, params) for expr in group_exprs
            )
            key = tuple(_NullsFirstKey((v,)) for v in key_values)
            group = groups.get(key)
            if group is None:
                group = {"env": env, "inputs": {k: [] for k in unique_aggs}}
                groups[key] = group
            for agg_key, agg in unique_aggs.items():
                if isinstance(agg.arg, Star):
                    group["inputs"][agg_key].append(1)
                else:
                    value = agg.arg.evaluate(env, params)
                    if value is not None:
                        group["inputs"][agg_key].append(value)

        if not groups and not stmt.group_by:
            # Aggregate over an empty input still yields one row.
            groups[()] = {"env": {}, "inputs": {k: [] for k in unique_aggs}}

        def generate() -> Iterator[dict]:
            for group in groups.values():
                env = dict(group["env"])
                for agg_key, agg in unique_aggs.items():
                    env[agg_key] = agg.accumulate(group["inputs"][agg_key])
                if stmt.having is not None and not truthy(
                    stmt.having.evaluate(env, params)
                ):
                    continue
                yield env

        return generate()


class _SortPart:
    """Sort key element honouring ASC/DESC with NULLs-first semantics."""

    __slots__ = ("key", "ascending")

    def __init__(self, key: _NullsFirstKey, ascending: bool) -> None:
        self.key = key
        self.ascending = ascending

    def __lt__(self, other: "_SortPart") -> bool:
        if self.key == other.key:
            return False
        less = self.key < other.key
        return less if self.ascending else not less

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortPart) and self.key == other.key


def unqualified_is_ambiguous(entry: _BoundTable, column: str) -> bool:
    """Used by the access-path chooser: a bare column in WHERE can only
    drive an index on ``entry`` when it belongs to that table."""
    return not entry.schema.has_column(column)
