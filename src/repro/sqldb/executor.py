"""SELECT execution: scans, index lookups, joins, grouping and ordering.

The executor materialises joined row *environments* (dicts mapping
``ALIAS.COLUMN`` — plus unambiguous bare column names — to values) and
evaluates expressions against them.  This keeps evaluation uniform between
WHERE clauses, join conditions, select items, CHECK constraints and the
operations layer's XUIS ``<condition>`` elements, which reuse the same
expression engine.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Iterator, Sequence

from repro.errors import CatalogError, SqlSyntaxError
from repro.sqldb.expressions import (
    AggregateCall,
    ColumnRef,
    ExistsSubquery,
    Expression,
    InSubquery,
    Star,
    Subquery,
    truthy,
)
from repro.sqldb.parser.ast_nodes import Join, SelectItem, SelectStmt, TableRef
from repro.sqldb.planner import conjuncts, constant_equalities, join_equalities
from repro.sqldb.storage import _NullsFirstKey

__all__ = ["Executor", "SelectResult"]


class SelectResult:
    """Materialised result of a SELECT: column names plus row tuples."""

    def __init__(
        self,
        columns: list[str],
        rows: list[tuple],
        plan: list[str],
        items: list[SelectItem] | None = None,
        alias_tables: dict[str, str] | None = None,
        step_stats: "dict[int, _StepStats] | None" = None,
    ) -> None:
        self.columns = columns
        self.rows = rows
        #: access-path descriptions, surfaced through Database.explain()
        self.plan = plan
        #: expanded select items (stars resolved); lets the database layer
        #: map output columns back to source table columns (for DATALINK
        #: token decoration and the web layer's browse links)
        self.items = items or []
        #: FROM-clause alias -> real table name
        self.alias_tables = alias_tables or {}
        #: plan-index -> measured rows/seconds, populated by EXPLAIN ANALYZE
        self.step_stats = step_stats


class _StepStats:
    """Measured output of one plan step under EXPLAIN ANALYZE.

    ``seconds`` is cumulative: pulling a row from step N drives every step
    upstream of it, so each entry reports the time spent producing that
    step's output including its inputs."""

    __slots__ = ("rows", "seconds")

    def __init__(self) -> None:
        self.rows = 0
        self.seconds = 0.0


def _timed_iter(iterator: Iterator, stats: _StepStats) -> Iterator:
    """Count rows and accumulate the time spent inside ``next()``."""
    iterator = iter(iterator)
    while True:
        started = perf_counter()
        try:
            item = next(iterator)
        except StopIteration:
            stats.seconds += perf_counter() - started
            return
        stats.seconds += perf_counter() - started
        stats.rows += 1
        yield item


class _BoundTable:
    """A FROM-clause entry resolved against the catalog."""

    __slots__ = ("alias", "table", "schema", "join_kind", "join_on")

    def __init__(self, alias: str, table, join_kind: str | None = None,
                 join_on: Expression | None = None) -> None:
        self.alias = alias
        self.table = table
        self.schema = table.schema
        self.join_kind = join_kind  # None for the first table / cross joins
        self.join_on = join_on


class Executor:
    def __init__(self, catalog) -> None:
        self._catalog = catalog
        self._expanding_views: set[str] = set()
        #: lifetime count of rows examined by scans and lookups (including
        #: view materialisation and subqueries); the database layer
        #: snapshots deltas around each statement for metrics
        self.rows_scanned = 0

    # -- public ----------------------------------------------------------------

    def execute_select(
        self, stmt: SelectStmt, params: Sequence[Any] = (),
        analyze: bool = False,
    ) -> SelectResult:
        self.bind_subqueries(self._statement_expressions(stmt), params)
        bound = self._bind_tables(stmt)
        plan: list[str] = []
        step_stats: dict[int, _StepStats] | None = None
        instrument: Callable[[Iterator[dict]], Iterator[dict]] | None = None
        if analyze:
            step_stats = {}

            def instrument(envs: Iterator[dict]) -> Iterator[dict]:
                """Attach a timing probe to the plan entry appended last."""
                stats = _StepStats()
                step_stats[len(plan) - 1] = stats
                return _timed_iter(envs, stats)

        if bound:
            unambiguous = self._unambiguous_columns(bound)
            envs = self._produce_envs(
                stmt, bound, unambiguous, params, plan, instrument
            )
        else:
            # SELECT without FROM: a single empty environment.
            envs = iter([{}])
            plan.append("no FROM clause: single empty row")
            if instrument is not None:
                envs = instrument(envs)

        where_conjuncts = conjuncts(stmt.where)
        if stmt.where is not None:
            envs = (
                env for env in envs
                if all(truthy(p.evaluate(env, params)) for p in where_conjuncts)
            )

        items = self._expand_items(stmt, bound)
        grouped = bool(stmt.group_by) or any(
            item.expr is not None and item.expr.contains_aggregate()
            for item in items
        ) or (stmt.having is not None and stmt.having.contains_aggregate())

        if grouped:
            # GROUP BY may name a select-list alias, like ORDER BY.
            alias_exprs = {
                item.alias: item.expr for item in items if item.alias
            }
            group_exprs = []
            for expr in stmt.group_by:
                if (
                    isinstance(expr, ColumnRef)
                    and expr.table is None
                    and expr.column in alias_exprs
                ):
                    expr = alias_exprs[expr.column]
                group_exprs.append(expr)
            envs = self._group(stmt, items, envs, params, group_exprs)
            plan.append(
                f"hash aggregate on {len(stmt.group_by)} grouping expression(s)"
            )
            if instrument is not None:
                envs = instrument(envs)
        elif stmt.having is not None:
            raise SqlSyntaxError("HAVING requires GROUP BY or aggregates")

        columns = [self._item_label(item, i) for i, item in enumerate(items)]
        output: list[tuple[dict, tuple]] = []
        for env in envs:
            row = tuple(item.expr.evaluate(env, params) for item in items)
            output.append((env, row))

        if stmt.distinct:
            seen: list[tuple] = []
            deduped = []
            for env, row in output:
                key = tuple(_NullsFirstKey((v,)) for v in row)
                if key not in seen:
                    seen.append(key)
                    deduped.append((env, row))
            output = deduped

        if stmt.order_by:
            # ORDER BY may name a select-list alias (ORDER BY n for
            # "COUNT(*) AS n"); resolve those to the aliased expression.
            alias_exprs = {
                item.alias: item.expr for item in items if item.alias
            }
            order_exprs = []
            for order in stmt.order_by:
                expr = order.expr
                if (
                    isinstance(expr, ColumnRef)
                    and expr.table is None
                    and expr.column in alias_exprs
                ):
                    expr = alias_exprs[expr.column]
                order_exprs.append((expr, order.ascending))

            def order_key(pair):
                env, _row = pair
                return tuple(
                    _SortPart(
                        _NullsFirstKey((expr.evaluate(env, params),)),
                        ascending,
                    )
                    for expr, ascending in order_exprs
                )
            output.sort(key=order_key)

        rows = [row for _env, row in output]
        if stmt.offset:
            rows = rows[stmt.offset:]
        if stmt.limit is not None:
            rows = rows[: stmt.limit]
        alias_tables = {b.alias: b.schema.name for b in bound}
        return SelectResult(
            columns, rows, plan, items, alias_tables, step_stats=step_stats
        )

    # -- subquery materialisation ---------------------------------------------

    @staticmethod
    def _statement_expressions(stmt: SelectStmt) -> list[Expression]:
        out: list[Expression] = []
        for item in stmt.items:
            if item.expr is not None:
                out.append(item.expr)
        for join in stmt.joins:
            if join.on is not None:
                out.append(join.on)
        if stmt.where is not None:
            out.append(stmt.where)
        out.extend(stmt.group_by)
        if stmt.having is not None:
            out.append(stmt.having)
        out.extend(order.expr for order in stmt.order_by)
        return out

    def bind_subqueries(self, exprs: list[Expression], params: Sequence[Any]) -> None:
        """Materialise every (uncorrelated) subquery once per execution.

        Nested subqueries are handled by the recursive execute_select call;
        a correlated subquery surfaces as an unknown-column error from its
        standalone execution.
        """
        for expr in exprs:
            for node in expr.walk():
                if isinstance(node, (Subquery, InSubquery, ExistsSubquery)):
                    result = self.execute_select(node.select, params)
                    node.bind(result.rows)

    # -- binding ------------------------------------------------------------------

    def _bind_tables(self, stmt: SelectStmt) -> list[_BoundTable]:
        bound: list[_BoundTable] = []
        seen_aliases: set[str] = set()

        def bind(ref: TableRef, kind: str | None, on: Expression | None) -> None:
            if ref.alias in seen_aliases:
                raise CatalogError(f"duplicate table alias {ref.alias}")
            seen_aliases.add(ref.alias)
            bound.append(
                _BoundTable(ref.alias, self._resolve_relation(ref.name), kind, on)
            )

        for i, ref in enumerate(stmt.tables):
            bind(ref, None if i == 0 else "CROSS", None)
        for join in stmt.joins:
            bind(join.table, join.kind, join.on)
        return bound

    def _resolve_relation(self, name: str):
        """A FROM-clause name is either a base table or a view; views are
        materialised into a transient table by running their stored SELECT."""
        name = name.upper()
        if not self._catalog.is_view(name):
            return self._catalog.table(name)
        if name in self._expanding_views:
            raise CatalogError(f"view {name} is recursively defined")
        from repro.sqldb.schema import Column, TableSchema
        from repro.sqldb.types import AnyType

        self._expanding_views.add(name)
        try:
            result = self.execute_select(self._catalog.view_select(name))
        finally:
            self._expanding_views.discard(name)
        seen: set[str] = set()
        columns = []
        for label in result.columns:
            if label in seen:
                raise CatalogError(
                    f"view {name} has duplicate output column {label}; "
                    f"alias the select items"
                )
            seen.add(label)
            columns.append(Column(label, AnyType()))
        from repro.sqldb.storage import Table

        table = Table(TableSchema(name, columns))
        for row in result.rows:
            table.insert(row)
        return table

    @staticmethod
    def _unambiguous_columns(bound: list[_BoundTable]) -> dict[str, str]:
        """Map bare column name -> owning alias when unique across tables."""
        counts: dict[str, list[str]] = {}
        for entry in bound:
            for name in entry.schema.column_names:
                counts.setdefault(name, []).append(entry.alias)
        return {
            name: aliases[0]
            for name, aliases in counts.items()
            if len(aliases) == 1
        }

    # -- row production --------------------------------------------------------------

    def _produce_envs(
        self,
        stmt: SelectStmt,
        bound: list[_BoundTable],
        unambiguous: dict[str, str],
        params: Sequence[Any],
        plan: list[str],
        instrument: Callable[[Iterator[dict]], Iterator[dict]] | None = None,
    ) -> Iterator[dict]:
        where_conjuncts = conjuncts(stmt.where)
        equalities = constant_equalities(where_conjuncts, params)

        def env_for(entry: _BoundTable, row: tuple | None) -> dict:
            env: dict[str, Any] = {}
            for i, name in enumerate(entry.schema.column_names):
                value = None if row is None else row[i]
                env[f"{entry.alias}.{name}"] = value
                if unambiguous.get(name) == entry.alias:
                    env[name] = value
            return env

        first = bound[0]
        base_rows = self._access_path(first, equalities, plan)
        envs: Iterator[dict] = (env_for(first, row) for row in base_rows)
        if instrument is not None:
            envs = instrument(envs)

        for entry in bound[1:]:
            envs = self._join_one(entry, envs, env_for, equalities, params, plan)
            if instrument is not None:
                envs = instrument(envs)
        return envs

    def _access_path(
        self,
        entry: _BoundTable,
        equalities: list[tuple[ColumnRef, Any]],
        plan: list[str],
    ) -> Iterator[tuple]:
        """Choose index point-lookup vs sequential scan for a base table.

        Collects every ``column = constant`` binding on this table, then
        looks for an index whose full key is covered — so composite
        primary keys (FILE_NAME, SIMULATION_KEY) get point lookups too.
        """
        bound: dict[str, Any] = {}
        for ref, value in equalities:
            if ref.table is not None and ref.table != entry.alias:
                continue
            if not entry.schema.has_column(ref.column):
                continue
            if ref.table is None and unqualified_is_ambiguous(entry, ref.column):
                continue
            try:
                bound[ref.column] = entry.schema.column(
                    ref.column
                ).type.validate(value)
            except Exception:
                continue  # incomparable constant: not usable for a lookup

        if bound:
            best = None
            for index in entry.table.indexes.values():
                if all(column in bound for column in index.columns):
                    if best is None or len(index.columns) > len(best.columns):
                        best = index
            if best is not None:
                key = tuple(bound[column] for column in best.columns)
                plan.append(
                    f"index lookup {entry.alias} via {best.name} "
                    f"({', '.join(best.columns)} = {key!r})"
                )
                rowids = best.find(key)
                rows = [entry.table.row(rowid) for rowid in rowids]
                self.rows_scanned += len(rows)
                return iter(rows)
        plan.append(f"seq scan {entry.alias} ({len(entry.table)} rows)")
        self.rows_scanned += len(entry.table)
        return (row for _rowid, row in entry.table.scan())

    def _join_one(
        self,
        entry: _BoundTable,
        outer_envs: Iterator[dict],
        env_for,
        equalities: list[tuple[ColumnRef, Any]],
        params: Sequence[Any],
        plan: list[str],
    ) -> Iterator[dict]:
        kind = entry.join_kind or "CROSS"
        keys = join_equalities(entry.join_on, entry.alias) if entry.join_on else []
        index = None
        key_pair = None
        for outer_ref, inner_ref in keys:
            candidate = entry.table.index_leading_on(inner_ref.column)
            if candidate is not None:
                index = candidate
                key_pair = (outer_ref, inner_ref)
                break
        if index is not None:
            plan.append(
                f"index nested-loop join {entry.alias} via {index.name}"
            )
        else:
            plan.append(f"nested-loop join {entry.alias} ({kind.lower()})")

        def generate() -> Iterator[dict]:
            inner_rows = None
            if index is None:
                inner_rows = [row for _rowid, row in entry.table.scan()]
            for outer_env in outer_envs:
                matched = False
                if index is not None:
                    outer_ref, _inner_ref = key_pair
                    value = outer_ref.evaluate(outer_env, params)
                    candidates = (
                        [entry.table.row(rowid) for rowid in index.find((value,))]
                        if value is not None
                        else []
                    )
                else:
                    candidates = inner_rows
                self.rows_scanned += len(candidates)
                for row in candidates:
                    env = {**outer_env, **env_for(entry, row)}
                    if entry.join_on is not None and not truthy(
                        entry.join_on.evaluate(env, params)
                    ):
                        continue
                    matched = True
                    yield env
                if kind == "LEFT" and not matched:
                    yield {**outer_env, **env_for(entry, None)}

        return generate()

    # -- select list ---------------------------------------------------------------------

    def _expand_items(self, stmt: SelectStmt, bound: list[_BoundTable]) -> list[SelectItem]:
        items: list[SelectItem] = []
        for item in stmt.items:
            if not item.is_star:
                items.append(item)
                continue
            targets = bound
            if item.star_table is not None:
                targets = [b for b in bound if b.alias == item.star_table]
                if not targets:
                    raise CatalogError(f"unknown table {item.star_table} in select list")
            if not targets:
                raise SqlSyntaxError("'*' requires a FROM clause")
            for entry in targets:
                for name in entry.schema.column_names:
                    items.append(
                        SelectItem(ColumnRef(name, table=entry.alias), alias=name)
                    )
        return items

    @staticmethod
    def _item_label(item: SelectItem, position: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ColumnRef):
            return item.expr.column
        if isinstance(item.expr, AggregateCall):
            return item.expr.name
        return f"EXPR{position + 1}"

    # -- grouping -------------------------------------------------------------------------

    def _group(
        self,
        stmt: SelectStmt,
        items: list[SelectItem],
        envs: Iterator[dict],
        params: Sequence[Any],
        group_exprs: list[Expression] | None = None,
    ) -> Iterator[dict]:
        if group_exprs is None:
            group_exprs = list(stmt.group_by)
        aggregates: list[AggregateCall] = []
        for item in items:
            for node in item.expr.walk():
                if isinstance(node, AggregateCall):
                    aggregates.append(node)
        if stmt.having is not None:
            for node in stmt.having.walk():
                if isinstance(node, AggregateCall):
                    aggregates.append(node)
        # De-duplicate by key so COUNT(*) appearing twice folds once.
        unique_aggs: dict[str, AggregateCall] = {}
        for agg in aggregates:
            unique_aggs.setdefault(agg.key, agg)

        groups: dict[tuple, dict] = {}
        for env in envs:
            key_values = tuple(
                expr.evaluate(env, params) for expr in group_exprs
            )
            key = tuple(_NullsFirstKey((v,)) for v in key_values)
            group = groups.get(key)
            if group is None:
                group = {"env": env, "inputs": {k: [] for k in unique_aggs}}
                groups[key] = group
            for agg_key, agg in unique_aggs.items():
                if isinstance(agg.arg, Star):
                    group["inputs"][agg_key].append(1)
                else:
                    value = agg.arg.evaluate(env, params)
                    if value is not None:
                        group["inputs"][agg_key].append(value)

        if not groups and not stmt.group_by:
            # Aggregate over an empty input still yields one row.
            groups[()] = {"env": {}, "inputs": {k: [] for k in unique_aggs}}

        def generate() -> Iterator[dict]:
            for group in groups.values():
                env = dict(group["env"])
                for agg_key, agg in unique_aggs.items():
                    env[agg_key] = agg.accumulate(group["inputs"][agg_key])
                if stmt.having is not None and not truthy(
                    stmt.having.evaluate(env, params)
                ):
                    continue
                yield env

        return generate()


class _SortPart:
    """Sort key element honouring ASC/DESC with NULLs-first semantics."""

    __slots__ = ("key", "ascending")

    def __init__(self, key: _NullsFirstKey, ascending: bool) -> None:
        self.key = key
        self.ascending = ascending

    def __lt__(self, other: "_SortPart") -> bool:
        if self.key == other.key:
            return False
        less = self.key < other.key
        return less if self.ascending else not less

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortPart) and self.key == other.key


def unqualified_is_ambiguous(entry: _BoundTable, column: str) -> bool:
    """Used by the access-path chooser: a bare column in WHERE can only
    drive an index on ``entry`` when it belongs to that table."""
    return not entry.schema.has_column(column)
