"""Expression AST and evaluation with SQL three-valued logic.

Expressions appear in WHERE/HAVING clauses, CHECK constraints, computed
SELECT items and join conditions.  Evaluation follows SQL semantics:
``NULL`` propagates through comparisons and arithmetic, ``AND``/``OR`` use
Kleene logic, and a WHERE clause keeps a row only when the predicate is
*true* (not merely non-false).
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Any, Callable, Mapping, Sequence

from repro.errors import CatalogError, SqlSyntaxError, TypeMismatchError
from repro.sqldb.types import Blob, Clob, DatalinkValue

__all__ = [
    "Expression",
    "Literal",
    "ColumnRef",
    "Parameter",
    "BinaryOp",
    "UnaryOp",
    "IsNull",
    "Like",
    "InList",
    "Between",
    "FunctionCall",
    "AggregateCall",
    "Star",
    "truthy",
    "hash_key",
]

AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


class Expression:
    """Base class for AST nodes."""

    def evaluate(self, env: Mapping[str, Any], params: Sequence[Any] = ()) -> Any:
        raise NotImplementedError

    def column_refs(self) -> list["ColumnRef"]:
        """All column references in this subtree (planner uses this)."""
        refs: list[ColumnRef] = []
        self._collect_refs(refs)
        return refs

    def _collect_refs(self, out: list["ColumnRef"]) -> None:
        pass

    def contains_aggregate(self) -> bool:
        return any(isinstance(node, AggregateCall) for node in self.walk())

    def walk(self):
        """Yield every node in this subtree (pre-order)."""
        yield self
        for child in self._children():
            yield from child.walk()

    def _children(self) -> list["Expression"]:
        return []


def truthy(value: Any) -> bool:
    """SQL WHERE semantics: only TRUE passes; NULL and FALSE do not."""
    return value is True


class Literal(Expression):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, env, params=()) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"

    def __eq__(self, other):
        return isinstance(other, Literal) and self.value == other.value


class Parameter(Expression):
    """A positional ``?`` placeholder, bound at execution time."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def evaluate(self, env, params=()) -> Any:
        try:
            return params[self.index]
        except IndexError:
            raise SqlSyntaxError(
                f"statement has parameter ?{self.index + 1} but only "
                f"{len(params)} parameter value(s) were supplied"
            ) from None

    def __repr__(self) -> str:
        return f"Parameter({self.index})"


class ColumnRef(Expression):
    """A (possibly table-qualified) column reference."""

    __slots__ = ("table", "column")

    def __init__(self, column: str, table: str | None = None) -> None:
        self.table = table.upper() if table else None
        self.column = column.upper()

    @property
    def key(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column

    def evaluate(self, env, params=()) -> Any:
        key = self.key
        if key in env:
            return env[key]
        # No silent fallback from qualified to bare names: a qualifier that
        # does not resolve is an error (this is what surfaces correlated
        # subqueries, which are unsupported, instead of mis-binding them).
        raise CatalogError(f"unknown column {key}")

    def _collect_refs(self, out: list["ColumnRef"]) -> None:
        out.append(self)

    def __repr__(self) -> str:
        return f"ColumnRef({self.key!r})"

    def __eq__(self, other):
        return (
            isinstance(other, ColumnRef)
            and self.table == other.table
            and self.column == other.column
        )

    def __hash__(self):
        return hash((self.table, self.column))


class Star(Expression):
    """``*`` in a select list or ``COUNT(*)``."""

    def evaluate(self, env, params=()) -> Any:
        raise SqlSyntaxError("'*' cannot be evaluated as a scalar")

    def __repr__(self) -> str:
        return "Star()"


class Subquery(Expression):
    """A scalar subquery ``(SELECT ...)``.

    Only *uncorrelated* subqueries are supported: the executor materialises
    the nested SELECT once per statement execution (binding the result via
    :meth:`bind`) before row evaluation begins.  A scalar subquery must
    yield one column; zero rows evaluate to NULL, more than one row is an
    error.
    """

    __slots__ = ("select", "_bound", "_value")

    def __init__(self, select) -> None:
        self.select = select  # a SelectStmt; typed loosely to avoid cycles
        self._bound = False
        self._value = None

    def bind(self, rows: list[tuple]) -> None:
        if rows and len(rows[0]) != 1:
            raise SqlSyntaxError("scalar subquery must select exactly one column")
        if len(rows) > 1:
            raise SqlSyntaxError("scalar subquery returned more than one row")
        self._value = rows[0][0] if rows else None
        self._bound = True

    def evaluate(self, env, params=()) -> Any:
        if not self._bound:
            raise SqlSyntaxError("subquery was not materialised before evaluation")
        return self._value

    def __repr__(self) -> str:
        return "Subquery(...)"


class ExistsSubquery(Expression):
    """``[NOT] EXISTS (SELECT ...)`` — true when the (uncorrelated)
    subquery returns at least one row."""

    __slots__ = ("select", "negated", "_bound", "_nonempty")

    def __init__(self, select, negated: bool = False) -> None:
        self.select = select
        self.negated = negated
        self._bound = False
        self._nonempty = False

    def bind(self, rows: list[tuple]) -> None:
        self._nonempty = bool(rows)
        self._bound = True

    def evaluate(self, env, params=()) -> Any:
        if not self._bound:
            raise SqlSyntaxError("subquery was not materialised before evaluation")
        return (not self._nonempty) if self.negated else self._nonempty


class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)`` — materialised like :class:`Subquery`.

    Executed as a hashed semi-join: when every subquery value is a simple
    hashable scalar, :meth:`bind` builds a set of normalised keys and each
    row's membership test is O(1) instead of a scan over the value list.
    Mixed or exotic value types fall back to the pairwise ``=`` comparison,
    which handles cross-type coercions (dates vs strings etc.).
    """

    __slots__ = (
        "operand", "select", "negated", "_bound", "_values",
        "_hashed", "_hash_family", "_saw_null",
    )

    def __init__(self, operand: Expression, select, negated: bool = False) -> None:
        self.operand = operand
        self.select = select
        self.negated = negated
        self._bound = False
        self._values: list[Any] = []
        self._hashed: set | None = None
        self._hash_family: tuple[type, ...] | None = None
        self._saw_null = False

    def bind(self, rows: list[tuple]) -> None:
        if rows and len(rows[0]) != 1:
            raise SqlSyntaxError("IN subquery must select exactly one column")
        self._values = [row[0] for row in rows]
        self._saw_null = any(v is None for v in self._values)
        present = [v for v in self._values if v is not None]
        # Hash only homogeneous families: a probe value outside the family
        # must fall back to the pairwise path, which raises (or coerces)
        # exactly as the naive comparison loop would.
        self._hashed = None
        self._hash_family = None
        for family in ((int, float), (str, Clob)):
            if all(isinstance(v, family) for v in present):
                self._hashed = {hash_key(v) for v in present}
                self._hash_family = family
                break
        self._bound = True

    def evaluate(self, env, params=()) -> Any:
        if not self._bound:
            raise SqlSyntaxError("subquery was not materialised before evaluation")
        value = self.operand.evaluate(env, params)
        if value is None:
            return None
        if self._hashed is not None and isinstance(value, self._hash_family):
            matched = hash_key(value) in self._hashed
        else:
            matched = False
            for candidate in self._values:
                if candidate is None:
                    continue
                if _compare("=", value, candidate):
                    matched = True
                    break
        if matched:
            return False if self.negated else True
        if self._saw_null:
            return None
        return True if self.negated else False

    def _children(self):
        return [self.operand]

    def _collect_refs(self, out):
        self.operand._collect_refs(out)


def hash_key(value: Any) -> Any:
    """Normalise one value for hash-based equality (hash joins, hashed
    IN-subquery membership) so that two values compare equal under SQL
    ``=`` iff their keys are equal: CLOBs compare as their text, CHAR
    values ignore trailing padding, dates promote to midnight datetimes
    (mirroring :func:`_comparable`), and unhashable values degrade to
    their ``repr``."""
    if isinstance(value, Clob):
        value = value.text
    if isinstance(value, DatalinkValue):
        value = value.url
    if isinstance(value, Blob):
        value = value.data
    if isinstance(value, str):
        value = value.rstrip()
    if isinstance(value, _dt.date) and not isinstance(value, _dt.datetime):
        value = _dt.datetime(value.year, value.month, value.day)
    try:
        hash(value)
    except TypeError:
        value = repr(value)
    return value


def _comparable(left: Any, right: Any) -> tuple[Any, Any]:
    """Normalise operand pairs so heterogeneous-but-compatible values
    compare the way SQL users expect."""
    if isinstance(left, Clob):
        left = left.text
    if isinstance(right, Clob):
        right = right.text
    if isinstance(left, DatalinkValue):
        left = left.url
    if isinstance(right, DatalinkValue):
        right = right.url
    if isinstance(left, Blob):
        left = left.data
    if isinstance(right, Blob):
        right = right.data
    if isinstance(left, _dt.datetime) and isinstance(right, _dt.date) and not isinstance(right, _dt.datetime):
        right = _dt.datetime(right.year, right.month, right.day)
    if isinstance(right, _dt.datetime) and isinstance(left, _dt.date) and not isinstance(left, _dt.datetime):
        left = _dt.datetime(left.year, left.month, left.day)
    if isinstance(left, str) and isinstance(right, _dt.date):
        left = _parse_temporal(left, type(right))
    if isinstance(right, str) and isinstance(left, _dt.date):
        right = _parse_temporal(right, type(left))
    # CHAR columns are space-padded; compare stripped per SQL PAD SPACE.
    if isinstance(left, str) and isinstance(right, str):
        return left.rstrip(), right.rstrip()
    return left, right


def _parse_temporal(text: str, kind: type) -> Any:
    try:
        if kind is _dt.datetime:
            return _dt.datetime.fromisoformat(text)
        return _dt.date.fromisoformat(text)
    except ValueError:
        raise TypeMismatchError(f"cannot compare {text!r} with a {kind.__name__}")


def _numeric(value: Any, op: str) -> Any:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeMismatchError(f"operator {op} requires numeric operands, got {value!r}")
    return value


def _arith(op: str, left: Any, right: Any) -> Any:
    left = _numeric(left, op)
    right = _numeric(right, op)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise TypeMismatchError("division by zero")
        result = left / right
        if isinstance(left, int) and isinstance(right, int) and result == int(result):
            return int(result)
        return result
    if op == "%":
        if right == 0:
            raise TypeMismatchError("division by zero")
        return left % right
    raise SqlSyntaxError(f"unknown arithmetic operator {op}")


def _compare(op: str, left: Any, right: Any) -> bool:
    left, right = _comparable(left, right)
    try:
        if op == "=":
            return left == right
        if op in ("<>", "!="):
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        raise TypeMismatchError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        ) from None
    raise SqlSyntaxError(f"unknown comparison operator {op}")


class BinaryOp(Expression):
    """Binary operators: arithmetic, comparison, AND, OR, string ``||``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        self.op = op.upper()
        self.left = left
        self.right = right

    def evaluate(self, env, params=()) -> Any:
        op = self.op
        if op == "AND":
            left = self.left.evaluate(env, params)
            if left is False:
                return False
            right = self.right.evaluate(env, params)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "OR":
            left = self.left.evaluate(env, params)
            if left is True:
                return True
            right = self.right.evaluate(env, params)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False

        left = self.left.evaluate(env, params)
        right = self.right.evaluate(env, params)
        if left is None or right is None:
            return None
        if op == "||":
            return _stringify(left) + _stringify(right)
        if op in ("+", "-", "*", "/", "%"):
            return _arith(op, left, right)
        return _compare(op, left, right)

    def _children(self):
        return [self.left, self.right]

    def _collect_refs(self, out):
        self.left._collect_refs(out)
        self.right._collect_refs(out)

    def __repr__(self) -> str:
        return f"BinaryOp({self.op!r}, {self.left!r}, {self.right!r})"


def _stringify(value: Any) -> str:
    if isinstance(value, Clob):
        return value.text
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    return str(value)


class UnaryOp(Expression):
    """NOT and unary minus."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expression) -> None:
        self.op = op.upper()
        self.operand = operand

    def evaluate(self, env, params=()) -> Any:
        value = self.operand.evaluate(env, params)
        if self.op == "NOT":
            if value is None:
                return None
            return not value
        if value is None:
            return None
        if self.op == "-":
            return -_numeric(value, "-")
        if self.op == "+":
            return _numeric(value, "+")
        raise SqlSyntaxError(f"unknown unary operator {self.op}")

    def _children(self):
        return [self.operand]

    def _collect_refs(self, out):
        self.operand._collect_refs(out)

    def __repr__(self) -> str:
        return f"UnaryOp({self.op!r}, {self.operand!r})"


class IsNull(Expression):
    """``expr IS [NOT] NULL`` — never yields NULL itself."""

    __slots__ = ("operand", "negated")

    def __init__(self, operand: Expression, negated: bool = False) -> None:
        self.operand = operand
        self.negated = negated

    def evaluate(self, env, params=()) -> bool:
        value = self.operand.evaluate(env, params)
        result = value is None
        return (not result) if self.negated else result

    def _children(self):
        return [self.operand]

    def _collect_refs(self, out):
        self.operand._collect_refs(out)


class Like(Expression):
    """``expr [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards.

    This powers the QBE form's wildcard restrictions.
    """

    __slots__ = ("operand", "pattern", "negated")

    def __init__(self, operand: Expression, pattern: Expression, negated: bool = False) -> None:
        self.operand = operand
        self.pattern = pattern
        self.negated = negated

    @staticmethod
    def compile_pattern(pattern: str) -> re.Pattern:
        """Translate an SQL LIKE pattern into an anchored regex."""
        out = []
        for ch in pattern:
            if ch == "%":
                out.append(".*")
            elif ch == "_":
                out.append(".")
            else:
                out.append(re.escape(ch))
        return re.compile("".join(out) + r"\Z", re.DOTALL)

    def evaluate(self, env, params=()) -> Any:
        value = self.operand.evaluate(env, params)
        pattern = self.pattern.evaluate(env, params)
        if value is None or pattern is None:
            return None
        value = _stringify(value).rstrip()
        result = bool(self.compile_pattern(_stringify(pattern)).match(value))
        return (not result) if self.negated else result

    def _children(self):
        return [self.operand, self.pattern]

    def _collect_refs(self, out):
        self.operand._collect_refs(out)
        self.pattern._collect_refs(out)


class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)`` with SQL NULL semantics."""

    __slots__ = ("operand", "items", "negated")

    def __init__(self, operand: Expression, items: Sequence[Expression], negated: bool = False) -> None:
        self.operand = operand
        self.items = list(items)
        self.negated = negated

    def evaluate(self, env, params=()) -> Any:
        value = self.operand.evaluate(env, params)
        if value is None:
            return None
        saw_null = False
        for item in self.items:
            candidate = item.evaluate(env, params)
            if candidate is None:
                saw_null = True
                continue
            if _compare("=", value, candidate):
                return False if self.negated else True
        if saw_null:
            return None
        return True if self.negated else False

    def _children(self):
        return [self.operand, *self.items]

    def _collect_refs(self, out):
        self.operand._collect_refs(out)
        for item in self.items:
            item._collect_refs(out)


class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    __slots__ = ("operand", "low", "high", "negated")

    def __init__(
        self,
        operand: Expression,
        low: Expression,
        high: Expression,
        negated: bool = False,
    ) -> None:
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def evaluate(self, env, params=()) -> Any:
        value = self.operand.evaluate(env, params)
        low = self.low.evaluate(env, params)
        high = self.high.evaluate(env, params)
        if value is None or low is None or high is None:
            return None
        result = _compare(">=", value, low) and _compare("<=", value, high)
        return (not result) if self.negated else result

    def _children(self):
        return [self.operand, self.low, self.high]

    def _collect_refs(self, out):
        for child in self._children():
            child._collect_refs(out)


def _fn_substr(args: list[Any]) -> Any:
    text = _stringify(args[0])
    start = int(args[1])
    length = int(args[2]) if len(args) > 2 else None
    begin = max(start - 1, 0)
    if length is None:
        return text[begin:]
    return text[begin : begin + max(length, 0)]


def _as_datalink(value: Any, fn_name: str) -> DatalinkValue:
    if isinstance(value, DatalinkValue):
        return value
    if isinstance(value, str):
        return DatalinkValue(value)
    raise TypeMismatchError(f"{fn_name} requires a DATALINK value, got {value!r}")


_SCALAR_FUNCTIONS: dict[str, Callable[[list[Any]], Any]] = {
    "UPPER": lambda args: _stringify(args[0]).upper(),
    "LOWER": lambda args: _stringify(args[0]).lower(),
    "LENGTH": lambda args: len(args[0]) if isinstance(args[0], (Blob, Clob)) else len(_stringify(args[0])),
    "TRIM": lambda args: _stringify(args[0]).strip(),
    "ABS": lambda args: abs(_numeric(args[0], "ABS")),
    "ROUND": lambda args: round(_numeric(args[0], "ROUND"), int(args[1]) if len(args) > 1 else 0),
    "SUBSTR": _fn_substr,
    "SUBSTRING": _fn_substr,
    # SQL/MED (ISO 9075-9) datalink scalar functions.  DLVALUE constructs a
    # datalink from a character URL; the DLURL* family extracts components
    # of a stored datalink — these are what client SQL uses to manipulate
    # DATALINK columns without string-hacking URLs.
    "DLVALUE": lambda args: _as_datalink(args[0], "DLVALUE"),
    "DLURLCOMPLETE": lambda args: _as_datalink(args[0], "DLURLCOMPLETE").tokenized_url,
    "DLURLPATH": lambda args: _as_datalink(args[0], "DLURLPATH").server_path,
    "DLURLPATHONLY": lambda args: _as_datalink(args[0], "DLURLPATHONLY").server_path,
    "DLURLSERVER": lambda args: _as_datalink(args[0], "DLURLSERVER").host,
    "DLURLSCHEME": lambda args: _as_datalink(args[0], "DLURLSCHEME").scheme.upper(),
    "DLLINKTYPE": lambda args: (_as_datalink(args[0], "DLLINKTYPE"), "URL")[1],
    "DLFILESIZE": lambda args: _as_datalink(args[0], "DLFILESIZE").size,
}


class CaseExpression(Expression):
    """``CASE WHEN cond THEN value [...] [ELSE value] END``.

    Searched-case form only (each WHEN carries a full predicate); the
    first true branch wins, else the ELSE value, else NULL.
    """

    __slots__ = ("branches", "default")

    def __init__(self, branches: Sequence[tuple[Expression, Expression]],
                 default: Expression | None = None) -> None:
        if not branches:
            raise SqlSyntaxError("CASE needs at least one WHEN branch")
        self.branches = list(branches)
        self.default = default

    def evaluate(self, env, params=()) -> Any:
        for condition, value in self.branches:
            if truthy(condition.evaluate(env, params)):
                return value.evaluate(env, params)
        if self.default is not None:
            return self.default.evaluate(env, params)
        return None

    def _children(self):
        out: list[Expression] = []
        for condition, value in self.branches:
            out.append(condition)
            out.append(value)
        if self.default is not None:
            out.append(self.default)
        return out

    def _collect_refs(self, out):
        for child in self._children():
            child._collect_refs(out)

    def __repr__(self) -> str:
        return f"CaseExpression({len(self.branches)} branch(es))"


class FunctionCall(Expression):
    """Scalar function call (UPPER, LOWER, LENGTH, TRIM, ABS, ROUND,
    SUBSTR, COALESCE)."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expression]) -> None:
        self.name = name.upper()
        self.args = list(args)

    def evaluate(self, env, params=()) -> Any:
        if self.name == "COALESCE":
            for arg in self.args:
                value = arg.evaluate(env, params)
                if value is not None:
                    return value
            return None
        fn = _SCALAR_FUNCTIONS.get(self.name)
        if fn is None:
            raise SqlSyntaxError(f"unknown function {self.name}")
        values = [arg.evaluate(env, params) for arg in self.args]
        if any(v is None for v in values):
            return None
        return fn(values)

    def _children(self):
        return list(self.args)

    def _collect_refs(self, out):
        for arg in self.args:
            arg._collect_refs(out)

    def __repr__(self) -> str:
        return f"FunctionCall({self.name!r}, {self.args!r})"


class AggregateCall(Expression):
    """Aggregate function reference: COUNT/SUM/AVG/MIN/MAX.

    During grouped execution the executor pre-computes each aggregate and
    binds its value into the row environment under :attr:`key`; evaluation
    here simply reads that binding.
    """

    __slots__ = ("name", "arg", "distinct")

    def __init__(self, name: str, arg: Expression | Star, distinct: bool = False) -> None:
        self.name = name.upper()
        if self.name not in AGGREGATE_FUNCTIONS:
            raise SqlSyntaxError(f"unknown aggregate {name}")
        self.arg = arg
        self.distinct = distinct

    @property
    def key(self) -> str:
        arg = "*" if isinstance(self.arg, Star) else repr(self.arg)
        distinct = "DISTINCT " if self.distinct else ""
        return f"$agg:{self.name}({distinct}{arg})"

    def evaluate(self, env, params=()) -> Any:
        if self.key in env:
            return env[self.key]
        raise SqlSyntaxError(
            f"aggregate {self.name} used outside a grouped query"
        )

    def accumulate(self, values: list[Any]) -> Any:
        """Fold non-NULL input ``values`` into the aggregate result."""
        if self.distinct:
            seen = []
            for v in values:
                if v not in seen:
                    seen.append(v)
            values = seen
        if self.name == "COUNT":
            return len(values)
        if not values:
            return None
        if self.name == "SUM":
            return sum(values)
        if self.name == "AVG":
            return sum(values) / len(values)
        if self.name == "MIN":
            return min(values)
        return max(values)

    def _children(self):
        return [] if isinstance(self.arg, Star) else [self.arg]

    def _collect_refs(self, out):
        if not isinstance(self.arg, Star):
            self.arg._collect_refs(out)

    def __repr__(self) -> str:
        return f"AggregateCall({self.name!r}, {self.arg!r}, distinct={self.distinct})"
