"""SQL/MED DATALINK column options (ISO/IEC 9075-9 draft, Dec 1998).

The paper's schema declares::

    download_result DATALINK
        LINKTYPE URL
        FILE LINK CONTROL
        READ PERMISSION DB
        ...

:class:`DatalinkSpec` captures the full option set from the committee
draft.  The DDL parser attaches one of these to each DATALINK column; the
datalink manager (``repro.datalink``) reads it to decide which behaviours
to enforce:

* ``FILE LINK CONTROL`` / ``NO LINK CONTROL`` — whether the DBMS takes
  ownership of the referenced file (existence check at INSERT/UPDATE,
  rename/delete blocking, token-gated access).
* ``INTEGRITY ALL | SELECTIVE | NONE`` — how strongly renames/deletes are
  blocked while linked.
* ``READ PERMISSION FS | DB`` — whether reads go through filesystem
  permissions or require a database-issued access token.
* ``WRITE PERMISSION FS | BLOCKED`` — whether the linked file may be
  modified in place.
* ``RECOVERY NO | YES`` — whether the file participates in coordinated
  backup and point-in-time recovery.
* ``ON UNLINK RESTORE | DELETE`` — what happens to the file when its row
  is deleted or the link is removed.
"""

from __future__ import annotations

from repro.errors import CatalogError

__all__ = ["DatalinkSpec"]

_INTEGRITY = ("ALL", "SELECTIVE", "NONE")
_READ_PERM = ("FS", "DB")
_WRITE_PERM = ("FS", "BLOCKED")
_ON_UNLINK = ("RESTORE", "DELETE", "NONE")


class DatalinkSpec:
    """Parsed DATALINK column options."""

    __slots__ = (
        "link_control",
        "integrity",
        "read_permission",
        "write_permission",
        "recovery",
        "on_unlink",
    )

    def __init__(
        self,
        link_control: bool = False,
        integrity: str = "NONE",
        read_permission: str = "FS",
        write_permission: str = "FS",
        recovery: bool = False,
        on_unlink: str = "NONE",
    ) -> None:
        integrity = integrity.upper()
        read_permission = read_permission.upper()
        write_permission = write_permission.upper()
        on_unlink = on_unlink.upper()
        if integrity not in _INTEGRITY:
            raise CatalogError(f"INTEGRITY must be one of {_INTEGRITY}")
        if read_permission not in _READ_PERM:
            raise CatalogError(f"READ PERMISSION must be one of {_READ_PERM}")
        if write_permission not in _WRITE_PERM:
            raise CatalogError(f"WRITE PERMISSION must be one of {_WRITE_PERM}")
        if on_unlink not in _ON_UNLINK:
            raise CatalogError(f"ON UNLINK must be one of {_ON_UNLINK}")
        if not link_control:
            if integrity != "NONE" or read_permission != "FS" or recovery:
                raise CatalogError(
                    "INTEGRITY/READ PERMISSION DB/RECOVERY YES require "
                    "FILE LINK CONTROL"
                )
        else:
            if integrity == "NONE":
                # FILE LINK CONTROL implies at least selective integrity.
                integrity = "SELECTIVE"
            if read_permission == "DB" and on_unlink == "NONE":
                # The draft requires an ON UNLINK action when the DBMS owns
                # read permission; RESTORE is the conventional default.
                on_unlink = "RESTORE"
        self.link_control = link_control
        self.integrity = integrity
        self.read_permission = read_permission
        self.write_permission = write_permission
        self.recovery = recovery
        self.on_unlink = on_unlink

    @classmethod
    def paper_default(cls) -> "DatalinkSpec":
        """The option set the paper's RESULT_FILE table uses:
        FILE LINK CONTROL + READ PERMISSION DB (token-gated downloads),
        with coordinated recovery."""
        return cls(
            link_control=True,
            integrity="ALL",
            read_permission="DB",
            write_permission="BLOCKED",
            recovery=True,
            on_unlink="RESTORE",
        )

    @property
    def requires_token(self) -> bool:
        """True when SELECTs must attach an encrypted access token."""
        return self.link_control and self.read_permission == "DB"

    def ddl(self) -> str:
        parts = ["LINKTYPE URL"]
        if self.link_control:
            parts.append("FILE LINK CONTROL")
            parts.append(f"INTEGRITY {self.integrity}")
            parts.append(f"READ PERMISSION {self.read_permission}")
            parts.append(f"WRITE PERMISSION {self.write_permission}")
            parts.append("RECOVERY " + ("YES" if self.recovery else "NO"))
            if self.on_unlink != "NONE":
                parts.append(f"ON UNLINK {self.on_unlink}")
        else:
            parts.append("NO LINK CONTROL")
        return " ".join(parts)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DatalinkSpec) and all(
            getattr(self, slot) == getattr(other, slot) for slot in self.__slots__
        )

    def __repr__(self) -> str:
        return f"DatalinkSpec({self.ddl()!r})"
