"""Hand-written SQL lexer and recursive-descent parser.

The supported subset covers what the EASIA layers need: full DDL for the
archive schemas (including SQL/MED DATALINK column options), DML with
positional parameters, and SELECT with joins, LIKE, grouping, ordering and
limits.

>>> from repro.sqldb.parser import parse_sql
>>> stmt = parse_sql("SELECT title FROM simulation WHERE grid_size > 64")
>>> type(stmt).__name__
'SelectStmt'
"""

from repro.sqldb.parser.lexer import Token, tokenize
from repro.sqldb.parser.parser import (
    parse_script,
    parse_script_with_sql,
    parse_sql,
)

__all__ = ["Token", "tokenize", "parse_sql", "parse_script", "parse_script_with_sql"]
