"""Statement-level AST nodes produced by the SQL parser."""

from __future__ import annotations

from typing import Any, Sequence

from repro.sqldb.expressions import Expression
from repro.sqldb.schema import Column, ForeignKey

__all__ = [
    "Statement",
    "CreateTableStmt",
    "DropTableStmt",
    "CreateIndexStmt",
    "DropIndexStmt",
    "InsertStmt",
    "UpdateStmt",
    "DeleteStmt",
    "SelectStmt",
    "SelectItem",
    "TableRef",
    "Join",
    "OrderItem",
    "BeginStmt",
    "CommitStmt",
    "RollbackStmt",
]


class Statement:
    """Base class for parsed statements."""


class CreateTableStmt(Statement):
    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str],
        foreign_keys: Sequence[ForeignKey],
        unique_sets: Sequence[Sequence[str]],
        checks: Sequence[Expression],
        if_not_exists: bool = False,
    ) -> None:
        self.name = name.upper()
        self.columns = list(columns)
        self.primary_key = tuple(c.upper() for c in primary_key)
        self.foreign_keys = list(foreign_keys)
        self.unique_sets = [tuple(c.upper() for c in u) for u in unique_sets]
        self.checks = list(checks)
        self.if_not_exists = if_not_exists


class DropTableStmt(Statement):
    def __init__(self, name: str, if_exists: bool = False) -> None:
        self.name = name.upper()
        self.if_exists = if_exists


class AlterTableStmt(Statement):
    """``ALTER TABLE t ADD [COLUMN] <coldef>`` or ``DROP COLUMN c``."""

    def __init__(self, table: str, action: str,
                 column: "Column | None" = None,
                 column_name: str | None = None) -> None:
        self.table = table.upper()
        self.action = action  # "add" | "drop"
        self.column = column
        self.column_name = column_name.upper() if column_name else None


class CreateViewStmt(Statement):
    def __init__(self, name: str, select: "SelectStmt") -> None:
        self.name = name.upper()
        self.select = select


class DropViewStmt(Statement):
    def __init__(self, name: str, if_exists: bool = False) -> None:
        self.name = name.upper()
        self.if_exists = if_exists


class CreateIndexStmt(Statement):
    def __init__(self, name: str, table: str, columns: Sequence[str], unique: bool) -> None:
        self.name = name.upper()
        self.table = table.upper()
        self.columns = tuple(c.upper() for c in columns)
        self.unique = unique


class DropIndexStmt(Statement):
    def __init__(self, name: str) -> None:
        self.name = name.upper()


class InsertStmt(Statement):
    def __init__(
        self,
        table: str,
        columns: Sequence[str] | None,
        rows: Sequence[Sequence[Expression]],
        select: "SelectStmt | None" = None,
    ) -> None:
        self.table = table.upper()
        self.columns = [c.upper() for c in columns] if columns else None
        self.rows = [list(r) for r in rows]
        #: INSERT ... SELECT source (mutually exclusive with VALUES rows)
        self.select = select


class UpdateStmt(Statement):
    def __init__(
        self,
        table: str,
        assignments: Sequence[tuple[str, Expression]],
        where: Expression | None,
    ) -> None:
        self.table = table.upper()
        self.assignments = [(c.upper(), e) for c, e in assignments]
        self.where = where


class DeleteStmt(Statement):
    def __init__(self, table: str, where: Expression | None) -> None:
        self.table = table.upper()
        self.where = where


class SelectItem:
    """One entry of the select list: an expression with an optional alias,
    or a (possibly table-qualified) ``*``."""

    def __init__(
        self,
        expr: Expression | None,
        alias: str | None = None,
        star_table: str | None = None,
        is_star: bool = False,
    ) -> None:
        self.expr = expr
        self.alias = alias.upper() if alias else None
        self.star_table = star_table.upper() if star_table else None
        self.is_star = is_star


class TableRef:
    """A table in the FROM clause with an optional alias."""

    def __init__(self, name: str, alias: str | None = None) -> None:
        self.name = name.upper()
        self.alias = (alias or name).upper()


class Join:
    """An explicit JOIN clause."""

    def __init__(self, table: TableRef, on: Expression | None, kind: str = "INNER") -> None:
        self.table = table
        self.on = on
        self.kind = kind.upper()  # INNER or LEFT


class OrderItem:
    def __init__(self, expr: Expression, ascending: bool = True) -> None:
        self.expr = expr
        self.ascending = ascending


class SelectStmt(Statement):
    def __init__(
        self,
        items: Sequence[SelectItem],
        tables: Sequence[TableRef],
        joins: Sequence[Join],
        where: Expression | None,
        group_by: Sequence[Expression],
        having: Expression | None,
        order_by: Sequence[OrderItem],
        limit: int | None,
        offset: int | None,
        distinct: bool,
    ) -> None:
        self.items = list(items)
        self.tables = list(tables)
        self.joins = list(joins)
        self.where = where
        self.group_by = list(group_by)
        self.having = having
        self.order_by = list(order_by)
        self.limit = limit
        self.offset = offset
        self.distinct = distinct


class ExplainStmt(Statement):
    """``EXPLAIN [ANALYZE] SELECT ...`` — returns the chosen access paths
    as rows; with ANALYZE the query runs and each step reports measured
    row counts and timings."""

    def __init__(self, select: "SelectStmt", analyze: bool = False) -> None:
        self.select = select
        self.analyze = analyze


class UnionStmt(Statement):
    """``SELECT ... UNION [ALL] SELECT ...`` — a chain of compatible
    selects, deduplicated unless ALL."""

    def __init__(self, selects: Sequence[SelectStmt], all_rows: bool) -> None:
        if len(selects) < 2:
            raise ValueError("UNION needs at least two selects")
        self.selects = list(selects)
        self.all_rows = all_rows


class BeginStmt(Statement):
    pass


class CommitStmt(Statement):
    pass


class RollbackStmt(Statement):
    pass
