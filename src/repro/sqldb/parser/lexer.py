"""SQL tokeniser.

Produces a flat list of :class:`Token` objects.  Keywords are *not*
distinguished from identifiers at this level — the parser decides by
context, which lets schema authors use words like ``NAME`` or ``SIZE``
freely as column names.
"""

from __future__ import annotations

from repro.errors import SqlSyntaxError

__all__ = ["Token", "tokenize"]

# token kinds
IDENT = "IDENT"
STRING = "STRING"
NUMBER = "NUMBER"
OP = "OP"
PARAM = "PARAM"
EOF = "EOF"

_TWO_CHAR_OPS = ("<>", "<=", ">=", "!=", "||")
_ONE_CHAR_OPS = "+-*/%(),.=<>;"


class Token:
    """One lexical token with its source position (for error messages)."""

    __slots__ = ("kind", "value", "position", "quoted")

    def __init__(self, kind: str, value: str, position: int,
                 quoted: bool = False) -> None:
        self.kind = kind
        self.value = value
        self.position = position
        #: a quoted identifier ("UNIQUE") is never a keyword
        self.quoted = quoted

    @property
    def upper(self) -> str:
        return self.value.upper()

    def matches(self, keyword: str) -> bool:
        """True when this token is the given keyword (case-insensitive);
        quoted identifiers never match keywords."""
        return (
            self.kind == IDENT
            and not self.quoted
            and self.upper == keyword.upper()
        )

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, @{self.position})"


def tokenize(sql: str) -> list[Token]:
    """Tokenise ``sql``, raising :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        # comments
        if ch == "-" and sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "/" and sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise SqlSyntaxError("unterminated block comment", i)
            i = end + 2
            continue
        # string literal
        if ch == "'":
            value, i = _read_string(sql, i)
            tokens.append(Token(STRING, value, i))
            continue
        # quoted identifier
        if ch == '"':
            end = sql.find('"', i + 1)
            if end == -1:
                raise SqlSyntaxError("unterminated quoted identifier", i)
            tokens.append(Token(IDENT, sql[i + 1 : end], i, quoted=True))
            i = end + 1
            continue
        # number
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            value, i = _read_number(sql, i)
            tokens.append(Token(NUMBER, value, i))
            continue
        # identifier
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            tokens.append(Token(IDENT, sql[start:i], start))
            continue
        # parameter placeholder
        if ch == "?":
            tokens.append(Token(PARAM, "?", i))
            i += 1
            continue
        # operators
        if sql[i : i + 2] in _TWO_CHAR_OPS:
            tokens.append(Token(OP, sql[i : i + 2], i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(OP, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(EOF, "", n))
    return tokens


def _read_string(sql: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string with '' escaping."""
    i = start + 1
    out: list[str] = []
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise SqlSyntaxError("unterminated string literal", start)


def _read_number(sql: str, start: int) -> tuple[str, int]:
    i = start
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            # lookahead: exponent must be followed by digits or sign+digits
            j = i + 1
            if j < n and sql[j] in "+-":
                j += 1
            if j < n and sql[j].isdigit():
                seen_exp = True
                i = j
            else:
                break
        else:
            break
    return sql[start:i], i
