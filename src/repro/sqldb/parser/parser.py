"""Recursive-descent parser for the supported SQL subset.

Grammar highlights:

* ``CREATE TABLE`` with column types (including ``DATALINK`` plus the full
  SQL/MED option list), ``NOT NULL``, ``DEFAULT``, inline and table-level
  ``PRIMARY KEY`` / ``UNIQUE`` / ``FOREIGN KEY ... REFERENCES`` / ``CHECK``,
* ``CREATE [UNIQUE] INDEX`` / ``DROP INDEX`` / ``DROP TABLE``,
* ``INSERT`` (column list optional, multiple VALUES rows),
* ``UPDATE ... SET ... WHERE``, ``DELETE FROM ... WHERE``,
* ``SELECT [DISTINCT]`` with expressions, aliases, ``*`` and ``t.*``,
  comma-separated FROM lists, ``[INNER|LEFT] JOIN ... ON``, ``WHERE``,
  ``GROUP BY`` + aggregates + ``HAVING``, ``ORDER BY ... ASC|DESC``,
  ``LIMIT n [OFFSET m]``,
* ``BEGIN`` / ``COMMIT`` / ``ROLLBACK``,
* ``?`` positional parameters anywhere an expression is allowed.
"""

from __future__ import annotations

import datetime as _dt

from repro.errors import SqlSyntaxError
from repro.sqldb.expressions import (
    AGGREGATE_FUNCTIONS,
    AggregateCall,
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    ExistsSubquery,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    Parameter,
    Star,
    Subquery,
    UnaryOp,
)
from repro.sqldb.med import DatalinkSpec
from repro.sqldb.parser import lexer
from repro.sqldb.parser.ast_nodes import (
    AlterTableStmt,
    BeginStmt,
    CommitStmt,
    CreateIndexStmt,
    CreateTableStmt,
    CreateViewStmt,
    DeleteStmt,
    DropIndexStmt,
    DropTableStmt,
    DropViewStmt,
    ExplainStmt,
    InsertStmt,
    Join,
    OrderItem,
    RollbackStmt,
    SelectItem,
    SelectStmt,
    Statement,
    TableRef,
    UnionStmt,
    UpdateStmt,
)
from repro.sqldb.schema import Column, ForeignKey
from repro.sqldb.types import DatalinkType, type_from_name

__all__ = ["parse_sql", "parse_script"]

_SIZED_TYPE_NAMES = {"VARCHAR", "CHAR"}
_TYPE_NAMES = {
    "INTEGER", "INT", "BIGINT", "SMALLINT", "DOUBLE", "FLOAT", "REAL",
    "BOOLEAN", "DATE", "TIMESTAMP", "BLOB", "CLOB", "DATALINK",
} | _SIZED_TYPE_NAMES

# keywords that terminate a FROM-clause table list
_CLAUSE_KEYWORDS = {
    "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET",
    "JOIN", "INNER", "LEFT", "ON", "AND", "OR", "UNION",
}

# words that may never be bare column references — catches malformed SQL
# like "SELECT FROM t" early instead of treating FROM as a column
_RESERVED = {
    "SELECT", "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT",
    "OFFSET", "JOIN", "INNER", "LEFT", "ON", "AND", "OR", "NOT",
    "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "INTO", "VALUES",
    "SET", "AS", "DISTINCT", "UNION", "IS", "LIKE", "IN", "BETWEEN",
    "PRIMARY", "FOREIGN", "REFERENCES", "CHECK", "DEFAULT", "TABLE",
    "INDEX", "BEGIN", "COMMIT", "ROLLBACK", "BY", "ASC", "DESC",
    "CASE", "WHEN", "THEN", "ELSE", "END", "EXISTS", "VIEW",
}


def parse_sql(sql: str) -> Statement:
    """Parse a single SQL statement."""
    parser = _Parser(sql)
    stmt = parser.parse_statement()
    parser.accept_op(";")
    parser.expect_eof()
    return stmt


def parse_script(sql: str) -> list[Statement]:
    """Parse a ``;``-separated script into a statement list."""
    return [stmt for stmt, _text in parse_script_with_sql(sql)]


def parse_script_with_sql(sql: str) -> list[tuple[Statement, str]]:
    """Parse a script into ``(statement, source_text)`` pairs.

    The text slice covers the statement without its terminating ``;``, so
    tracing and slow-query logging can attribute script statements to the
    SQL that produced them.
    """
    parser = _Parser(sql)
    out: list[tuple[Statement, str]] = []
    while not parser.at_eof():
        start = parser.peek().position
        stmt = parser.parse_statement()
        end = parser.peek().position if not parser.at_eof() else len(sql)
        out.append((stmt, sql[start:end].strip()))
        if not parser.accept_op(";"):
            break
    parser.expect_eof()
    return out


class _Parser:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = lexer.tokenize(sql)
        self.pos = 0
        self._param_count = 0

    # -- token helpers -------------------------------------------------------

    def peek(self, offset: int = 0) -> lexer.Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> lexer.Token:
        token = self.tokens[self.pos]
        if token.kind != lexer.EOF:
            self.pos += 1
        return token

    def at_eof(self) -> bool:
        return self.peek().kind == lexer.EOF

    def error(self, message: str) -> SqlSyntaxError:
        token = self.peek()
        where = f" near {token.value!r}" if token.value else " at end of input"
        return SqlSyntaxError(message + where, token.position)

    def accept_kw(self, *keywords: str) -> bool:
        """Consume the next token(s) if they match the keyword sequence."""
        for i, keyword in enumerate(keywords):
            if not self.peek(i).matches(keyword):
                return False
        self.pos += len(keywords)
        return True

    def expect_kw(self, *keywords: str) -> None:
        if not self.accept_kw(*keywords):
            raise self.error(f"expected {' '.join(keywords)}")

    def accept_op(self, op: str) -> bool:
        token = self.peek()
        if token.kind == lexer.OP and token.value == op:
            self.pos += 1
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise self.error(f"expected {op!r}")

    def expect_ident(self, what: str = "identifier") -> str:
        token = self.peek()
        if token.kind != lexer.IDENT:
            raise self.error(f"expected {what}")
        self.advance()
        return token.value

    def expect_eof(self) -> None:
        if not self.at_eof():
            raise self.error("unexpected trailing input")

    def peek_kw(self, keyword: str, offset: int = 0) -> bool:
        return self.peek(offset).matches(keyword)

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> Statement:
        token = self.peek()
        if token.kind != lexer.IDENT:
            raise self.error("expected a statement")
        head = token.upper
        if head == "CREATE":
            return self._parse_create()
        if head == "ALTER":
            return self._parse_alter()
        if head == "DROP":
            return self._parse_drop()
        if head == "INSERT":
            return self._parse_insert()
        if head == "UPDATE":
            return self._parse_update()
        if head == "DELETE":
            return self._parse_delete()
        if head == "SELECT":
            return self._parse_select_or_union()
        if head == "EXPLAIN":
            self.advance()
            analyze = self.accept_kw("ANALYZE")
            inner = self.parse_statement()
            if not isinstance(inner, SelectStmt):
                raise self.error("EXPLAIN supports SELECT only")
            return ExplainStmt(inner, analyze=analyze)
        if head in ("BEGIN", "START"):
            self.advance()
            self.accept_kw("TRANSACTION") or self.accept_kw("WORK")
            return BeginStmt()
        if head == "COMMIT":
            self.advance()
            self.accept_kw("TRANSACTION") or self.accept_kw("WORK")
            return CommitStmt()
        if head == "ROLLBACK":
            self.advance()
            self.accept_kw("TRANSACTION") or self.accept_kw("WORK")
            return RollbackStmt()
        raise self.error(f"unsupported statement {head}")

    # -- DDL -----------------------------------------------------------------

    def _parse_create(self) -> Statement:
        self.expect_kw("CREATE")
        if self.peek_kw("TABLE"):
            return self._parse_create_table()
        if self.accept_kw("VIEW"):
            name = self.expect_ident("view name")
            self.expect_kw("AS")
            return CreateViewStmt(name, self._parse_select())
        unique = self.accept_kw("UNIQUE")
        if self.accept_kw("INDEX"):
            name = self.expect_ident("index name")
            self.expect_kw("ON")
            table = self.expect_ident("table name")
            self.expect_op("(")
            columns = [self.expect_ident("column name")]
            while self.accept_op(","):
                columns.append(self.expect_ident("column name"))
            self.expect_op(")")
            return CreateIndexStmt(name, table, columns, unique)
        raise self.error("expected TABLE or [UNIQUE] INDEX after CREATE")

    def _parse_create_table(self) -> CreateTableStmt:
        self.expect_kw("TABLE")
        if_not_exists = self.accept_kw("IF", "NOT", "EXISTS")
        name = self.expect_ident("table name")
        self.expect_op("(")

        columns: list[Column] = []
        primary_key: tuple[str, ...] = ()
        foreign_keys: list[ForeignKey] = []
        unique_sets: list[tuple[str, ...]] = []
        checks: list[Expression] = []

        while True:
            if self.accept_kw("PRIMARY", "KEY"):
                if primary_key:
                    raise self.error("duplicate PRIMARY KEY clause")
                primary_key = tuple(self._parse_paren_name_list())
            elif self.accept_kw("FOREIGN", "KEY"):
                cols = self._parse_paren_name_list()
                self.expect_kw("REFERENCES")
                ref_table = self.expect_ident("referenced table")
                ref_cols = self._parse_paren_name_list()
                foreign_keys.append(ForeignKey(cols, ref_table, ref_cols))
            elif self.accept_kw("UNIQUE"):
                unique_sets.append(tuple(self._parse_paren_name_list()))
            elif self.accept_kw("CHECK"):
                self.expect_op("(")
                checks.append(self.parse_expression())
                self.expect_op(")")
            else:
                column, inline = self._parse_column_def()
                columns.append(column)
                if inline.get("primary_key"):
                    if primary_key:
                        raise self.error("duplicate PRIMARY KEY clause")
                    primary_key = (column.name,)
                if inline.get("unique"):
                    unique_sets.append((column.name,))
                if "references" in inline:
                    ref_table, ref_col = inline["references"]
                    foreign_keys.append(
                        ForeignKey([column.name], ref_table, [ref_col])
                    )
                if "check" in inline:
                    checks.append(inline["check"])
            if not self.accept_op(","):
                break
        self.expect_op(")")
        return CreateTableStmt(
            name, columns, primary_key, foreign_keys, unique_sets, checks,
            if_not_exists,
        )

    def _parse_paren_name_list(self) -> list[str]:
        self.expect_op("(")
        names = [self.expect_ident("column name")]
        while self.accept_op(","):
            names.append(self.expect_ident("column name"))
        self.expect_op(")")
        return names

    def _parse_column_def(self) -> tuple[Column, dict]:
        name = self.expect_ident("column name")
        type_token = self.peek()
        if type_token.kind != lexer.IDENT or type_token.upper not in _TYPE_NAMES:
            raise self.error(f"expected a type for column {name}")
        self.advance()
        type_name = type_token.upper
        size = None
        if self.accept_op("("):
            size_token = self.advance()
            if size_token.kind != lexer.NUMBER:
                raise self.error("expected a size")
            size = int(size_token.value)
            self.expect_op(")")
        sql_type = type_from_name(type_name, size)
        if isinstance(sql_type, DatalinkType):
            sql_type.spec = self._parse_datalink_options()

        nullable = True
        default = None
        inline: dict = {}
        while True:
            if self.accept_kw("NOT", "NULL"):
                nullable = False
            elif self.accept_kw("PRIMARY", "KEY"):
                inline["primary_key"] = True
            elif self.accept_kw("UNIQUE"):
                inline["unique"] = True
            elif self.accept_kw("DEFAULT"):
                default = self._parse_literal_value()
            elif self.accept_kw("REFERENCES"):
                ref_table = self.expect_ident("referenced table")
                ref_cols = self._parse_paren_name_list()
                if len(ref_cols) != 1:
                    raise self.error("inline REFERENCES takes one column")
                inline["references"] = (ref_table, ref_cols[0])
            elif self.accept_kw("CHECK"):
                self.expect_op("(")
                inline["check"] = self.parse_expression()
                self.expect_op(")")
            else:
                break
        return Column(name, sql_type, nullable=nullable, default=default), inline

    def _parse_datalink_options(self) -> DatalinkSpec:
        """Parse the SQL/MED option list after the DATALINK keyword."""
        link_control = False
        saw_control_clause = False
        integrity = "NONE"
        read_permission = "FS"
        write_permission = "FS"
        recovery = False
        on_unlink = "NONE"
        while True:
            if self.accept_kw("LINKTYPE"):
                self.expect_kw("URL")
            elif self.accept_kw("FILE", "LINK", "CONTROL"):
                link_control = True
                saw_control_clause = True
            elif self.accept_kw("NO", "LINK", "CONTROL"):
                link_control = False
                saw_control_clause = True
            elif self.accept_kw("INTEGRITY"):
                integrity = self.expect_ident("ALL/SELECTIVE/NONE").upper()
            elif self.accept_kw("READ", "PERMISSION"):
                read_permission = self.expect_ident("FS or DB").upper()
            elif self.accept_kw("WRITE", "PERMISSION"):
                write_permission = self.expect_ident("FS or BLOCKED").upper()
            elif self.accept_kw("RECOVERY"):
                word = self.expect_ident("YES or NO").upper()
                recovery = word == "YES"
            elif self.accept_kw("ON", "UNLINK"):
                on_unlink = self.expect_ident("RESTORE or DELETE").upper()
            else:
                break
        if not saw_control_clause and (
            integrity != "NONE" or read_permission != "FS" or recovery
        ):
            # Options that need control imply FILE LINK CONTROL.
            link_control = True
        return DatalinkSpec(
            link_control=link_control,
            integrity=integrity,
            read_permission=read_permission,
            write_permission=write_permission,
            recovery=recovery,
            on_unlink=on_unlink,
        )

    def _parse_literal_value(self):
        """A literal for DEFAULT clauses (no expressions)."""
        token = self.peek()
        if token.kind == lexer.STRING:
            self.advance()
            return token.value
        if token.kind == lexer.NUMBER:
            self.advance()
            return _number_value(token.value)
        if token.kind == lexer.IDENT:
            upper = token.upper
            if upper == "NULL":
                self.advance()
                return None
            if upper in ("TRUE", "FALSE"):
                self.advance()
                return upper == "TRUE"
            if upper in ("DATE", "TIMESTAMP") and self.peek(1).kind == lexer.STRING:
                self.advance()
                text = self.advance().value
                if upper == "DATE":
                    return _dt.date.fromisoformat(text)
                return _dt.datetime.fromisoformat(text)
        if token.kind == lexer.OP and token.value == "-":
            self.advance()
            number = self.advance()
            if number.kind != lexer.NUMBER:
                raise self.error("expected a number after '-'")
            return -_number_value(number.value)
        raise self.error("expected a literal")

    def _parse_alter(self) -> Statement:
        self.expect_kw("ALTER")
        self.expect_kw("TABLE")
        table = self.expect_ident("table name")
        if self.accept_kw("ADD"):
            self.accept_kw("COLUMN")
            column, inline = self._parse_column_def()
            if inline:
                raise self.error(
                    "ALTER TABLE ADD COLUMN does not accept key constraints"
                )
            return AlterTableStmt(table, "add", column=column)
        if self.accept_kw("DROP"):
            self.accept_kw("COLUMN")
            name = self.expect_ident("column name")
            return AlterTableStmt(table, "drop", column_name=name)
        raise self.error("expected ADD or DROP after ALTER TABLE <name>")

    def _parse_drop(self) -> Statement:
        self.expect_kw("DROP")
        if self.accept_kw("TABLE"):
            if_exists = self.accept_kw("IF", "EXISTS")
            name = self.expect_ident("table name")
            return DropTableStmt(name, if_exists)
        if self.accept_kw("VIEW"):
            if_exists = self.accept_kw("IF", "EXISTS")
            name = self.expect_ident("view name")
            return DropViewStmt(name, if_exists)
        if self.accept_kw("INDEX"):
            name = self.expect_ident("index name")
            return DropIndexStmt(name)
        raise self.error("expected TABLE, VIEW or INDEX after DROP")

    # -- DML -----------------------------------------------------------------

    def _parse_insert(self) -> InsertStmt:
        self.expect_kw("INSERT")
        self.expect_kw("INTO")
        table = self.expect_ident("table name")
        columns = None
        if self.peek().kind == lexer.OP and self.peek().value == "(":
            columns = self._parse_paren_name_list()
        if self.peek_kw("SELECT"):
            return InsertStmt(table, columns, [], select=self._parse_select())
        self.expect_kw("VALUES")
        rows = [self._parse_value_row()]
        while self.accept_op(","):
            rows.append(self._parse_value_row())
        return InsertStmt(table, columns, rows)

    def _parse_value_row(self) -> list[Expression]:
        self.expect_op("(")
        row = [self.parse_expression()]
        while self.accept_op(","):
            row.append(self.parse_expression())
        self.expect_op(")")
        return row

    def _parse_update(self) -> UpdateStmt:
        self.expect_kw("UPDATE")
        table = self.expect_ident("table name")
        self.expect_kw("SET")
        assignments = [self._parse_assignment()]
        while self.accept_op(","):
            assignments.append(self._parse_assignment())
        where = None
        if self.accept_kw("WHERE"):
            where = self.parse_expression()
        return UpdateStmt(table, assignments, where)

    def _parse_assignment(self) -> tuple[str, Expression]:
        column = self.expect_ident("column name")
        self.expect_op("=")
        return column, self.parse_expression()

    def _parse_delete(self) -> DeleteStmt:
        self.expect_kw("DELETE")
        self.expect_kw("FROM")
        table = self.expect_ident("table name")
        where = None
        if self.accept_kw("WHERE"):
            where = self.parse_expression()
        return DeleteStmt(table, where)

    # -- SELECT ---------------------------------------------------------------

    def _parse_select_or_union(self) -> Statement:
        first = self._parse_select()
        if not self.peek_kw("UNION"):
            return first
        selects = [first]
        all_flags: set[bool] = set()
        while self.accept_kw("UNION"):
            all_flags.add(self.accept_kw("ALL"))
            selects.append(self._parse_select())
        if len(all_flags) > 1:
            raise self.error("cannot mix UNION and UNION ALL")
        return UnionStmt(selects, all_rows=all_flags.pop())

    def _parse_select(self) -> SelectStmt:
        self.expect_kw("SELECT")
        distinct = self.accept_kw("DISTINCT")
        self.accept_kw("ALL")
        items = [self._parse_select_item()]
        while self.accept_op(","):
            items.append(self._parse_select_item())

        tables: list[TableRef] = []
        joins: list[Join] = []
        if self.accept_kw("FROM"):
            tables.append(self._parse_table_ref())
            while True:
                if self.accept_op(","):
                    tables.append(self._parse_table_ref())
                    continue
                kind = None
                if self.accept_kw("INNER", "JOIN") or (
                    not self.peek_kw("LEFT") and self.accept_kw("JOIN")
                ):
                    kind = "INNER"
                elif self.accept_kw("LEFT", "OUTER", "JOIN") or self.accept_kw("LEFT", "JOIN"):
                    kind = "LEFT"
                if kind is None:
                    break
                ref = self._parse_table_ref()
                self.expect_kw("ON")
                on = self.parse_expression()
                joins.append(Join(ref, on, kind))

        where = None
        if self.accept_kw("WHERE"):
            where = self.parse_expression()
        group_by: list[Expression] = []
        if self.accept_kw("GROUP", "BY"):
            group_by.append(self.parse_expression())
            while self.accept_op(","):
                group_by.append(self.parse_expression())
        having = None
        if self.accept_kw("HAVING"):
            having = self.parse_expression()
        order_by: list[OrderItem] = []
        if self.accept_kw("ORDER", "BY"):
            order_by.append(self._parse_order_item())
            while self.accept_op(","):
                order_by.append(self._parse_order_item())
        limit = offset = None
        if self.accept_kw("LIMIT"):
            limit = self._parse_nonnegative_int("LIMIT")
            if self.accept_kw("OFFSET"):
                offset = self._parse_nonnegative_int("OFFSET")
        elif self.accept_kw("OFFSET"):
            offset = self._parse_nonnegative_int("OFFSET")
        return SelectStmt(
            items, tables, joins, where, group_by, having, order_by,
            limit, offset, distinct,
        )

    def _parse_nonnegative_int(self, what: str) -> int:
        token = self.advance()
        if token.kind != lexer.NUMBER or "." in token.value:
            raise self.error(f"expected an integer after {what}")
        return int(token.value)

    def _parse_select_item(self) -> SelectItem:
        token = self.peek()
        if token.kind == lexer.OP and token.value == "*":
            self.advance()
            return SelectItem(None, is_star=True)
        # table.*
        if (
            token.kind == lexer.IDENT
            and self.peek(1).kind == lexer.OP
            and self.peek(1).value == "."
            and self.peek(2).kind == lexer.OP
            and self.peek(2).value == "*"
        ):
            self.advance()
            self.advance()
            self.advance()
            return SelectItem(None, star_table=token.value, is_star=True)
        expr = self.parse_expression()
        alias = None
        if self.accept_kw("AS"):
            alias = self.expect_ident("alias")
        elif (
            self.peek().kind == lexer.IDENT
            and self.peek().upper not in _CLAUSE_KEYWORDS
            and self.peek().upper != "FROM"
        ):
            alias = self.advance().value
        return SelectItem(expr, alias=alias)

    def _parse_table_ref(self) -> TableRef:
        name = self.expect_ident("table name")
        alias = None
        if self.accept_kw("AS"):
            alias = self.expect_ident("alias")
        elif (
            self.peek().kind == lexer.IDENT
            and self.peek().upper not in _CLAUSE_KEYWORDS
        ):
            alias = self.advance().value
        return TableRef(name, alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expression()
        ascending = True
        if self.accept_kw("DESC"):
            ascending = False
        else:
            self.accept_kw("ASC")
        return OrderItem(expr, ascending)

    # -- expressions -----------------------------------------------------------

    def parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.accept_kw("OR"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self.accept_kw("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self.peek_kw("NOT") and self.peek_kw("EXISTS", 1):
            self.advance()
            return self._parse_exists(negated=True)
        if self.accept_kw("NOT"):
            return UnaryOp("NOT", self._parse_not())
        if self.peek_kw("EXISTS"):
            return self._parse_exists(negated=False)
        return self._parse_predicate()

    def _parse_exists(self, negated: bool) -> Expression:
        self.expect_kw("EXISTS")
        self.expect_op("(")
        select = self._parse_select()
        self.expect_op(")")
        return ExistsSubquery(select, negated=negated)

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        token = self.peek()
        if token.kind == lexer.OP and token.value in ("=", "<>", "!=", "<", "<=", ">", ">="):
            self.advance()
            return BinaryOp(token.value, left, self._parse_additive())
        negated = False
        if self.peek_kw("NOT") and self.peek(1).kind == lexer.IDENT and self.peek(1).upper in ("LIKE", "IN", "BETWEEN"):
            self.advance()
            negated = True
        if self.accept_kw("LIKE"):
            return Like(left, self._parse_additive(), negated=negated)
        if self.accept_kw("IN"):
            self.expect_op("(")
            if self.peek_kw("SELECT"):
                select = self._parse_select()
                self.expect_op(")")
                return InSubquery(left, select, negated=negated)
            items = [self.parse_expression()]
            while self.accept_op(","):
                items.append(self.parse_expression())
            self.expect_op(")")
            return InList(left, items, negated=negated)
        if self.accept_kw("BETWEEN"):
            low = self._parse_additive()
            self.expect_kw("AND")
            high = self._parse_additive()
            return Between(left, low, high, negated=negated)
        if negated:
            raise self.error("expected LIKE, IN or BETWEEN after NOT")
        if self.accept_kw("IS"):
            is_negated = self.accept_kw("NOT")
            self.expect_kw("NULL")
            return IsNull(left, negated=is_negated)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == lexer.OP and token.value in ("+", "-", "||"):
                self.advance()
                left = BinaryOp(token.value, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self.peek()
            if token.kind == lexer.OP and token.value in ("*", "/", "%"):
                self.advance()
                left = BinaryOp(token.value, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expression:
        token = self.peek()
        if token.kind == lexer.OP and token.value in ("-", "+"):
            self.advance()
            return UnaryOp(token.value, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self.peek()
        if token.kind == lexer.STRING:
            self.advance()
            return Literal(token.value)
        if token.kind == lexer.NUMBER:
            self.advance()
            return Literal(_number_value(token.value))
        if token.kind == lexer.PARAM:
            self.advance()
            param = Parameter(self._param_count)
            self._param_count += 1
            return param
        if token.kind == lexer.OP and token.value == "(":
            self.advance()
            if self.peek_kw("SELECT"):
                select = self._parse_select()
                self.expect_op(")")
                return Subquery(select)
            expr = self.parse_expression()
            self.expect_op(")")
            return expr
        if token.kind == lexer.IDENT:
            upper = token.upper
            if upper == "CASE":
                return self._parse_case()
            if upper == "NULL":
                self.advance()
                return Literal(None)
            if upper in ("TRUE", "FALSE"):
                self.advance()
                return Literal(upper == "TRUE")
            if upper in ("DATE", "TIMESTAMP") and self.peek(1).kind == lexer.STRING:
                self.advance()
                text = self.advance().value
                try:
                    if upper == "DATE":
                        return Literal(_dt.date.fromisoformat(text))
                    return Literal(_dt.datetime.fromisoformat(text))
                except ValueError:
                    raise self.error(f"bad {upper} literal {text!r}")
            # function call
            if self.peek(1).kind == lexer.OP and self.peek(1).value == "(":
                return self._parse_call()
            if upper in _RESERVED:
                raise self.error("expected an expression")
            # column reference, possibly qualified
            self.advance()
            if self.peek().kind == lexer.OP and self.peek().value == ".":
                self.advance()
                column = self.expect_ident("column name")
                return ColumnRef(column, table=token.value)
            return ColumnRef(token.value)
        raise self.error("expected an expression")

    def _parse_case(self) -> Expression:
        self.expect_kw("CASE")
        branches: list[tuple[Expression, Expression]] = []
        while self.accept_kw("WHEN"):
            condition = self.parse_expression()
            self.expect_kw("THEN")
            branches.append((condition, self.parse_expression()))
        if not branches:
            raise self.error("CASE needs at least one WHEN")
        default = None
        if self.accept_kw("ELSE"):
            default = self.parse_expression()
        self.expect_kw("END")
        return CaseExpression(branches, default)

    def _parse_call(self) -> Expression:
        name = self.advance().upper
        self.expect_op("(")
        if name in AGGREGATE_FUNCTIONS:
            if self.accept_op("*"):
                self.expect_op(")")
                return AggregateCall(name, Star())
            distinct = self.accept_kw("DISTINCT")
            arg = self.parse_expression()
            self.expect_op(")")
            return AggregateCall(name, arg, distinct=distinct)
        args: list[Expression] = []
        if not self.accept_op(")"):
            args.append(self.parse_expression())
            while self.accept_op(","):
                args.append(self.parse_expression())
            self.expect_op(")")
        return FunctionCall(name, args)


def _number_value(text: str) -> int | float:
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text)
