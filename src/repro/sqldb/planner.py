"""Rule/cost-based planning for the SELECT executor.

The executor consults these functions to decide, per table in the FROM
clause, between a sequential scan, an index point lookup and a sorted-index
range scan, and per join between an index nested loop, a hash join and a
plain nested loop.  The analysis layer here is purely syntactic — it never
touches rows — and covers:

* conjunct extraction from WHERE clauses,
* ``column = constant`` detection for index point lookups,
* equi-join key detection (``a.x = b.y``) for index nested-loop and hash
  joins,
* range-bound extraction (``<``, ``<=``, ``>``, ``>=``, ``BETWEEN`` and
  LIKE prefixes like ``'abc%'``) merged per column for
  :meth:`SortedIndex.range_scan`,
* predicate *pushdown* assignment: each WHERE conjunct is attached to the
  earliest pipeline position (base scan or join output) whose tables cover
  all of its column references, so rows are filtered as soon as possible
  instead of after the full join pipeline.

Range scans are chosen as a *superset* access path: the originating
predicate is always re-applied as a pushed filter, so an approximate bound
(e.g. a LIKE prefix over a padded CHAR column) can never produce wrong
rows, only extra candidate rows.

:func:`explain` renders the chosen access paths as text, which the tests
use to pin down that indexes and join strategies are actually exercised.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.sqldb.expressions import (
    AggregateCall,
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    ExistsSubquery,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    Parameter,
    Star,
    Subquery,
    UnaryOp,
)

__all__ = [
    "conjuncts",
    "constant_equalities",
    "join_equalities",
    "range_bounds",
    "like_prefix",
    "assign_filters",
    "ColumnRange",
    "describe",
    "explain",
]


def conjuncts(expr: Expression | None) -> list[Expression]:
    """Split a predicate on top-level ANDs."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def _constant_side(expr: Expression) -> bool:
    return isinstance(expr, (Literal, Parameter))


def constant_equalities(
    predicates: Sequence[Expression],
    params: Sequence[Any],
) -> list[tuple[ColumnRef, Any]]:
    """Extract ``column = constant`` bindings usable for index lookups.

    Returns ``(column_ref, value)`` pairs; parameters are resolved against
    ``params`` so prepared statements benefit from indexes too.
    """
    out: list[tuple[ColumnRef, Any]] = []
    for predicate in predicates:
        if not (isinstance(predicate, BinaryOp) and predicate.op == "="):
            continue
        left, right = predicate.left, predicate.right
        if isinstance(left, ColumnRef) and _constant_side(right):
            value = right.evaluate({}, params)
            out.append((left, value))
        elif isinstance(right, ColumnRef) and _constant_side(left):
            value = left.evaluate({}, params)
            out.append((right, value))
    return out


def join_equalities(
    on: Expression | None,
    right_alias: str,
) -> list[tuple[ColumnRef, ColumnRef]]:
    """Extract ``outer.col = inner.col`` pairs from a join condition.

    Returns pairs ``(outer_ref, inner_ref)`` where ``inner_ref`` belongs to
    the table being joined (``right_alias``); these drive index lookups or
    the hash-join build on the inner table.
    """
    pairs: list[tuple[ColumnRef, ColumnRef]] = []
    for predicate in conjuncts(on):
        if not (isinstance(predicate, BinaryOp) and predicate.op == "="):
            continue
        left, right = predicate.left, predicate.right
        if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
            continue
        if right.table == right_alias and left.table != right_alias:
            pairs.append((left, right))
        elif left.table == right_alias and right.table != right_alias:
            pairs.append((right, left))
    return pairs


# -- range analysis -------------------------------------------------------------

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


class ColumnRange:
    """Merged lower/upper bounds on one column, from one or more conjuncts.

    ``low``/``high`` of ``None`` mean unbounded on that side.  Bounds are
    tightened with plain comparisons; incomparable constants leave the
    existing bound in place (the pushed residual filter stays correct).
    """

    __slots__ = ("ref", "low", "high", "include_low", "include_high")

    def __init__(self, ref: ColumnRef) -> None:
        self.ref = ref
        self.low: Any = None
        self.high: Any = None
        self.include_low = True
        self.include_high = True

    def tighten(self, op: str, value: Any) -> None:
        if value is None:
            return  # col > NULL matches nothing; leave it to the filter
        try:
            if op in (">", ">="):
                include = op == ">="
                if (
                    self.low is None
                    or value > self.low
                    or (value == self.low and self.include_low and not include)
                ):
                    self.low, self.include_low = value, include
            else:  # < or <=
                include = op == "<="
                if (
                    self.high is None
                    or value < self.high
                    or (value == self.high and self.include_high and not include)
                ):
                    self.high, self.include_high = value, include
        except TypeError:
            pass  # incomparable with the existing bound: keep the old one

    def describe(self) -> str:
        if self.low is not None and self.high is not None:
            lo_op = "<=" if self.include_low else "<"
            hi_op = "<=" if self.include_high else "<"
            return f"{self.low!r} {lo_op} {self.ref.key} {hi_op} {self.high!r}"
        if self.low is not None:
            op = ">=" if self.include_low else ">"
            return f"{self.ref.key} {op} {self.low!r}"
        op = "<=" if self.include_high else "<"
        return f"{self.ref.key} {op} {self.high!r}"


def like_prefix(pattern: str) -> str | None:
    """The literal prefix of a LIKE pattern before the first wildcard.

    ``'abc%'`` -> ``'abc'``; a pattern starting with a wildcard (or an
    empty prefix) yields ``None`` — no range is derivable.
    """
    prefix = []
    for ch in pattern:
        if ch in ("%", "_"):
            break
        prefix.append(ch)
    return "".join(prefix) or None


def _range_constraints(
    predicate: Expression, params: Sequence[Any]
) -> list[tuple[ColumnRef, str, Any]]:
    """``(column, op, constant)`` bounds implied by one conjunct."""
    out: list[tuple[ColumnRef, str, Any]] = []
    if isinstance(predicate, BinaryOp) and predicate.op in _FLIPPED:
        left, right = predicate.left, predicate.right
        if isinstance(left, ColumnRef) and _constant_side(right):
            out.append((left, predicate.op, right.evaluate({}, params)))
        elif isinstance(right, ColumnRef) and _constant_side(left):
            out.append((right, _FLIPPED[predicate.op], left.evaluate({}, params)))
    elif isinstance(predicate, Between) and not predicate.negated:
        if isinstance(predicate.operand, ColumnRef):
            if _constant_side(predicate.low):
                out.append(
                    (predicate.operand, ">=", predicate.low.evaluate({}, params))
                )
            if _constant_side(predicate.high):
                out.append(
                    (predicate.operand, "<=", predicate.high.evaluate({}, params))
                )
    elif isinstance(predicate, Like) and not predicate.negated:
        if isinstance(predicate.operand, ColumnRef) and _constant_side(
            predicate.pattern
        ):
            pattern = predicate.pattern.evaluate({}, params)
            if isinstance(pattern, str):
                prefix = like_prefix(pattern)
                if prefix is not None and ord(prefix[-1]) < 0x10FFFF:
                    upper = prefix[:-1] + chr(ord(prefix[-1]) + 1)
                    out.append((predicate.operand, ">=", prefix))
                    out.append((predicate.operand, "<", upper))
    return out


def range_bounds(
    predicates: Sequence[Expression],
    params: Sequence[Any],
) -> list[ColumnRange]:
    """Merged per-column range bounds implied by the WHERE conjuncts.

    ``x > 1 AND x < 9`` folds into one :class:`ColumnRange`; columns with
    no inequality/BETWEEN/LIKE-prefix constraint are absent.
    """
    ranges: dict[str, ColumnRange] = {}
    for predicate in predicates:
        for ref, op, value in _range_constraints(predicate, params):
            ranges.setdefault(ref.key, ColumnRange(ref)).tighten(op, value)
    return [
        r for r in ranges.values() if r.low is not None or r.high is not None
    ]


# -- predicate pushdown ---------------------------------------------------------


def assign_filters(
    predicates: Sequence[Expression],
    aliases: Sequence[str],
    unambiguous: dict[str, str],
) -> tuple[list[list[Expression]], list[Expression]]:
    """Attach each conjunct to the earliest pipeline position that covers it.

    Position ``i`` means "right after table ``aliases[i]`` joins the
    pipeline" (position 0 is the base-table scan).  A conjunct lands at the
    highest position of any alias it references; conjuncts referencing
    unknown aliases, ambiguous bare columns or aggregates stay in the
    returned ``residual`` list and run after the full pipeline, preserving
    the naive path's error behaviour.
    """
    positions = {alias: i for i, alias in enumerate(aliases)}
    stages: list[list[Expression]] = [[] for _ in aliases]
    residual: list[Expression] = []
    for predicate in predicates:
        position = 0
        pushable = bool(aliases) and not predicate.contains_aggregate()
        if pushable:
            for ref in predicate.column_refs():
                alias = ref.table if ref.table is not None else unambiguous.get(
                    ref.column
                )
                index = positions.get(alias) if alias is not None else None
                if index is None:
                    pushable = False
                    break
                position = max(position, index)
        if pushable:
            stages[position].append(predicate)
        else:
            residual.append(predicate)
    return stages, residual


def single_alias_filters(
    filters: Sequence[Expression],
    alias: str,
    unambiguous: dict[str, str],
) -> tuple[list[Expression], list[Expression]]:
    """Split ``filters`` into (only-``alias``, rest).

    The first group can run while the join's inner side is materialised
    (shrinking a hash-join build or a nested-loop inner cache); only valid
    for INNER/CROSS joins — the caller must not use it under LEFT joins,
    where WHERE filters apply to the null-extended output.
    """
    own: list[Expression] = []
    rest: list[Expression] = []
    for predicate in filters:
        refs = predicate.column_refs()
        if refs and all(
            (ref.table or unambiguous.get(ref.column)) == alias for ref in refs
        ):
            own.append(predicate)
        else:
            rest.append(predicate)
    return own, rest


# -- rendering ------------------------------------------------------------------


def describe(expr: Expression) -> str:
    """Compact SQL-ish rendering of an expression, for EXPLAIN output."""
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, Parameter):
        return f"?{expr.index + 1}"
    if isinstance(expr, ColumnRef):
        return expr.key
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, BinaryOp):
        return f"{describe(expr.left)} {expr.op} {describe(expr.right)}"
    if isinstance(expr, UnaryOp):
        return f"{expr.op} {describe(expr.operand)}"
    if isinstance(expr, IsNull):
        negated = " NOT" if expr.negated else ""
        return f"{describe(expr.operand)} IS{negated} NULL"
    if isinstance(expr, Like):
        negated = "NOT " if expr.negated else ""
        return f"{describe(expr.operand)} {negated}LIKE {describe(expr.pattern)}"
    if isinstance(expr, Between):
        negated = "NOT " if expr.negated else ""
        return (
            f"{describe(expr.operand)} {negated}BETWEEN "
            f"{describe(expr.low)} AND {describe(expr.high)}"
        )
    if isinstance(expr, InList):
        negated = "NOT " if expr.negated else ""
        items = ", ".join(describe(item) for item in expr.items)
        return f"{describe(expr.operand)} {negated}IN ({items})"
    if isinstance(expr, InSubquery):
        negated = "NOT " if expr.negated else ""
        return f"{describe(expr.operand)} {negated}IN (subquery)"
    if isinstance(expr, ExistsSubquery):
        negated = "NOT " if expr.negated else ""
        return f"{negated}EXISTS (subquery)"
    if isinstance(expr, Subquery):
        return "(subquery)"
    if isinstance(expr, FunctionCall):
        return f"{expr.name}({', '.join(describe(a) for a in expr.args)})"
    if isinstance(expr, AggregateCall):
        return f"{expr.name}({describe(expr.arg)})"
    if isinstance(expr, CaseExpression):
        return "CASE ... END"
    return type(expr).__name__


def explain(plan_steps: list[str]) -> str:
    """Render executor-reported plan steps as an EXPLAIN-style string."""
    return "\n".join(f"{i + 1}. {step}" for i, step in enumerate(plan_steps))
