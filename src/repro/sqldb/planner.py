"""Light-weight rule-based planning helpers.

The executor consults these functions to decide between a sequential scan
and an index lookup.  The rules cover what the EASIA workloads need:

* conjunct extraction from WHERE clauses,
* ``column = constant`` detection for index point lookups,
* equi-join key detection (``a.x = b.y``) for index nested-loop joins.

:func:`explain` renders the chosen access paths as text, which the tests
use to pin down that indexes are actually exercised.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.sqldb.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    Literal,
    Parameter,
)

__all__ = [
    "conjuncts",
    "constant_equalities",
    "join_equalities",
    "explain",
]


def conjuncts(expr: Expression | None) -> list[Expression]:
    """Split a predicate on top-level ANDs."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def _constant_side(expr: Expression) -> bool:
    return isinstance(expr, (Literal, Parameter))


def constant_equalities(
    predicates: Sequence[Expression],
    params: Sequence[Any],
) -> list[tuple[ColumnRef, Any]]:
    """Extract ``column = constant`` bindings usable for index lookups.

    Returns ``(column_ref, value)`` pairs; parameters are resolved against
    ``params`` so prepared statements benefit from indexes too.
    """
    out: list[tuple[ColumnRef, Any]] = []
    for predicate in predicates:
        if not (isinstance(predicate, BinaryOp) and predicate.op == "="):
            continue
        left, right = predicate.left, predicate.right
        if isinstance(left, ColumnRef) and _constant_side(right):
            value = right.evaluate({}, params)
            out.append((left, value))
        elif isinstance(right, ColumnRef) and _constant_side(left):
            value = left.evaluate({}, params)
            out.append((right, value))
    return out


def join_equalities(
    on: Expression | None,
    right_alias: str,
) -> list[tuple[ColumnRef, ColumnRef]]:
    """Extract ``outer.col = inner.col`` pairs from a join condition.

    Returns pairs ``(outer_ref, inner_ref)`` where ``inner_ref`` belongs to
    the table being joined (``right_alias``); these drive index lookups on
    the inner table.
    """
    pairs: list[tuple[ColumnRef, ColumnRef]] = []
    for predicate in conjuncts(on):
        if not (isinstance(predicate, BinaryOp) and predicate.op == "="):
            continue
        left, right = predicate.left, predicate.right
        if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
            continue
        if right.table == right_alias and left.table != right_alias:
            pairs.append((left, right))
        elif left.table == right_alias and right.table != right_alias:
            pairs.append((right, left))
    return pairs


def explain(plan_steps: list[str]) -> str:
    """Render executor-reported plan steps as an EXPLAIN-style string."""
    return "\n".join(f"{i + 1}. {step}" for i, step in enumerate(plan_steps))
