"""Table schemas and integrity constraints.

A :class:`TableSchema` bundles the column definitions with the constraints
the engine enforces: primary key, unique sets, foreign keys, NOT NULL and
CHECK expressions.  The catalog (``repro.sqldb.catalog``) stores these and
exposes exactly the metadata the XUIS generator needs — the paper's
interface builder works entirely from "referential integrity constraints in
the DB catalogue metadata".
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import CatalogError, NotNullViolation, TypeMismatchError
from repro.sqldb.types import DatalinkType, SqlType

__all__ = ["Column", "ForeignKey", "TableSchema", "quote_ident"]

# words that would be mis-read as constraint clauses if a column of that
# name opened a CREATE TABLE element — generated DDL quotes them
_DDL_CLAUSE_WORDS = frozenset({
    "PRIMARY", "FOREIGN", "UNIQUE", "CHECK", "CONSTRAINT",
    "NOT", "DEFAULT", "REFERENCES",
})


def quote_ident(name: str) -> str:
    """Render an identifier for generated DDL, quoting it when a bare
    spelling would collide with a constraint keyword."""
    if name.upper() in _DDL_CLAUSE_WORDS:
        return f'"{name}"'
    return name


class Column:
    """A single column definition."""

    __slots__ = ("name", "type", "nullable", "default")

    def __init__(
        self,
        name: str,
        type: SqlType,
        nullable: bool = True,
        default: Any = None,
    ) -> None:
        if not name:
            raise CatalogError("column name must be non-empty")
        self.name = name.upper()
        self.type = type
        self.nullable = nullable
        self.default = default

    @property
    def is_datalink(self) -> bool:
        return isinstance(self.type, DatalinkType)

    def ddl(self) -> str:
        parts = [quote_ident(self.name), self.type.ddl()]
        if not self.nullable:
            parts.append("NOT NULL")
        if self.default is not None:
            parts.append(f"DEFAULT {self.type.to_literal(self.default)}")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"Column({self.ddl()!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Column)
            and self.name == other.name
            and self.type == other.type
            and self.nullable == other.nullable
            and self.default == other.default
        )


class ForeignKey:
    """A referential-integrity constraint.

    ``columns`` in the owning table must either be all-NULL or match an
    existing row in ``ref_table``'s ``ref_columns`` (which must be that
    table's primary key or a unique set).
    """

    __slots__ = ("columns", "ref_table", "ref_columns", "name")

    def __init__(
        self,
        columns: Sequence[str],
        ref_table: str,
        ref_columns: Sequence[str],
        name: str | None = None,
    ) -> None:
        if len(columns) != len(ref_columns):
            raise CatalogError("foreign key column count mismatch")
        if not columns:
            raise CatalogError("foreign key needs at least one column")
        self.columns = tuple(c.upper() for c in columns)
        self.ref_table = ref_table.upper()
        self.ref_columns = tuple(c.upper() for c in ref_columns)
        self.name = name or f"FK_{'_'.join(self.columns)}"

    def ddl(self) -> str:
        cols = ", ".join(self.columns)
        refs = ", ".join(self.ref_columns)
        return f"FOREIGN KEY ({cols}) REFERENCES {self.ref_table} ({refs})"

    def __repr__(self) -> str:
        return f"ForeignKey({self.ddl()!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ForeignKey)
            and self.columns == other.columns
            and self.ref_table == other.ref_table
            and self.ref_columns == other.ref_columns
        )


class TableSchema:
    """The full definition of one table."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str] = (),
        foreign_keys: Iterable[ForeignKey] = (),
        unique_sets: Iterable[Sequence[str]] = (),
        checks: Iterable[Any] = (),
    ) -> None:
        if not name:
            raise CatalogError("table name must be non-empty")
        if not columns:
            raise CatalogError(f"table {name} needs at least one column")
        self.name = name.upper()
        self.columns = list(columns)
        self._by_name = {c.name: i for i, c in enumerate(self.columns)}
        if len(self._by_name) != len(self.columns):
            raise CatalogError(f"duplicate column name in table {self.name}")

        self.primary_key = tuple(c.upper() for c in primary_key)
        for col in self.primary_key:
            self.column(col).nullable = False
        self.foreign_keys = list(foreign_keys)
        self.unique_sets = [tuple(c.upper() for c in u) for u in unique_sets]
        #: CHECK constraint expressions (AST nodes from repro.sqldb.expressions)
        self.checks = list(checks)

        for fk in self.foreign_keys:
            for col in fk.columns:
                if col not in self._by_name:
                    raise CatalogError(
                        f"foreign key column {col} not in table {self.name}"
                    )
        for uniq in self.unique_sets:
            for col in uniq:
                if col not in self._by_name:
                    raise CatalogError(
                        f"unique column {col} not in table {self.name}"
                    )
        for col in self.primary_key:
            if col not in self._by_name:
                raise CatalogError(
                    f"primary key column {col} not in table {self.name}"
                )

    # -- column access ------------------------------------------------------

    def column(self, name: str) -> Column:
        """Look up a column by (case-insensitive) name."""
        try:
            return self.columns[self._by_name[name.upper()]]
        except KeyError:
            raise CatalogError(
                f"no column {name.upper()} in table {self.name}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name.upper() in self._by_name

    def column_index(self, name: str) -> int:
        """Positional index of a column within stored row tuples."""
        try:
            return self._by_name[name.upper()]
        except KeyError:
            raise CatalogError(
                f"no column {name.upper()} in table {self.name}"
            ) from None

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def datalink_columns(self) -> list[Column]:
        """Columns of DATALINK type (drive the datalink manager hooks)."""
        return [c for c in self.columns if c.is_datalink]

    # -- row validation ------------------------------------------------------

    def validate_row(self, row: Sequence[Any]) -> tuple:
        """Type-check and coerce a full row; enforce NOT NULL.

        Returns the normalised row tuple the storage layer keeps.
        """
        if len(row) != len(self.columns):
            raise TypeMismatchError(
                f"table {self.name} has {len(self.columns)} columns, "
                f"got {len(row)} values"
            )
        out = []
        for column, value in zip(self.columns, row):
            coerced = column.type.validate(value)
            if coerced is None and not column.nullable:
                raise NotNullViolation(
                    f"column {self.name}.{column.name} is NOT NULL"
                )
            out.append(coerced)
        return tuple(out)

    def apply_defaults(self, names: Sequence[str], values: Sequence[Any]) -> list:
        """Expand a partial (column-list) insert into a full row in schema
        order, filling unnamed columns with their defaults (or NULL)."""
        provided = {n.upper(): v for n, v in zip(names, values)}
        unknown = set(provided) - set(self._by_name)
        if unknown:
            raise CatalogError(
                f"unknown column(s) {sorted(unknown)} for table {self.name}"
            )
        return [
            provided.get(c.name, c.default) for c in self.columns
        ]

    def key_of(self, row: Sequence[Any], columns: Sequence[str]) -> tuple:
        """Project ``row`` onto ``columns`` (used for PK/FK/unique checks)."""
        return tuple(row[self.column_index(c)] for c in columns)

    def ddl(self) -> str:
        """Render a CREATE TABLE statement equivalent to this schema."""
        lines = [c.ddl() for c in self.columns]
        if self.primary_key:
            lines.append(f"PRIMARY KEY ({', '.join(self.primary_key)})")
        for uniq in self.unique_sets:
            lines.append(f"UNIQUE ({', '.join(uniq)})")
        for fk in self.foreign_keys:
            lines.append(fk.ddl())
        body = ",\n  ".join(lines)
        return f"CREATE TABLE {self.name} (\n  {body}\n)"

    def __repr__(self) -> str:
        return f"TableSchema({self.name!r}, {len(self.columns)} columns)"
