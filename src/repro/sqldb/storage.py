"""Row storage: heaps, indexes, and per-table constraint enforcement.

A :class:`Table` owns a heap of row tuples keyed by rowid plus any number of
indexes.  The primary key and every UNIQUE set automatically get a unique
hash index; ``CREATE INDEX`` adds further hash or sorted indexes.  Type and
NOT NULL validation happen in the schema layer; uniqueness is enforced
here; referential integrity spans tables and is enforced by the database
facade.

Concurrency (MVCC-lite)
-----------------------

The heap keeps enough version history for readers to scan a *stable
snapshot* while a single serialized writer mutates the live rows:

* a :class:`VersionClock` ticks once per committed writing transaction;
  ``clock.pending`` is the sequence number the open transaction's changes
  will become visible at,
* every live row remembers the sequence it was created at,
* deleting or rewriting a *committed* row first pushes the old version —
  ``(created, deleted, row)`` — onto that rowid's history list.

A version is visible at snapshot ``S`` iff ``created <= S < deleted``
(live rows have ``deleted = infinity``).  Because there is at most one
writer, a rowid never has more than one version visible at any snapshot.
History entries whose ``deleted`` is at or below the oldest snapshot still
registered are pruned at commit (see ``TransactionManager``).

Mutation orders its bookkeeping so that snapshot scans — which run with
no lock at all, relying on the GIL's atomic dict operations — never
observe a torn state: history is recorded *before* the live row vanishes,
and a row's created-sequence is advanced *before* its new image lands.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Iterator, Sequence

from repro.errors import CatalogError, TypeMismatchError, UniqueViolation

__all__ = ["Heap", "HashIndex", "SortedIndex", "Table", "VersionClock"]


class VersionClock:
    """Monotonic commit counter shared by every table of one database.

    ``committed`` is the sequence of the most recent committed writing
    transaction; ``pending`` is the sequence the currently open writer's
    changes will carry.  Bumped only under the writer lock, so plain int
    assignment is safe.
    """

    __slots__ = ("committed",)

    def __init__(self) -> None:
        self.committed = 0

    @property
    def pending(self) -> int:
        return self.committed + 1

    def commit(self) -> int:
        """Make the pending generation visible; returns the new sequence."""
        self.committed += 1
        return self.committed


class Heap:
    """Append-mostly row store addressed by integer rowids."""

    def __init__(self, clock: VersionClock | None = None) -> None:
        self._rows: dict[int, tuple] = {}
        self._next_rowid = 1
        self.clock = clock if clock is not None else VersionClock()
        #: rowid -> sequence the live row became (or will become) visible at
        self._created: dict[int, int] = {}
        #: rowid -> [(created, deleted, row), ...] superseded versions
        self._history: dict[int, list[tuple[int, int, tuple]]] = {}

    def insert(self, row: tuple, rowid: int | None = None) -> int:
        """Store ``row``; returns its rowid.

        An explicit ``rowid`` is used by rollback/recovery to reinstate a
        row under its original identity.
        """
        if rowid is None:
            rowid = self._next_rowid
            self._next_rowid += 1
        else:
            if rowid in self._rows:
                raise CatalogError(f"rowid {rowid} already present")
            self._next_rowid = max(self._next_rowid, rowid + 1)
        # created must land before the row so a concurrent snapshot scan
        # that sees the row also sees that it is not yet committed
        self._created[rowid] = self.clock.pending
        self._rows[rowid] = row
        return rowid

    def delete(self, rowid: int) -> tuple:
        try:
            row = self._rows[rowid]
        except KeyError:
            raise CatalogError(f"no row with rowid {rowid}") from None
        created = self._created.get(rowid, 0)
        if created <= self.clock.committed:
            # committed version: keep it readable for older snapshots
            self._history.setdefault(rowid, []).append(
                (created, self.clock.pending, row)
            )
        del self._rows[rowid]
        self._created.pop(rowid, None)
        return row

    def update(self, rowid: int, row: tuple) -> tuple:
        try:
            old = self._rows[rowid]
        except KeyError:
            raise CatalogError(f"no row with rowid {rowid}") from None
        created = self._created.get(rowid, 0)
        if created <= self.clock.committed:
            self._history.setdefault(rowid, []).append(
                (created, self.clock.pending, old)
            )
            # advance created before the new image lands: a scan that sees
            # the new row must classify it as uncommitted
            self._created[rowid] = self.clock.pending
        self._rows[rowid] = row
        return old

    def rewrite(self, rowid: int, row: tuple) -> None:
        """Replace a row in place with *no* version bookkeeping.

        Used by schema evolution (ALTER TABLE backfills), where every
        stored row changes arity and historical versions become
        meaningless; callers clear the history afterwards.
        """
        if rowid not in self._rows:
            raise CatalogError(f"no row with rowid {rowid}")
        self._rows[rowid] = row

    def get(self, rowid: int) -> tuple:
        try:
            return self._rows[rowid]
        except KeyError:
            raise CatalogError(f"no row with rowid {rowid}") from None

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Yield ``(rowid, row)`` pairs in insertion order."""
        yield from list(self._rows.items())

    # -- snapshot reads ---------------------------------------------------------

    def scan_at(self, snapshot: int) -> list[tuple[int, tuple]]:
        """``(rowid, row)`` pairs visible at ``snapshot``, lock-free.

        Safe against one concurrent writer: ``list(dict.items())`` is
        atomic under the GIL, mutation records history before removing
        live rows, and a live row whose created-sequence vanished mid-scan
        is deferred to the history pass (which then has the authoritative
        version interval).
        """
        out: list[tuple[int, tuple]] = []
        live_seen: set[int] = set()
        for rowid, row in list(self._rows.items()):
            created = self._created.get(rowid)
            if created is None:
                continue  # deleted under us; the history pass decides
            if created <= snapshot:
                out.append((rowid, row))
                live_seen.add(rowid)
        for rowid, versions in list(self._history.items()):
            if rowid in live_seen:
                continue
            for created, deleted, row in list(versions):
                if created <= snapshot < deleted:
                    out.append((rowid, row))
                    break
        return out

    def get_at(self, rowid: int, snapshot: int) -> tuple:
        """The version of ``rowid`` visible at ``snapshot``.

        Falls back to the live row when no version is visible (an index
        handed out a rowid the snapshot should not see — only possible
        when a writer raced the read, which the snapshot-validation layer
        detects and retries).
        """
        row = self._rows.get(rowid)
        if row is not None:
            created = self._created.get(rowid)
            if created is not None and created <= snapshot:
                return row
        for created, deleted, old in list(self._history.get(rowid, ())):
            if created <= snapshot < deleted:
                return old
        if row is not None:
            return row
        raise CatalogError(f"no row with rowid {rowid}")

    def prune_history(self, floor: int) -> int:
        """Drop versions invisible to every snapshot at or above ``floor``.

        Returns the number of versions removed.  Called at commit with the
        oldest registered snapshot (or the new committed sequence when no
        snapshot is active).
        """
        removed = 0
        for rowid in list(self._history):
            versions = self._history.get(rowid)
            if versions is None:
                continue
            keep = [v for v in versions if v[1] > floor]
            removed += len(versions) - len(keep)
            if keep:
                self._history[rowid] = keep
            else:
                self._history.pop(rowid, None)
        return removed

    def clear_history(self) -> None:
        self._history.clear()

    @property
    def history_versions(self) -> int:
        """Total retained superseded versions (observability)."""
        return sum(len(v) for v in list(self._history.values()))

    def __len__(self) -> int:
        return len(self._rows)


class _NullsFirstKey:
    """Total order over heterogeneous index keys: NULLs sort first, then by
    value.  Only comparable values land in the same index, so the fallback
    to type-name ordering is defensive."""

    __slots__ = ("key",)

    def __init__(self, key: tuple) -> None:
        self.key = key

    def _rank(self) -> tuple:
        out = []
        for part in self.key:
            if part is None:
                out.append((0, 0))
            elif isinstance(part, bool):
                out.append((1, int(part)))
            elif isinstance(part, (int, float)):
                out.append((2, part))
            else:
                out.append((3, part))
        return tuple(out)

    def __lt__(self, other: "_NullsFirstKey") -> bool:
        try:
            return self._rank() < other._rank()
        except TypeError:
            return str(self.key) < str(other.key)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NullsFirstKey) and self.key == other.key

    def __hash__(self) -> int:
        try:
            return hash(self.key)
        except TypeError:
            return hash(repr(self.key))


class HashIndex:
    """Equality index over one or more columns."""

    def __init__(self, name: str, columns: Sequence[str], unique: bool = False) -> None:
        self.name = name
        self.columns = tuple(c.upper() for c in columns)
        self.unique = unique
        self._entries: dict[tuple, set[int]] = {}

    @staticmethod
    def _hashable(key: tuple) -> tuple:
        out = []
        for part in key:
            try:
                hash(part)
            except TypeError:
                part = repr(part)
            out.append(part)
        return tuple(out)

    def add(self, key: tuple, rowid: int) -> None:
        if any(part is None for part in key):
            # SQL unique semantics: NULLs never collide and are not indexed.
            return
        key = self._hashable(key)
        bucket = self._entries.setdefault(key, set())
        if self.unique and bucket:
            raise UniqueViolation(
                f"duplicate key {key!r} for unique index {self.name}"
            )
        bucket.add(rowid)

    def remove(self, key: tuple, rowid: int) -> None:
        if any(part is None for part in key):
            return
        key = self._hashable(key)
        bucket = self._entries.get(key)
        if bucket:
            bucket.discard(rowid)
            if not bucket:
                del self._entries[key]

    def find(self, key: tuple) -> set[int]:
        if any(part is None for part in key):
            return set()
        return set(self._entries.get(self._hashable(key), ()))

    def find_sorted(self, key: tuple) -> list[int]:
        """Matching rowids in ascending order.

        ``find`` returns an (unordered) set; query execution iterates this
        sorted form instead, so repeated queries return rows in a stable
        order regardless of set-iteration salt."""
        return sorted(self.find(key))

    def contains(self, key: tuple) -> bool:
        if any(part is None for part in key):
            return False
        return self._hashable(key) in self._entries

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._entries.values())


class SortedIndex:
    """Ordered index supporting range scans (used for BETWEEN / inequality
    lookups on indexed columns)."""

    def __init__(self, name: str, columns: Sequence[str], unique: bool = False) -> None:
        self.name = name
        self.columns = tuple(c.upper() for c in columns)
        self.unique = unique
        self._entries: list[tuple[_NullsFirstKey, int]] = []

    def add(self, key: tuple, rowid: int) -> None:
        if any(part is None for part in key):
            return
        wrapped = _NullsFirstKey(key)
        if self.unique:
            i = bisect_left(self._entries, (wrapped, -1))
            if i < len(self._entries) and self._entries[i][0] == wrapped:
                raise UniqueViolation(
                    f"duplicate key {key!r} for unique index {self.name}"
                )
        insort(self._entries, (wrapped, rowid))

    def remove(self, key: tuple, rowid: int) -> None:
        if any(part is None for part in key):
            return
        wrapped = _NullsFirstKey(key)
        i = bisect_left(self._entries, (wrapped, rowid))
        if i < len(self._entries) and self._entries[i] == (wrapped, rowid):
            del self._entries[i]

    def find(self, key: tuple) -> set[int]:
        wrapped = _NullsFirstKey(key)
        lo = bisect_left(self._entries, (wrapped, -1))
        out = set()
        for entry_key, rowid in self._entries[lo:]:
            if entry_key == wrapped:
                out.add(rowid)
            else:
                break
        return out

    def find_sorted(self, key: tuple) -> list[int]:
        """Matching rowids in ascending order (stable across runs)."""
        return sorted(self.find(key))

    def contains(self, key: tuple) -> bool:
        return bool(self.find(key))

    def range_scan(
        self,
        low: tuple | None = None,
        high: tuple | None = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[int]:
        """Rowids whose keys fall within ``[low, high]`` (None = unbounded)."""
        entries = self._entries
        lo = 0
        hi = len(entries)
        if low is not None:
            wrapped = _NullsFirstKey(low)
            lo = (
                bisect_left(entries, (wrapped, -1))
                if include_low
                else bisect_right(entries, (wrapped, float("inf")))
            )
        if high is not None:
            wrapped = _NullsFirstKey(high)
            hi = (
                bisect_right(entries, (wrapped, float("inf")))
                if include_high
                else bisect_left(entries, (wrapped, -1))
            )
        return [rowid for _, rowid in entries[lo:hi]]

    def __len__(self) -> int:
        return len(self._entries)


class Table:
    """Schema + heap + indexes, with uniqueness enforcement.

    All mutation goes through :meth:`insert` / :meth:`delete` /
    :meth:`update` so that every index stays consistent with the heap.
    """

    def __init__(self, schema, clock: VersionClock | None = None) -> None:
        self.schema = schema
        self.heap = Heap(clock)
        #: sequence of the youngest (possibly uncommitted) mutation; a
        #: snapshot ``S`` sees the table unchanged iff ``version_seq <= S``
        self.version_seq = 0
        self.indexes: dict[str, HashIndex | SortedIndex] = {}
        if schema.primary_key:
            self.add_index(
                HashIndex(f"PK_{schema.name}", schema.primary_key, unique=True)
            )
        for i, uniq in enumerate(schema.unique_sets):
            name = f"UQ_{schema.name}_{i}"
            if not self._covering_unique_index(uniq):
                self.add_index(HashIndex(name, uniq, unique=True))
        # Non-unique index on each FK column set speeds both joins and
        # the reverse (parent-delete) referential checks.
        for fk in schema.foreign_keys:
            name = f"IX_{schema.name}_{fk.name}"
            if name not in self.indexes:
                self.add_index(HashIndex(name, fk.columns, unique=False))

    def _covering_unique_index(self, columns: Sequence[str]) -> bool:
        wanted = tuple(c.upper() for c in columns)
        return any(
            index.unique and index.columns == wanted
            for index in self.indexes.values()
        )

    # -- index management ------------------------------------------------------

    def add_index(self, index: HashIndex | SortedIndex) -> None:
        if index.name in self.indexes:
            raise CatalogError(f"index {index.name} already exists")
        for column in index.columns:
            self.schema.column(column)  # raises on unknown column
        for rowid, row in self.heap.scan():
            index.add(self.schema.key_of(row, index.columns), rowid)
        self.indexes[index.name] = index

    def drop_index(self, name: str) -> None:
        try:
            del self.indexes[name]
        except KeyError:
            raise CatalogError(f"no index named {name}") from None

    def index_on(self, columns: Sequence[str], require_unique: bool = False):
        """Find an index whose key is exactly ``columns`` (any order not
        supported — QBE and FK lookups always use schema order)."""
        wanted = tuple(c.upper() for c in columns)
        for index in self.indexes.values():
            if index.columns == wanted and (index.unique or not require_unique):
                return index
        return None

    def index_leading_on(self, column: str):
        """An index whose first key column is ``column`` (single-column
        equality lookups can use any such index)."""
        column = column.upper()
        for index in self.indexes.values():
            if index.columns and index.columns[0] == column and len(index.columns) == 1:
                return index
        return None

    # -- mutation ---------------------------------------------------------------

    def insert(self, row: Sequence[Any], rowid: int | None = None) -> tuple[int, tuple]:
        validated = self.schema.validate_row(row)
        self._check_unique(validated)
        self.version_seq = self.heap.clock.pending
        rowid = self.heap.insert(validated, rowid)
        for index in self.indexes.values():
            index.add(self.schema.key_of(validated, index.columns), rowid)
        return rowid, validated

    def delete(self, rowid: int) -> tuple:
        self.version_seq = self.heap.clock.pending
        row = self.heap.delete(rowid)
        for index in self.indexes.values():
            index.remove(self.schema.key_of(row, index.columns), rowid)
        return row

    def update(self, rowid: int, new_row: Sequence[Any]) -> tuple[tuple, tuple]:
        """Replace the row at ``rowid``; returns ``(old_row, new_row)``."""
        validated = self.schema.validate_row(new_row)
        old = self.heap.get(rowid)
        self._check_unique(validated, ignore_rowid=rowid)
        self.version_seq = self.heap.clock.pending
        self.heap.update(rowid, validated)
        for index in self.indexes.values():
            old_key = self.schema.key_of(old, index.columns)
            new_key = self.schema.key_of(validated, index.columns)
            if old_key != new_key:
                index.remove(old_key, rowid)
                index.add(new_key, rowid)
        return old, validated

    def _check_unique(self, row: tuple, ignore_rowid: int | None = None) -> None:
        for index in self.indexes.values():
            if not index.unique:
                continue
            key = self.schema.key_of(row, index.columns)
            hits = index.find(key)
            if ignore_rowid is not None:
                hits.discard(ignore_rowid)
            if hits:
                label = "primary key" if index.name.startswith("PK_") else "unique"
                raise UniqueViolation(
                    f"{label} violation on {self.schema.name}"
                    f"({', '.join(index.columns)}) = {key!r}"
                )

    # -- schema evolution ---------------------------------------------------------

    def add_column(self, column) -> None:
        """ALTER TABLE ADD COLUMN: append the column and backfill every
        stored row with its (validated) default."""
        if self.schema.has_column(column.name):
            raise CatalogError(
                f"column {column.name} already exists in {self.schema.name}"
            )
        default = column.type.validate(column.default)
        if default is None and not column.nullable and len(self.heap):
            raise CatalogError(
                f"cannot add NOT NULL column {column.name} without a "
                f"DEFAULT to a populated table"
            )
        self.schema.columns.append(column)
        self.schema._by_name[column.name] = len(self.schema.columns) - 1
        # Schema evolution rewrites rows in place (no per-row versions:
        # old-arity images would not match the mutated schema anyway).
        self.version_seq = self.heap.clock.pending
        for rowid, row in self.heap.scan():
            self.heap.rewrite(rowid, row + (default,))
        self.heap.clear_history()

    def drop_column(self, name: str) -> list:
        """ALTER TABLE DROP COLUMN: remove the column and its stored
        values.  Returns the dropped values (the database layer unlinks
        DATALINKs from them).  Key/indexed/checked columns are protected.
        """
        name = name.upper()
        index_position = self.schema.column_index(name)
        if name in self.schema.primary_key:
            raise CatalogError(f"cannot drop primary key column {name}")
        for uniq in self.schema.unique_sets:
            if name in uniq:
                raise CatalogError(f"cannot drop unique column {name}")
        for fk in self.schema.foreign_keys:
            if name in fk.columns:
                raise CatalogError(f"cannot drop foreign key column {name}")
        for index in self.indexes.values():
            if name in index.columns:
                raise CatalogError(
                    f"cannot drop column {name}: used by index {index.name}"
                )
        for check in self.schema.checks:
            if any(ref.column == name for ref in check.column_refs()):
                raise CatalogError(
                    f"cannot drop column {name}: used by a CHECK constraint"
                )
        dropped = []
        self.version_seq = self.heap.clock.pending
        for rowid, row in self.heap.scan():
            dropped.append(row[index_position])
            self.heap.rewrite(
                rowid, row[:index_position] + row[index_position + 1:]
            )
        self.heap.clear_history()
        del self.schema.columns[index_position]
        self.schema._by_name = {
            c.name: i for i, c in enumerate(self.schema.columns)
        }
        return dropped

    # -- access -------------------------------------------------------------------

    def scan(self) -> Iterator[tuple[int, tuple]]:
        return self.heap.scan()

    def row(self, rowid: int) -> tuple:
        return self.heap.get(rowid)

    def __len__(self) -> int:
        return len(self.heap)
