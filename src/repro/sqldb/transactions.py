"""Transaction management.

The engine runs a single-writer model (matching the paper's servlet
deployment, where the database host serialises updates).  Each transaction
keeps:

* an **undo log** — inverse operations applied in LIFO order on rollback,
* a **redo log** — logical records appended to the write-ahead log on
  commit,
* **datalink actions** — pending file link/unlink operations that must be
  applied or discarded *atomically with* the database changes.  This is
  SQL/MED's "transaction consistency": "changes affecting both the database
  and external files are executed within a transaction".
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import TransactionError

__all__ = ["Transaction", "TransactionManager"]


class Transaction:
    """State for one open transaction."""

    _next_id = 1

    def __init__(self, explicit: bool) -> None:
        self.txn_id = Transaction._next_id
        Transaction._next_id += 1
        #: True for user BEGIN...COMMIT; False for per-statement autocommit
        self.explicit = explicit
        self.undo: list[tuple] = []
        self.redo: list[dict] = []
        #: LSN of this transaction's WAL record, set at commit (durable
        #: databases only); None for read-only or in-memory transactions
        self.commit_lsn: int | None = None
        #: callables executed after a successful commit (e.g. finalise links)
        self.on_commit: list[Callable[[], None]] = []
        #: callables executed on rollback (e.g. discard pending links)
        self.on_rollback: list[Callable[[], None]] = []

    def record(self, undo_entry: tuple, redo_entry: dict | None) -> None:
        self.undo.append(undo_entry)
        if redo_entry is not None:
            self.redo.append(redo_entry)


class TransactionManager:
    """Owns the open transaction and applies commit/rollback protocols."""

    def __init__(self, catalog, wal=None) -> None:
        self._catalog = catalog
        self._wal = wal
        self._current: Transaction | None = None

    @property
    def active(self) -> Transaction | None:
        return self._current

    @property
    def in_explicit_transaction(self) -> bool:
        return self._current is not None and self._current.explicit

    # -- lifecycle ------------------------------------------------------------

    def begin(self, explicit: bool = True) -> Transaction:
        if self._current is not None:
            raise TransactionError("a transaction is already open")
        self._current = Transaction(explicit)
        return self._current

    def ensure(self) -> tuple[Transaction, bool]:
        """Return the open transaction, starting an autocommit one if none.

        The second element tells the caller whether it owns the commit
        (True for a freshly started autocommit transaction).
        """
        if self._current is not None:
            return self._current, False
        return self.begin(explicit=False), True

    def commit(self) -> None:
        txn = self._current
        if txn is None:
            raise TransactionError("no transaction to commit")
        # Durability first: flush redo records before acknowledging.  If
        # the append fails (I/O error) the transaction stays open, so an
        # explicit ROLLBACK can still undo the in-memory changes.
        if self._wal is not None and txn.redo:
            txn.commit_lsn = self._wal.append_transaction(txn.txn_id, txn.redo)
        self._current = None
        failures = []
        for hook in txn.on_commit:
            try:
                hook()
            except Exception as exc:  # pragma: no cover - defensive
                # InjectedCrash subclasses BaseException on purpose: a
                # simulated crash must propagate, not be collected here.
                failures.append(exc)
        if failures:
            raise TransactionError(
                f"commit hooks failed: {failures[0]}"
            ) from failures[0]

    def rollback(self) -> None:
        txn = self._current
        if txn is None:
            raise TransactionError("no transaction to roll back")
        self._current = None
        self._apply_undo(txn)
        for hook in reversed(txn.on_rollback):
            hook()

    # -- statement-level atomicity ---------------------------------------------

    def statement_mark(self, txn: Transaction) -> tuple[int, int]:
        """Snapshot the txn's log positions before executing a statement."""
        return len(txn.undo), len(txn.redo)

    def statement_rollback(self, txn: Transaction, mark: tuple[int, int]) -> None:
        """Undo everything a failed statement did, leaving earlier work in
        the transaction intact (statement-level atomicity)."""
        undo_mark, redo_mark = mark
        tail = txn.undo[undo_mark:]
        del txn.undo[undo_mark:]
        del txn.redo[redo_mark:]
        self._undo_entries(tail)

    def _apply_undo(self, txn: Transaction) -> None:
        self._undo_entries(txn.undo)

    def _undo_entries(self, entries: list[tuple]) -> None:
        for entry in reversed(entries):
            kind = entry[0]
            if kind == "insert":
                _, table_name, rowid = entry
                self._catalog.table(table_name).delete(rowid)
            elif kind == "delete":
                _, table_name, rowid, row = entry
                self._catalog.table(table_name).insert(row, rowid)
            elif kind == "update":
                _, table_name, rowid, old_row = entry
                self._catalog.table(table_name).update(rowid, old_row)
            elif kind == "create_table":
                _, table_name = entry
                self._catalog.drop_table(table_name)
            elif kind == "create_index":
                _, index_name = entry
                self._catalog.drop_index(index_name)
            elif kind == "create_view":
                _, view_name = entry
                self._catalog.drop_view(view_name)
            elif kind == "drop_view":
                _, view_name, select, ddl_text = entry
                self._catalog.create_view(view_name, select, ddl_text)
            else:  # pragma: no cover - defensive
                raise TransactionError(f"unknown undo entry {kind!r}")

    # -- change recording --------------------------------------------------------

    def record_insert(self, txn: Transaction, table_name: str, rowid: int, row: tuple) -> None:
        txn.record(
            ("insert", table_name, rowid),
            {"op": "insert", "table": table_name, "rowid": rowid, "row": row},
        )

    def record_delete(self, txn: Transaction, table_name: str, rowid: int, row: tuple) -> None:
        txn.record(
            ("delete", table_name, rowid, row),
            {"op": "delete", "table": table_name, "rowid": rowid},
        )

    def record_update(
        self, txn: Transaction, table_name: str, rowid: int,
        old_row: tuple, new_row: tuple,
    ) -> None:
        txn.record(
            ("update", table_name, rowid, old_row),
            {"op": "update", "table": table_name, "rowid": rowid, "row": new_row},
        )

    def record_ddl(self, txn: Transaction, undo_entry: tuple, sql: str) -> None:
        txn.record(undo_entry, {"op": "ddl", "sql": sql})
