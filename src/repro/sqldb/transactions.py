"""Transaction management.

The engine runs a single-writer model (matching the paper's servlet
deployment, where the database host serialises updates).  Each transaction
keeps:

* an **undo log** — inverse operations applied in LIFO order on rollback,
* a **redo log** — logical records appended to the write-ahead log on
  commit,
* **datalink actions** — pending file link/unlink operations that must be
  applied or discarded *atomically with* the database changes.  This is
  SQL/MED's "transaction consistency": "changes affecting both the database
  and external files are executed within a transaction".

Concurrency: every :class:`~repro.sqldb.connection.Connection` owns its own
:class:`TransactionManager`, so transaction *state* is connection-scoped,
while the pieces that must be global — transaction-id allocation, the
writer lock, the version clock, the WAL — are shared engine objects passed
in by :class:`~repro.sqldb.database.Database`.  A manager that makes
changes holds the writer lock from its first write until commit/rollback
completes, and bumps the version clock at commit so snapshot readers see
the transaction's changes atomically.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable

from repro.errors import CatalogError, TransactionError
from repro.obs import get_observability

__all__ = ["Transaction", "TransactionManager"]

# Fallback id source for transactions constructed outside a Database (unit
# tests, standalone managers).  Database instances install their own
# allocator so ids are dense per engine; both are lock-guarded, fixing the
# racy ``Transaction._next_id`` class attribute this replaces.
_fallback_ids = itertools.count(1)
_fallback_lock = threading.Lock()


def _allocate_fallback_id() -> int:
    with _fallback_lock:
        return next(_fallback_ids)


class Transaction:
    """State for one open transaction."""

    def __init__(self, explicit: bool, txn_id: int | None = None) -> None:
        self.txn_id = txn_id if txn_id is not None else _allocate_fallback_id()
        #: True for user BEGIN...COMMIT; False for per-statement autocommit
        self.explicit = explicit
        self.undo: list[tuple] = []
        self.redo: list[dict] = []
        #: LSN of this transaction's WAL record, set at commit (durable
        #: databases only); None for read-only or in-memory transactions
        self.commit_lsn: int | None = None
        #: callables executed after a successful commit (e.g. finalise links)
        self.on_commit: list[Callable[[], None]] = []
        #: callables executed on rollback (e.g. discard pending links)
        self.on_rollback: list[Callable[[], None]] = []

    def record(self, undo_entry: tuple, redo_entry: dict | None) -> None:
        self.undo.append(undo_entry)
        if redo_entry is not None:
            self.redo.append(redo_entry)


class TransactionManager:
    """Owns one connection's open transaction and applies commit/rollback
    protocols.

    ``id_allocator``, ``clock``, ``writer`` and ``snapshot_floor`` are the
    engine-level shared objects (all optional, so a bare
    ``TransactionManager(catalog, wal)`` still behaves as the historical
    single-connection manager):

    * ``id_allocator()`` returns the next transaction id (thread-safe),
    * ``clock`` is the :class:`~repro.sqldb.storage.VersionClock` bumped at
      commit so snapshot readers atomically see the new state,
    * ``writer`` is the engine writer lock; :meth:`acquire_writer` takes it
      before the first write and commit/rollback always release it,
    * ``snapshot_floor()`` returns the oldest snapshot sequence still
      registered (or None) — the bound below which row history is pruned.
    """

    def __init__(self, catalog, wal=None, *, id_allocator=None, clock=None,
                 writer=None, snapshot_floor=None, obs=None) -> None:
        self._catalog = catalog
        self._wal = wal
        self._current: Transaction | None = None
        self._ids = id_allocator or _allocate_fallback_id
        self._clock = clock
        self._writer = writer
        self._snapshot_floor = snapshot_floor
        self._obs = obs
        self._writer_held = False

    @property
    def active(self) -> Transaction | None:
        return self._current

    @property
    def in_explicit_transaction(self) -> bool:
        return self._current is not None and self._current.explicit

    @property
    def holds_writer_lock(self) -> bool:
        return self._writer_held

    # -- lifecycle ------------------------------------------------------------

    def begin(self, explicit: bool = True) -> Transaction:
        if self._current is not None:
            raise TransactionError("a transaction is already open")
        self._current = Transaction(explicit, txn_id=self._ids())
        return self._current

    def ensure(self) -> tuple[Transaction, bool]:
        """Return the open transaction, starting an autocommit one if none.

        The second element tells the caller whether it owns the commit
        (True for a freshly started autocommit transaction).
        """
        if self._current is not None:
            return self._current, False
        return self.begin(explicit=False), True

    def acquire_writer(self, timeout: float | None = None) -> None:
        """Take the engine writer lock for this connection.

        No-op without a configured lock or when already held.  Raises
        :class:`~repro.errors.LockTimeout` when the lock cannot be
        acquired in time; in that case no state has changed and the
        caller's statement simply fails.
        """
        if self._writer is None or self._writer_held:
            return
        self._writer.acquire(timeout)
        self._writer_held = True

    def _release_writer(self) -> None:
        if self._writer_held:
            self._writer_held = False
            self._writer.release()

    def commit(self) -> None:
        txn = self._current
        if txn is None:
            raise TransactionError("no transaction to commit")
        try:
            # Durability first: flush redo records before acknowledging.  If
            # the append fails (I/O error) the transaction stays open, so an
            # explicit ROLLBACK can still undo the in-memory changes.
            if self._wal is not None and txn.redo:
                txn.commit_lsn = self._wal.append_transaction(txn.txn_id, txn.redo)
            self._current = None
            if self._clock is not None and (txn.undo or txn.redo):
                # Visibility point: snapshot readers atomically gain this
                # transaction's changes.
                self._clock.commit()
                self._prune_history(txn)
            failures = []
            for hook in txn.on_commit:
                try:
                    hook()
                except Exception as exc:
                    # InjectedCrash subclasses BaseException on purpose: a
                    # simulated crash must propagate, not be collected here.
                    failures.append(exc)
            if failures:
                self._report_hook_failures(txn, failures)
                raise TransactionError(
                    f"commit hooks failed: {failures[0]}"
                ) from failures[0]
        finally:
            # BaseException-safe: even an injected crash releases the lock,
            # as a real process death would.
            self._release_writer()

    def _report_hook_failures(self, txn: Transaction, failures: list) -> None:
        """Make partially-failed commits visible at /metrics: one counter
        tick and one event per failed hook, not just the wrapped first."""
        obs = self._obs or get_observability()
        if not obs.enabled:
            return
        obs.metrics.counter("sqldb.commit.hook_failures").inc(len(failures))
        for exc in failures:
            obs.events.emit(
                "sqldb.commit.hook_failure",
                txn_id=txn.txn_id,
                error=f"{type(exc).__name__}: {exc}",
            )

    def rollback(self) -> None:
        txn = self._current
        if txn is None:
            raise TransactionError("no transaction to roll back")
        try:
            self._current = None
            self._apply_undo(txn)
            for hook in reversed(txn.on_rollback):
                hook()
        finally:
            self._release_writer()

    def _prune_history(self, txn: Transaction) -> None:
        """Garbage-collect row versions no live snapshot can still see."""
        floor = None
        if self._snapshot_floor is not None:
            floor = self._snapshot_floor()
        if floor is None:
            floor = self._clock.committed
        names = {
            entry[1] for entry in txn.undo
            if entry[0] in ("insert", "delete", "update")
        }
        for name in names:
            try:
                table = self._catalog.table(name)
            except CatalogError:
                continue  # dropped since; its versions died with it
            table.heap.prune_history(floor)

    # -- statement-level atomicity ---------------------------------------------

    def statement_mark(self, txn: Transaction) -> tuple[int, int]:
        """Snapshot the txn's log positions before executing a statement."""
        return len(txn.undo), len(txn.redo)

    def statement_rollback(self, txn: Transaction, mark: tuple[int, int]) -> None:
        """Undo everything a failed statement did, leaving earlier work in
        the transaction intact (statement-level atomicity)."""
        undo_mark, redo_mark = mark
        tail = txn.undo[undo_mark:]
        del txn.undo[undo_mark:]
        del txn.redo[redo_mark:]
        self._undo_entries(tail)

    def _apply_undo(self, txn: Transaction) -> None:
        self._undo_entries(txn.undo)

    def _undo_entries(self, entries: list[tuple]) -> None:
        for entry in reversed(entries):
            kind = entry[0]
            if kind == "insert":
                _, table_name, rowid = entry
                self._catalog.table(table_name).delete(rowid)
            elif kind == "delete":
                _, table_name, rowid, row = entry
                self._catalog.table(table_name).insert(row, rowid)
            elif kind == "update":
                _, table_name, rowid, old_row = entry
                self._catalog.table(table_name).update(rowid, old_row)
            elif kind == "create_table":
                _, table_name = entry
                self._catalog.drop_table(table_name)
            elif kind == "create_index":
                _, index_name = entry
                self._catalog.drop_index(index_name)
            elif kind == "create_view":
                _, view_name = entry
                self._catalog.drop_view(view_name)
            elif kind == "drop_view":
                _, view_name, select, ddl_text = entry
                self._catalog.create_view(view_name, select, ddl_text)
            else:  # pragma: no cover - defensive
                raise TransactionError(f"unknown undo entry {kind!r}")

    # -- change recording --------------------------------------------------------

    def record_insert(self, txn: Transaction, table_name: str, rowid: int, row: tuple) -> None:
        txn.record(
            ("insert", table_name, rowid),
            {"op": "insert", "table": table_name, "rowid": rowid, "row": row},
        )

    def record_delete(self, txn: Transaction, table_name: str, rowid: int, row: tuple) -> None:
        txn.record(
            ("delete", table_name, rowid, row),
            {"op": "delete", "table": table_name, "rowid": rowid},
        )

    def record_update(
        self, txn: Transaction, table_name: str, rowid: int,
        old_row: tuple, new_row: tuple,
    ) -> None:
        txn.record(
            ("update", table_name, rowid, old_row),
            {"op": "update", "table": table_name, "rowid": rowid, "row": new_row},
        )

    def record_ddl(self, txn: Transaction, undo_entry: tuple, sql: str) -> None:
        txn.record(undo_entry, {"op": "ddl", "sql": sql})
