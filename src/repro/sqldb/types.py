"""SQL type system for the relational engine.

Each column carries an instance of a :class:`SqlType` subclass.  Types know
how to validate and coerce Python values, how to render SQL literals, and
how to serialise values to and from JSON for the write-ahead log.

Large-object and external-data values get dedicated wrapper classes:

* :class:`Blob` — binary large object stored *inside* the database,
* :class:`Clob` — character large object stored *inside* the database,
* :class:`DatalinkValue` — a reference to a file stored *outside* the
  database, per SQL/MED (ISO/IEC 9075-9).  The value is inserted as a plain
  URL ``http://host/fs/dir/name`` and, when the column is declared with
  ``READ PERMISSION DB``, selected back as a token-prefixed URL
  ``http://host/fs/dir/token;name`` (the token is attached by the datalink
  manager at SELECT time, not stored).
"""

from __future__ import annotations

import base64
import datetime as _dt
from typing import Any
from urllib.parse import urlsplit

from repro.errors import InvalidDatalinkValue, TypeMismatchError

__all__ = [
    "SqlType",
    "IntegerType",
    "DoubleType",
    "BooleanType",
    "VarcharType",
    "CharType",
    "DateType",
    "TimestampType",
    "BlobType",
    "ClobType",
    "DatalinkType",
    "Blob",
    "Clob",
    "DatalinkValue",
    "type_from_name",
    "value_to_json",
    "value_from_json",
]


class Blob:
    """A binary large object stored inside the database.

    The web layer renders BLOB cells as hyperlinks showing the object size;
    following the link *rematerialises* the bytes with an appropriate MIME
    type (paper: "BLOB and CLOB types also contain hypertext links that
    rematerialise the underlying objects").
    """

    __slots__ = ("data", "mime_type")

    def __init__(self, data: bytes, mime_type: str = "application/octet-stream") -> None:
        if not isinstance(data, (bytes, bytearray)):
            raise TypeMismatchError(f"Blob requires bytes, got {type(data).__name__}")
        self.data = bytes(data)
        self.mime_type = mime_type

    def __len__(self) -> int:
        return len(self.data)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Blob) and self.data == other.data

    def __hash__(self) -> int:
        return hash(self.data)

    def __repr__(self) -> str:
        return f"Blob({len(self.data)} bytes, {self.mime_type!r})"


class Clob:
    """A character large object stored inside the database."""

    __slots__ = ("text", "mime_type")

    def __init__(self, text: str, mime_type: str = "text/plain") -> None:
        if not isinstance(text, str):
            raise TypeMismatchError(f"Clob requires str, got {type(text).__name__}")
        self.text = text
        self.mime_type = mime_type

    def __len__(self) -> int:
        return len(self.text)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Clob) and self.text == other.text

    def __hash__(self) -> int:
        return hash(self.text)

    def __repr__(self) -> str:
        return f"Clob({len(self.text)} chars, {self.mime_type!r})"


class DatalinkValue:
    """A DATALINK value: a URL naming a file that lives outside the database.

    Per SQL/MED, the value entered via INSERT/UPDATE has the form::

        http://host/filesystem/directory/filename

    and a SELECT against a ``READ PERMISSION DB`` column yields::

        http://host/filesystem/directory/access_token;filename

    ``token`` is ``None`` for stored values; the datalink manager attaches a
    fresh token when producing result sets.
    """

    __slots__ = ("scheme", "host", "directory", "filename", "token", "size")

    def __init__(
        self,
        url: str,
        token: str | None = None,
        size: int | None = None,
    ) -> None:
        parsed = urlsplit(url)
        if parsed.scheme not in ("http", "https", "file", "ftp"):
            raise InvalidDatalinkValue(
                f"DATALINK URL must use http/https/file/ftp scheme: {url!r}"
            )
        if parsed.scheme != "file" and not parsed.netloc:
            raise InvalidDatalinkValue(f"DATALINK URL has no host: {url!r}")
        path = parsed.path
        if not path or path.endswith("/"):
            raise InvalidDatalinkValue(f"DATALINK URL has no filename: {url!r}")
        directory, _, filename = path.rpartition("/")
        if not filename:
            raise InvalidDatalinkValue(f"DATALINK URL has no filename: {url!r}")
        self.scheme = parsed.scheme
        self.host = parsed.netloc
        self.directory = directory or "/"
        self.filename = filename
        self.token = token
        self.size = size

    @property
    def url(self) -> str:
        """The plain URL (no access token), as stored in the database."""
        directory = self.directory.rstrip("/")
        return f"{self.scheme}://{self.host}{directory}/{self.filename}"

    @property
    def tokenized_url(self) -> str:
        """The SELECT-form URL ``.../access_token;filename``.

        Falls back to the plain URL when no token is attached (columns
        declared with ``READ PERMISSION FS``).
        """
        if self.token is None:
            return self.url
        directory = self.directory.rstrip("/")
        return f"{self.scheme}://{self.host}{directory}/{self.token};{self.filename}"

    @property
    def server_path(self) -> str:
        """The path component used to address the file on its file server."""
        directory = self.directory.rstrip("/")
        return f"{directory}/{self.filename}"

    def with_token(self, token: str) -> "DatalinkValue":
        """Return a copy of this value carrying ``token``."""
        return DatalinkValue(self.url, token=token, size=self.size)

    def with_size(self, size: int) -> "DatalinkValue":
        """Return a copy of this value annotated with the linked file size."""
        return DatalinkValue(self.url, token=self.token, size=size)

    @classmethod
    def parse_tokenized(cls, url: str) -> "DatalinkValue":
        """Parse a SELECT-form URL, splitting ``token;filename`` if present."""
        parsed = urlsplit(url)
        directory, _, last = parsed.path.rpartition("/")
        if ";" in last:
            token, _, filename = last.partition(";")
            plain = f"{parsed.scheme}://{parsed.netloc}{directory}/{filename}"
            return cls(plain, token=token)
        return cls(url)

    def __eq__(self, other: object) -> bool:
        # Token and size are presentation attributes: equality (and hence
        # uniqueness/index behaviour) is defined over the plain URL.
        return isinstance(other, DatalinkValue) and self.url == other.url

    def __hash__(self) -> int:
        return hash(self.url)

    def __repr__(self) -> str:
        return f"DatalinkValue({self.tokenized_url!r})"


class SqlType:
    """Base class for SQL column types."""

    #: keyword used in DDL, e.g. ``VARCHAR``
    name: str = "?"

    def validate(self, value: Any) -> Any:
        """Coerce ``value`` to this type, raising :class:`TypeMismatchError`.

        ``None`` (SQL NULL) is always accepted here; NOT NULL enforcement
        belongs to the constraint layer.
        """
        if value is None:
            return None
        return self._coerce(value)

    def _coerce(self, value: Any) -> Any:
        raise NotImplementedError

    def to_literal(self, value: Any) -> str:
        """Render ``value`` as an SQL literal (used by dump/backup tools)."""
        if value is None:
            return "NULL"
        return self._literal(value)

    def _literal(self, value: Any) -> str:
        return str(value)

    def sort_key(self, value: Any):
        """Key used for ORDER BY / sorted indexes.  NULLs sort first."""
        return value

    def ddl(self) -> str:
        """The DDL spelling of this type."""
        return self.name

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash(self.ddl())

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class AnyType(SqlType):
    """Permissive type used for view columns, whose values were already
    validated by the underlying tables when they were stored."""

    name = "ANY"

    def _coerce(self, value: Any) -> Any:
        return value


class IntegerType(SqlType):
    """64-bit style integer column."""

    name = "INTEGER"

    def _coerce(self, value: Any) -> int:
        if isinstance(value, bool):
            raise TypeMismatchError("INTEGER column cannot store a boolean")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value, 10)
            except ValueError:
                pass
        raise TypeMismatchError(f"not an INTEGER: {value!r}")


class DoubleType(SqlType):
    """Double-precision floating point column (DOUBLE / FLOAT / REAL)."""

    name = "DOUBLE"

    def _coerce(self, value: Any) -> float:
        if isinstance(value, bool):
            raise TypeMismatchError("DOUBLE column cannot store a boolean")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                pass
        raise TypeMismatchError(f"not a DOUBLE: {value!r}")


class BooleanType(SqlType):
    """Boolean column."""

    name = "BOOLEAN"

    def _coerce(self, value: Any) -> bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str) and value.upper() in ("TRUE", "FALSE"):
            return value.upper() == "TRUE"
        raise TypeMismatchError(f"not a BOOLEAN: {value!r}")

    def _literal(self, value: Any) -> str:
        return "TRUE" if value else "FALSE"


def _escape_sql_string(text: str) -> str:
    return "'" + text.replace("'", "''") + "'"


class VarcharType(SqlType):
    """Variable-length string with a maximum size."""

    name = "VARCHAR"

    def __init__(self, size: int = 255) -> None:
        if size <= 0:
            raise TypeMismatchError("VARCHAR size must be positive")
        self.size = size

    def _coerce(self, value: Any) -> str:
        if isinstance(value, (bytes, Blob, Clob, DatalinkValue, bool)):
            raise TypeMismatchError(f"not a VARCHAR: {value!r}")
        text = value if isinstance(value, str) else str(value)
        if len(text) > self.size:
            raise TypeMismatchError(
                f"value of length {len(text)} exceeds VARCHAR({self.size})"
            )
        return text

    def _literal(self, value: Any) -> str:
        return _escape_sql_string(value)

    def ddl(self) -> str:
        return f"VARCHAR({self.size})"

    def __repr__(self) -> str:
        return f"VarcharType({self.size})"


class CharType(VarcharType):
    """Fixed-length string; values are space-padded on storage."""

    name = "CHAR"

    def _coerce(self, value: Any) -> str:
        text = super()._coerce(value)
        return text.ljust(self.size)

    def ddl(self) -> str:
        return f"CHAR({self.size})"

    def __repr__(self) -> str:
        return f"CharType({self.size})"


class DateType(SqlType):
    """Calendar date column; accepts ``datetime.date`` or ISO strings."""

    name = "DATE"

    def _coerce(self, value: Any) -> _dt.date:
        if isinstance(value, _dt.datetime):
            return value.date()
        if isinstance(value, _dt.date):
            return value
        if isinstance(value, str):
            try:
                return _dt.date.fromisoformat(value)
            except ValueError:
                pass
        raise TypeMismatchError(f"not a DATE: {value!r}")

    def _literal(self, value: Any) -> str:
        return f"DATE '{value.isoformat()}'"


class TimestampType(SqlType):
    """Timestamp column; accepts ``datetime.datetime`` or ISO strings."""

    name = "TIMESTAMP"

    def _coerce(self, value: Any) -> _dt.datetime:
        if isinstance(value, _dt.datetime):
            return value
        if isinstance(value, _dt.date):
            return _dt.datetime(value.year, value.month, value.day)
        if isinstance(value, str):
            try:
                return _dt.datetime.fromisoformat(value)
            except ValueError:
                pass
        raise TypeMismatchError(f"not a TIMESTAMP: {value!r}")

    def _literal(self, value: Any) -> str:
        return f"TIMESTAMP '{value.isoformat(sep=' ')}'"


class BlobType(SqlType):
    """Binary large object stored inside the database."""

    name = "BLOB"

    def _coerce(self, value: Any) -> Blob:
        if isinstance(value, Blob):
            return value
        if isinstance(value, (bytes, bytearray)):
            return Blob(bytes(value))
        raise TypeMismatchError(f"not a BLOB: {value!r}")

    def _literal(self, value: Any) -> str:
        return "X'" + value.data.hex() + "'"

    def sort_key(self, value: Any):
        return value.data


class ClobType(SqlType):
    """Character large object stored inside the database."""

    name = "CLOB"

    def _coerce(self, value: Any) -> Clob:
        if isinstance(value, Clob):
            return value
        if isinstance(value, str):
            return Clob(value)
        raise TypeMismatchError(f"not a CLOB: {value!r}")

    def _literal(self, value: Any) -> str:
        return _escape_sql_string(value.text)

    def sort_key(self, value: Any):
        return value.text


class DatalinkType(SqlType):
    """SQL/MED DATALINK column type.

    The column options (``LINKTYPE URL``, ``FILE LINK CONTROL``,
    ``READ PERMISSION DB`` ...) are carried by a
    :class:`repro.datalink.spec.DatalinkSpec` attached by the DDL parser.
    The type itself only validates values; enforcement of link control is
    performed by the datalink manager registered with the database.
    """

    name = "DATALINK"

    def __init__(self, spec: Any = None) -> None:
        #: parsed column options; ``None`` means NO LINK CONTROL defaults
        self.spec = spec

    def _coerce(self, value: Any) -> DatalinkValue:
        if isinstance(value, DatalinkValue):
            return value
        if isinstance(value, str):
            return DatalinkValue(value)
        raise TypeMismatchError(f"not a DATALINK: {value!r}")

    def _literal(self, value: Any) -> str:
        return f"DLVALUE({_escape_sql_string(value.url)})"

    def sort_key(self, value: Any):
        return value.url

    def ddl(self) -> str:
        if self.spec is None:
            return self.name
        return f"{self.name} {self.spec.ddl()}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DatalinkType)

    def __hash__(self) -> int:
        return hash(self.name)


_SIMPLE_TYPES = {
    "INTEGER": IntegerType,
    "INT": IntegerType,
    "BIGINT": IntegerType,
    "SMALLINT": IntegerType,
    "DOUBLE": DoubleType,
    "FLOAT": DoubleType,
    "REAL": DoubleType,
    "BOOLEAN": BooleanType,
    "DATE": DateType,
    "TIMESTAMP": TimestampType,
    "BLOB": BlobType,
    "CLOB": ClobType,
    "DATALINK": DatalinkType,
}

_SIZED_TYPES = {
    "VARCHAR": VarcharType,
    "CHAR": CharType,
}


def type_from_name(name: str, size: int | None = None) -> SqlType:
    """Construct a type instance from its DDL keyword.

    >>> type_from_name("VARCHAR", 30).ddl()
    'VARCHAR(30)'
    >>> type_from_name("INT").name
    'INTEGER'
    """
    keyword = name.upper()
    if keyword in _SIZED_TYPES:
        if size is None:
            size = 255
        return _SIZED_TYPES[keyword](size)
    if keyword in _SIMPLE_TYPES:
        return _SIMPLE_TYPES[keyword]()
    raise TypeMismatchError(f"unknown SQL type: {name!r}")


# ---------------------------------------------------------------------------
# JSON serialisation for the write-ahead log and backup images
# ---------------------------------------------------------------------------


def value_to_json(value: Any) -> Any:
    """Encode a column value as a JSON-compatible object.

    Plain scalars pass through; richer values become tagged 2-lists so that
    :func:`value_from_json` can reverse the encoding exactly.
    """
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    if isinstance(value, Blob):
        return ["blob", base64.b64encode(value.data).decode("ascii"), value.mime_type]
    if isinstance(value, Clob):
        return ["clob", value.text, value.mime_type]
    if isinstance(value, DatalinkValue):
        return ["datalink", value.url]
    if isinstance(value, _dt.datetime):
        return ["timestamp", value.isoformat()]
    if isinstance(value, _dt.date):
        return ["date", value.isoformat()]
    raise TypeMismatchError(f"cannot serialise value for WAL: {value!r}")


def value_from_json(obj: Any) -> Any:
    """Reverse :func:`value_to_json`."""
    if not isinstance(obj, list):
        return obj
    tag = obj[0]
    if tag == "blob":
        return Blob(base64.b64decode(obj[1]), obj[2])
    if tag == "clob":
        return Clob(obj[1], obj[2])
    if tag == "datalink":
        return DatalinkValue(obj[1])
    if tag == "timestamp":
        return _dt.datetime.fromisoformat(obj[1])
    if tag == "date":
        return _dt.date.fromisoformat(obj[1])
    raise TypeMismatchError(f"unknown WAL value tag: {tag!r}")
