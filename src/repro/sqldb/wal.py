"""Write-ahead log and checkpointing.

Durable databases append one JSON line per committed transaction to
``<dir>/wal.jsonl``.  A checkpoint serialises the whole database into
``<dir>/checkpoint.json`` and truncates the log.  Recovery loads the most
recent checkpoint (if any) and replays the log's committed transactions —
an uncommitted (never appended) transaction is simply absent, giving
atomicity across crashes.

Values travel through :func:`repro.sqldb.types.value_to_json`, so BLOBs,
CLOBs, DATALINKs and temporal values round-trip exactly.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator

from repro.errors import RecoveryError
from repro.sqldb.types import value_from_json, value_to_json

__all__ = ["WriteAheadLog", "CHECKPOINT_NAME", "WAL_NAME"]

WAL_NAME = "wal.jsonl"
CHECKPOINT_NAME = "checkpoint.json"


def _encode_row(row: tuple) -> list:
    return [value_to_json(v) for v in row]


def _decode_row(row: list) -> tuple:
    return tuple(value_from_json(v) for v in row)


class WriteAheadLog:
    """Append-only logical log of committed transactions."""

    def __init__(self, directory: str, sync: bool = False) -> None:
        self.directory = directory
        self.sync = sync
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, WAL_NAME)
        self.checkpoint_path = os.path.join(directory, CHECKPOINT_NAME)

    # -- appending ---------------------------------------------------------------

    def append_transaction(self, txn_id: int, records: list[dict]) -> None:
        """Append one committed transaction as a single JSON line."""
        encoded = []
        for record in records:
            entry = dict(record)
            if "row" in entry:
                entry["row"] = _encode_row(entry["row"])
            encoded.append(entry)
        line = json.dumps({"txn": txn_id, "ops": encoded}, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            if self.sync:
                fh.flush()
                os.fsync(fh.fileno())

    # -- replay --------------------------------------------------------------------

    def iter_transactions(self) -> Iterator[tuple[int, list[dict]]]:
        """Yield ``(txn_id, ops)`` for every committed transaction.

        A torn final line (crash mid-append) is skipped: the transaction
        never committed.
        """
        if not os.path.exists(self.path):
            return
        with open(self.path, encoding="utf-8") as fh:
            for line_no, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    # Only the *final* line may be torn; anything earlier is
                    # corruption we must not silently skip.
                    remainder = fh.read().strip()
                    if remainder:
                        raise RecoveryError(
                            f"corrupt WAL record at line {line_no}"
                        ) from None
                    return
                ops = []
                for entry in payload["ops"]:
                    decoded = dict(entry)
                    if "row" in decoded:
                        decoded["row"] = _decode_row(decoded["row"])
                    ops.append(decoded)
                yield payload["txn"], ops

    # -- checkpointing ---------------------------------------------------------------

    def write_checkpoint(self, snapshot: dict[str, Any]) -> None:
        """Atomically persist ``snapshot`` and truncate the log."""
        tmp_path = self.checkpoint_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh)
        os.replace(tmp_path, self.checkpoint_path)
        # The checkpoint captures everything in the log; start fresh.
        with open(self.path, "w", encoding="utf-8"):
            pass

    def read_checkpoint(self) -> dict[str, Any] | None:
        if not os.path.exists(self.checkpoint_path):
            return None
        try:
            with open(self.checkpoint_path, encoding="utf-8") as fh:
                return json.load(fh)
        except (json.JSONDecodeError, OSError) as exc:
            raise RecoveryError(f"corrupt checkpoint: {exc}") from exc

    @staticmethod
    def encode_table_rows(rows: Iterator[tuple[int, tuple]]) -> list:
        return [[rowid, _encode_row(row)] for rowid, row in rows]

    @staticmethod
    def decode_table_rows(entries: list) -> list[tuple[int, tuple]]:
        return [(rowid, _decode_row(row)) for rowid, row in entries]
