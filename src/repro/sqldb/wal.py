"""Write-ahead log and checkpointing (record format v2).

Durable databases append one record per committed transaction to
``<dir>/wal.jsonl``.  A checkpoint serialises the whole database into
``<dir>/checkpoint.json`` and truncates the log.  Recovery loads the most
recent checkpoint (if any) and replays the log's committed transactions —
an uncommitted (never appended) transaction is simply absent, giving
atomicity across crashes.

Record format v2
----------------

Every appended line is::

    2|<crc32 hex, 8 digits>|{"lsn": N, "txn": T, "ops": [...]}

* The CRC32 covers the JSON payload bytes, so a torn or bit-rotted record
  is *detected* rather than inferred from JSON well-formedness.
* The **LSN** (log sequence number) increases monotonically across the
  database's whole life — it is never reset, not even when a checkpoint
  truncates the log.
* A v2 checkpoint document records the **watermark**: the highest LSN
  captured in the snapshot, plus a checkpoint **epoch** (generation
  counter).  Replay skips any record with ``lsn <= watermark``, which makes
  recovery *idempotent*: a crash between ``os.replace(checkpoint)`` and the
  WAL truncation leaves stale records behind, and the watermark ensures
  they are recognised and skipped instead of double-applied.

Lines starting with ``{`` are legacy v1 records (plain JSON, no checksum,
no LSN) and are still replayed; a checkpoint document without a
``"format"`` key is a v1 snapshot with watermark 0.  See
``docs/DURABILITY.md`` for the full contract, including fsync discipline
and what ``sync=False`` does and does not promise.

Values travel through :func:`repro.sqldb.types.value_to_json`, so BLOBs,
CLOBs, DATALINKs and temporal values round-trip exactly.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from typing import Any, Iterator

from repro import faultinject
from repro.errors import RecoveryError
from repro.obs import get_observability
from repro.sqldb.types import value_from_json, value_to_json

__all__ = ["WriteAheadLog", "CHECKPOINT_NAME", "WAL_NAME", "WAL_FORMAT_VERSION"]

WAL_NAME = "wal.jsonl"
CHECKPOINT_NAME = "checkpoint.json"
WAL_FORMAT_VERSION = 2

_V2_PREFIX = b"2|"


def _encode_row(row: tuple) -> list:
    return [value_to_json(v) for v in row]


def _decode_row(row: list) -> tuple:
    return tuple(value_from_json(v) for v in row)


def _fsync_dir(directory: str) -> None:
    """Flush a directory entry change (rename/create) to stable storage.

    POSIX only; on platforms where directories cannot be opened for fsync
    the call silently degrades — matching the platform's actual guarantee.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX platforms
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. fsync unsupported on dirs
        pass
    finally:
        os.close(fd)


class WriteAheadLog:
    """Append-only logical log of committed transactions."""

    def __init__(self, directory: str, sync: bool = False) -> None:
        self.directory = directory
        self.sync = sync
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, WAL_NAME)
        self.checkpoint_path = os.path.join(directory, CHECKPOINT_NAME)
        #: highest LSN known to exist (in the log or under the checkpoint
        #: watermark); the next append uses ``last_lsn + 1``
        self.last_lsn = 0
        #: watermark of the live checkpoint: records at or below it are
        #: already captured in the snapshot and must not be replayed
        self.checkpoint_lsn = 0
        #: checkpoint generation counter (bumped by every checkpoint)
        self.epoch = 0
        #: byte offset where a torn final record starts (set by a scan);
        #: :meth:`repair_torn_tail` truncates it away
        self._torn_tail_offset: int | None = None
        #: True once the existing log/checkpoint have been scanned so that
        #: ``last_lsn`` is authoritative
        self._positioned = not os.path.exists(self.path) and not os.path.exists(
            self.checkpoint_path
        )
        #: serialises appends and checkpoints: LSN allocation and the file
        #: write must be one atomic step so LSNs stay monotonic *in file
        #: order* even when multiple connections commit concurrently
        self._append_lock = threading.Lock()

    # -- appending ---------------------------------------------------------------

    def append_transaction(self, txn_id: int, records: list[dict]) -> int:
        """Append one committed transaction; returns its LSN.

        Thread-safe: one internal lock covers LSN allocation and the file
        write.  With ``sync=True`` the record is fsynced before returning
        (and the directory is fsynced when the append creates the log
        file), so a committed transaction survives power loss.  With
        ``sync=False`` the write is buffered by the OS — see
        docs/DURABILITY.md.
        """
        with self._append_lock:
            return self._append_locked(txn_id, records)

    def _append_locked(self, txn_id: int, records: list[dict]) -> int:
        self._ensure_positioned()
        encoded = []
        for record in records:
            entry = dict(record)
            if "row" in entry:
                entry["row"] = _encode_row(entry["row"])
            encoded.append(entry)
        lsn = self.last_lsn + 1
        payload = json.dumps(
            {"lsn": lsn, "txn": txn_id, "ops": encoded}, separators=(",", ":")
        )
        crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
        line = f"2|{crc:08x}|{payload}\n"
        if faultinject.should_crash("wal.append.torn"):
            # Simulated power loss mid-write: an unchecksummable prefix of
            # the record reaches the disk and no newline terminates it.
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line[: max(1, len(line) // 2)])
            raise faultinject.InjectedCrash("wal.append.torn")
        creating = self.sync and not os.path.exists(self.path)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
            if self.sync:
                fh.flush()
                os.fsync(fh.fileno())
        if creating:
            _fsync_dir(self.directory)
        if self.sync:
            obs = get_observability()
            if obs.enabled:
                obs.metrics.counter("wal.append.fsync").inc()
        faultinject.crash_point("wal.append.full_write")
        self.last_lsn = lsn
        return lsn

    # -- replay --------------------------------------------------------------------

    def iter_transactions(self) -> Iterator[tuple[int | None, int, list[dict]]]:
        """Yield ``(lsn, txn_id, ops)`` for every committed transaction.

        ``lsn`` is None for legacy v1 records.  A torn *final* record
        (crash mid-append) is skipped — that transaction never committed —
        and remembered so :meth:`repair_torn_tail` can truncate it; any
        earlier unreadable record is corruption and raises
        :class:`~repro.errors.RecoveryError`.
        """
        return iter(self._scan())

    def _scan(self) -> list[tuple[int | None, int, list[dict]]]:
        """Read and verify the whole log in one pass.

        The file is read fully *before* any verification so the torn-tail
        test cannot be confused by stream read-ahead: only the genuinely
        last non-blank record may be unreadable.
        """
        self._torn_tail_offset = None
        self._positioned = True
        if not os.path.exists(self.path):
            return []
        with open(self.path, "rb") as fh:
            raw = fh.read()
        pieces = raw.split(b"\n")
        offsets = []
        start = 0
        for piece in pieces:
            offsets.append(start)
            start += len(piece) + 1
        nonblank = [i for i, piece in enumerate(pieces) if piece.strip()]
        records: list[tuple[int | None, int, list[dict]]] = []
        prev_lsn: int | None = None
        for i in nonblank:
            record = self._parse_record(pieces[i].strip())
            if record is None:
                if i == nonblank[-1]:
                    # Torn final record: the transaction never committed.
                    self._torn_tail_offset = offsets[i]
                    break
                raise RecoveryError(f"corrupt WAL record at line {i + 1}")
            lsn = record[0]
            if lsn is not None:
                if prev_lsn is not None and lsn <= prev_lsn:
                    raise RecoveryError(
                        f"WAL LSN {lsn} at line {i + 1} is not monotonic "
                        f"(previous record has LSN {prev_lsn})"
                    )
                prev_lsn = lsn
                self.last_lsn = max(self.last_lsn, lsn)
            records.append(record)
        return records

    @staticmethod
    def _parse_record(piece: bytes) -> tuple[int | None, int, list[dict]] | None:
        """Decode one line; None means unreadable (torn or corrupt)."""
        if piece.startswith(_V2_PREFIX):
            parts = piece.split(b"|", 2)
            if len(parts) != 3:
                return None
            _tag, crc_hex, payload = parts
            try:
                crc = int(crc_hex, 16)
            except ValueError:
                return None
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                return None
            try:
                doc = json.loads(payload)
            except (ValueError, UnicodeDecodeError):  # pragma: no cover
                return None  # CRC passed but JSON did not: treat as corrupt
            lsn = doc.get("lsn")
        else:
            # Legacy v1 record: bare JSON, no checksum, no LSN.
            try:
                doc = json.loads(piece)
            except (ValueError, UnicodeDecodeError):
                return None
            if not isinstance(doc, dict) or "ops" not in doc:
                return None
            lsn = None
        ops = []
        for entry in doc["ops"]:
            decoded = dict(entry)
            if "row" in decoded:
                decoded["row"] = _decode_row(decoded["row"])
            ops.append(decoded)
        return lsn, doc.get("txn"), ops

    def repair_torn_tail(self) -> int:
        """Truncate the torn final record found by the last scan.

        Without this, the next append would concatenate onto the torn
        bytes and corrupt an otherwise-valid record.  Returns the number
        of bytes removed (0 when the tail was clean).
        """
        if self._torn_tail_offset is None:
            return 0
        removed = os.path.getsize(self.path) - self._torn_tail_offset
        with open(self.path, "r+b") as fh:
            fh.truncate(self._torn_tail_offset)
            if self.sync:
                os.fsync(fh.fileno())
        self._torn_tail_offset = None
        return removed

    def _ensure_positioned(self) -> None:
        """Make ``last_lsn`` authoritative before the first append.

        ``Database`` recovery always scans first; this protects standalone
        users of the class from restarting LSNs at 1 over an existing log.
        """
        if self._positioned:
            return
        self.read_checkpoint()
        self._scan()

    # -- checkpointing ---------------------------------------------------------------

    def write_checkpoint(self, snapshot: dict[str, Any]) -> None:
        """Atomically persist ``snapshot`` and truncate the log.

        Order of operations (each step leaves a recoverable state):

        1. write ``checkpoint.json.tmp`` and **fsync it** — a crash can
           only ever promote a fully-written snapshot;
        2. ``os.replace`` onto ``checkpoint.json`` and fsync the directory
           so the rename itself is durable;
        3. truncate the WAL.  A crash between 2 and 3 leaves stale records
           in the log, but they carry LSNs at or below the new snapshot's
           watermark and replay skips them.

        Takes the append lock, so no commit can slip its record into the
        log between computing the watermark and the truncation (such a
        record would be silently dropped).  An :class:`InjectedCrash`
        (BaseException) still releases the lock via ``with``.
        """
        with self._append_lock:
            self._write_checkpoint_locked(snapshot)

    def _write_checkpoint_locked(self, snapshot: dict[str, Any]) -> None:
        self._ensure_positioned()
        epoch = self.epoch + 1
        watermark = self.last_lsn
        doc = {
            "format": WAL_FORMAT_VERSION,
            "epoch": epoch,
            "lsn": watermark,
            "data": snapshot,
        }
        tmp_path = self.checkpoint_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
            fh.flush()
            os.fsync(fh.fileno())
        faultinject.crash_point("wal.checkpoint.tmp_written")
        os.replace(tmp_path, self.checkpoint_path)
        _fsync_dir(self.directory)
        faultinject.crash_point("wal.checkpoint.after_replace")
        # The checkpoint captures everything up to `watermark`; start fresh.
        with open(self.path, "w", encoding="utf-8") as fh:
            if self.sync:
                fh.flush()
                os.fsync(fh.fileno())
        faultinject.crash_point("wal.checkpoint.after_truncate")
        self.epoch = epoch
        self.checkpoint_lsn = watermark

    def read_checkpoint(self) -> dict[str, Any] | None:
        """Return the checkpoint snapshot (or None), v1 and v2 formats.

        Reading a v2 checkpoint installs its watermark and epoch on this
        log, so a subsequent :meth:`iter_transactions` caller can skip
        stale records and appends continue the LSN sequence.
        """
        if not os.path.exists(self.checkpoint_path):
            return None
        try:
            with open(self.checkpoint_path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (json.JSONDecodeError, OSError) as exc:
            raise RecoveryError(f"corrupt checkpoint: {exc}") from exc
        if isinstance(doc, dict) and doc.get("format") == WAL_FORMAT_VERSION:
            self.epoch = int(doc.get("epoch", 0))
            self.checkpoint_lsn = int(doc.get("lsn", 0))
            self.last_lsn = max(self.last_lsn, self.checkpoint_lsn)
            return doc["data"]
        # Legacy v1 checkpoint: the document *is* the snapshot; there is
        # no watermark, so every surviving WAL record replays (pre-v2
        # behaviour — see docs/DURABILITY.md on upgrading).
        self.checkpoint_lsn = 0
        return doc

    @staticmethod
    def encode_table_rows(rows: Iterator[tuple[int, tuple]]) -> list:
        return [[rowid, _encode_row(row)] for rowid, row in rows]

    @staticmethod
    def decode_table_rows(entries: list) -> list[tuple[int, tuple]]:
        return [(rowid, _decode_row(row)) for rowid, row in entries]
