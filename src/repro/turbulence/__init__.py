"""The UK Turbulence Consortium workload.

Synthetic stand-in for the paper's motivating application: numerical
turbulence simulations whose per-timestep snapshots (hundreds of
gigabytes in the original) are archived across distributed file servers
and post-processed server-side.

* :mod:`repro.turbulence.generator` — the TURB dataset container,
* :mod:`repro.turbulence.schema` — the paper's five-table schema,
* :mod:`repro.turbulence.codes` — GetImage / FieldStats / Subsample,
* :func:`build_turbulence_archive` — one call to a fully wired archive.
"""

from repro.turbulence.archive import (
    SDB_URL,
    TurbulenceArchive,
    build_turbulence_archive,
)
from repro.turbulence.codes import CODES, code_archive
from repro.turbulence.generator import (
    TURB_MAGIC,
    decode_snapshot,
    encode_snapshot,
    generate_snapshot,
    make_timestep_file,
    snapshot_nbytes,
)
from repro.turbulence.schema import TABLES, create_turbulence_schema

__all__ = [
    "build_turbulence_archive",
    "TurbulenceArchive",
    "SDB_URL",
    "CODES",
    "code_archive",
    "TURB_MAGIC",
    "generate_snapshot",
    "encode_snapshot",
    "decode_snapshot",
    "snapshot_nbytes",
    "make_timestep_file",
    "create_turbulence_schema",
    "TABLES",
]
