"""Build a populated turbulence archive.

One call assembles the whole EASIA deployment the paper demonstrates:
authors and simulations in the database at Southampton, per-timestep
result files distributed across file servers (archived where they were
generated), post-processing codes archived as DATALINKs, a customised
XUIS with the GetImage/FieldStats/Subsample operations and code-upload
permission, and the guest/user/admin accounts.
"""

from __future__ import annotations

import datetime as dt
import time
from typing import Callable

from repro.datalink import DataLinker, TokenManager
from repro.fileserver import FileServer
from repro.operations import OperationEngine, scientific_data_browser
from repro.operations.urlops import interactive_slice_browser
from repro.sqldb import Database
from repro.sqldb.types import Blob
from repro.turbulence.codes import CODES, code_archive
from repro.turbulence.generator import make_timestep_file
from repro.turbulence.schema import create_turbulence_schema
from repro.web.auth import UserManager
from repro.xuis import (
    Condition,
    Customizer,
    DatabaseResultLocation,
    OperationSpec,
    ParamSpec,
    RadioControl,
    SelectControl,
    UploadSpec,
    UrlLocation,
    XuisDocument,
    generate_default_xuis,
)

__all__ = ["TurbulenceArchive", "build_turbulence_archive", "SDB_URL"]

_AUTHORS = [
    ("Mark Papiani", "papiani@computer.org", "University of Southampton"),
    ("Jasmin Wason", "jlw98r@ecs.soton.ac.uk", "University of Southampton"),
    ("Denis Nicole", "dan@ecs.soton.ac.uk", "University of Southampton"),
    ("Kenji Takeda", "ktakeda@soton.ac.uk", "University of Southampton"),
]

_TITLES = [
    "Turbulent channel flow at Re_tau=180",
    "Temporal mixing layer",
    "Homogeneous isotropic decay",
    "Turbulent pipe flow",
    "Boundary layer with pressure gradient",
    "Taylor-Green vortex breakdown",
]

SDB_URL = "http://quagga.ecs.soton.ac.uk:8080/servlet/SDBservlet"
BROWSER_URL = "http://quagga.ecs.soton.ac.uk:8080/servlet/SliceBrowser"


class TurbulenceArchive:
    """A fully wired EASIA deployment over synthetic turbulence data."""

    def __init__(
        self,
        db: Database,
        linker: DataLinker,
        servers: list[FileServer],
        document: XuisDocument,
        users: UserManager,
        simulation_keys: list[str],
        grid: int,
        replication=None,
    ) -> None:
        self.db = db
        self.linker = linker
        #: the logical file servers URLs name — plain :class:`FileServer`
        #: instances, or :class:`~repro.replication.ReplicaSet` facades
        #: when the archive was built with ``replication_factor > 1``
        self.servers = servers
        self.document = document
        self.users = users
        self.simulation_keys = simulation_keys
        self.grid = grid
        #: the :class:`~repro.replication.ReplicationManager`, or None for
        #: an unreplicated deployment
        self.replication = replication

    def make_engine(self, sandbox_root: str, **kwargs) -> OperationEngine:
        """An operation engine over this archive, with the SDB URL service
        pre-registered."""
        engine = OperationEngine(
            self.db, self.linker, self.document, sandbox_root, **kwargs
        )
        engine.register_url_service(SDB_URL, scientific_data_browser)
        engine.register_url_service(BROWSER_URL, interactive_slice_browser)
        return engine

    def result_rows(self, simulation_key: str | None = None) -> list[dict]:
        """RESULT_FILE rows as colid-keyed dicts (operation-ready)."""
        sql = "SELECT * FROM RESULT_FILE"
        params: tuple = ()
        if simulation_key is not None:
            sql += " WHERE SIMULATION_KEY = ?"
            params = (simulation_key,)
        result = self.db.execute(sql, params)
        rows = []
        for row in result.rows:
            entry = {}
            for name, value in zip(result.columns, row):
                entry[f"RESULT_FILE.{name}"] = value
                entry[name] = value
            rows.append(entry)
        return rows

    @property
    def total_archived_bytes(self) -> int:
        return sum(server.filesystem.total_bytes() for server in self.servers)


def build_turbulence_archive(
    n_simulations: int = 3,
    timesteps: int = 3,
    grid: int = 16,
    n_file_servers: int = 2,
    seed: int = 7,
    token_validity: float = 600.0,
    time_source: Callable[[], float] = time.time,
    replication_factor: int = 1,
) -> TurbulenceArchive:
    """Assemble the archive.  Deterministic for a given parameter set.

    With ``replication_factor > 1`` each logical file server becomes a
    replica set over that many physical hosts (``fs1-a.soton.ac.uk``,
    ``fs1-b.soton.ac.uk``, ...): DATALINK URLs still name the logical
    host, reads fail over, and writes replicate asynchronously.
    """
    tokens = TokenManager(
        secret=b"easia-shared-secret", validity_seconds=token_validity,
        time_source=time_source,
    )
    linker = DataLinker(tokens)
    replication = None
    if replication_factor > 1:
        from repro.replication import ReplicationManager

        replication = ReplicationManager(
            linker, replication_factor, time_source=time_source
        )
        servers = []
        for i in range(n_file_servers):
            logical = f"fs{i + 1}.soton.ac.uk"
            physical = [
                FileServer(f"fs{i + 1}-{chr(ord('a') + j)}.soton.ac.uk")
                for j in range(replication_factor)
            ]
            servers.append(replication.create_replica_set(logical, physical))
    else:
        servers = [
            linker.register_server(FileServer(f"fs{i + 1}.soton.ac.uk"))
            for i in range(n_file_servers)
        ]
    db = Database()
    db.set_datalink_hooks(linker)
    create_turbulence_schema(db)

    # -- authors ---------------------------------------------------------
    author_keys = []
    for i, (name, email, institution) in enumerate(_AUTHORS):
        key = f"A1999011015{i:04d}"
        author_keys.append(key)
        db.execute(
            "INSERT INTO AUTHOR VALUES (?, ?, ?, ?)",
            (key, name, email, institution),
        )

    # -- simulations and result files -------------------------------------
    simulation_keys = []
    for s in range(n_simulations):
        sim_key = f"S1999011015{s:04d}"
        simulation_keys.append(sim_key)
        author = author_keys[s % len(author_keys)]
        title = _TITLES[s % len(_TITLES)]
        db.execute(
            "INSERT INTO SIMULATION VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                sim_key,
                author,
                title,
                f"Synthetic reproduction dataset for: {title}",
                grid,
                180.0 + 40.0 * s,
                timesteps,
                dt.date(1999, 1, 10),
            ),
        )
        # Archive each timestep where it was generated: simulations are
        # pinned to a home file server, round-robin.
        server = servers[s % len(servers)]
        for t in range(timesteps):
            data = make_timestep_file(grid, seed=seed + s, timestep=t)
            path = f"/data/{sim_key}/ts{t:04d}.turb"
            server.put(path, data)
            file_name = f"ts{t:04d}.turb"
            db.execute(
                "INSERT INTO RESULT_FILE VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    file_name,
                    sim_key,
                    t,
                    "u,v,w,p",
                    "TURB",
                    len(data),
                    f"http://{server.host}{path}",
                ),
            )

    # -- post-processing codes, archived as DATALINKs ------------------------
    code_server = servers[0]
    for code_name in sorted(CODES):
        archive_bytes = code_archive(code_name, "jar")
        path = f"/codes/{code_name}.jar"
        code_server.put(path, archive_bytes)
        db.execute(
            "INSERT INTO CODE_FILE VALUES (?, ?, ?, ?, ?)",
            (
                f"{code_name}.jar",
                None,
                "POST_PROCESS",
                f"Server-side post-processing code: {code_name}",
                f"http://{code_server.host}{path}",
            ),
        )

    # -- a visualisation file with a BLOB preview ------------------------------
    preview = Blob(b"P5\n2 2\n255\n\x00\x40\x80\xff", "image/x-portable-graymap")
    vis_path = f"/vis/{simulation_keys[0]}/overview.pgm"
    servers[0].put(vis_path, b"P5\n4 4\n255\n" + bytes(range(16)))
    db.execute(
        "INSERT INTO VISUALISATION_FILE VALUES (?, ?, ?, ?, ?)",
        (
            "overview.pgm",
            simulation_keys[0],
            "PGM",
            preview,
            f"http://{servers[0].host}{vis_path}",
        ),
    )

    document = _build_document(db, grid)
    users = _build_users()
    if replication is not None:
        # the build wrote through the primaries; catch the followers up so
        # the archive starts with zero replication lag
        replication.drain()
    return TurbulenceArchive(
        db, linker, servers, document, users, simulation_keys, grid,
        replication=replication,
    )


def _build_document(db: Database, grid: int) -> XuisDocument:
    """Default XUIS plus the paper's customisations."""
    base = generate_default_xuis(db, title="UK Turbulence Consortium Archive")
    slice_options = [
        (f"x{i}", f"x{i}={i / grid:.7g}") for i in range(min(grid, 8))
    ]
    turb_only = [Condition("RESULT_FILE.FILE_FORMAT", "eq", "TURB")]

    def code_location(jar: str) -> DatabaseResultLocation:
        return DatabaseResultLocation(
            "CODE_FILE.DOWNLOAD_CODE_FILE",
            [Condition("CODE_FILE.CODE_NAME", "eq", jar)],
        )

    get_image = OperationSpec(
        "GetImage",
        type="JAVA",
        filename="GetImage.class",
        format="jar",
        guest_access=True,
        conditions=turb_only,
        location=code_location("GetImage.jar"),
        params=[
            ParamSpec(
                "Select the slice you wish to visualise:",
                SelectControl("slice", slice_options, size=4),
            ),
            ParamSpec(
                "Select velocity component or pressure:",
                RadioControl(
                    "type",
                    [("u", "u speed"), ("v", "v speed"),
                     ("w", "w speed"), ("p", "pressure")],
                ),
            ),
        ],
        description="Visualise one slice of the dataset as an image",
    )
    field_stats = OperationSpec(
        "FieldStats",
        type="JAVA",
        filename="FieldStats.class",
        format="jar",
        guest_access=True,
        conditions=turb_only,
        location=code_location("FieldStats.jar"),
        description="Per-field min/max/mean/rms statistics",
    )
    subsample = OperationSpec(
        "Subsample",
        type="JAVA",
        filename="Subsample.class",
        format="jar",
        guest_access=False,  # guests are limited in the operations they run
        conditions=turb_only,
        location=code_location("Subsample.jar"),
        params=[
            ParamSpec(
                "Subsampling factor:",
                SelectControl("factor", [("2", "2"), ("4", "4"), ("8", "8")]),
            )
        ],
        description="Reduce the dataset by keeping every k-th grid point",
    )
    vorticity = OperationSpec(
        "Vorticity",
        type="JAVA",
        filename="Vorticity.class",
        format="jar",
        guest_access=True,
        conditions=turb_only,
        location=code_location("Vorticity.jar"),
        params=[
            ParamSpec(
                "Select the slice for the vorticity map:",
                SelectControl("slice", slice_options, size=4),
            )
        ],
        description="Vorticity magnitude on one slice, as an image",
    )
    spectrum = OperationSpec(
        "EnergySpectrum",
        type="JAVA",
        filename="EnergySpectrum.class",
        format="jar",
        guest_access=True,
        conditions=turb_only,
        location=code_location("EnergySpectrum.jar"),
        description="Radially binned kinetic-energy spectrum E(k)",
    )
    sdb = OperationSpec(
        "SDB",
        guest_access=True,
        conditions=turb_only,
        location=UrlLocation(SDB_URL),
        description="NCSA Scientific Data Browser",
    )
    slice_browser = OperationSpec(
        "SliceBrowser",
        guest_access=True,
        conditions=turb_only,
        location=UrlLocation(BROWSER_URL),
        params=[
            ParamSpec(
                "Component to browse interactively:",
                RadioControl(
                    "type",
                    [("u", "u speed"), ("v", "v speed"),
                     ("w", "w speed"), ("p", "pressure")],
                ),
            )
        ],
        description="Interactive applet-style slice browser",
    )
    customizer = (
        Customizer(base)
        .table_alias("SIMULATION", "Numerical Simulations")
        .substitute_fk("SIMULATION.AUTHOR_KEY", "AUTHOR.NAME")
        .attach_operation("RESULT_FILE.DOWNLOAD_RESULT", get_image)
        .attach_operation("RESULT_FILE.DOWNLOAD_RESULT", field_stats)
        .attach_operation("RESULT_FILE.DOWNLOAD_RESULT", subsample)
        .attach_operation("RESULT_FILE.DOWNLOAD_RESULT", vorticity)
        .attach_operation("RESULT_FILE.DOWNLOAD_RESULT", spectrum)
        .attach_operation("RESULT_FILE.DOWNLOAD_RESULT", sdb)
        .attach_operation("RESULT_FILE.DOWNLOAD_RESULT", slice_browser)
        .allow_upload(
            "RESULT_FILE.DOWNLOAD_RESULT",
            UploadSpec(
                type="JAVA",
                format="jar",
                guest_access=False,
                conditions=[Condition("RESULT_FILE.MEASUREMENT", "eq", "u,v,w,p")],
            ),
        )
    )
    return customizer.document


def _build_users() -> UserManager:
    users = UserManager(with_guest=True)  # guest/guest, as in the demo
    users.add_user("turbulence", "consortium", role="user")
    users.add_user("admin", "hpcadmin", role="admin")
    return users
