"""Post-processing codes for turbulence datasets.

These are the "standard reusable server-side post-processing codes" the
XUIS couples to datasets.  Each is a self-contained Python source (the
stand-in for the paper's Java classes / FORTRAN codes) obeying the
operation contract: read the dataset named by ``INPUT_FILENAME``, take
user parameters from ``PARAMS``, write output to relative filenames.
They parse the TURB container with the stdlib only, so they run under the
strict sandbox too.

* **GetImage** — extract one x-slice of one field and render it as a
  binary PGM image (the paper's visualisation figure: "Select the slice
  you wish to visualise", "Select velocity component or pressure").
* **FieldStats** — min/max/mean/rms per field, as a small JSON document
  (data reduction to a few hundred bytes).
* **Subsample** — every k-th grid point in each dimension, re-encoded as
  a TURB file (user-directed array subsetting).

:func:`code_archive` packages a code as a zip/jar the way the archive
stores them (CODE_FILE rows pointing at DATALINKed archives).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.operations.batch import pack_code_archive

__all__ = [
    "GET_IMAGE_SOURCE",
    "FIELD_STATS_SOURCE",
    "SUBSAMPLE_SOURCE",
    "code_archive",
    "CODES",
]

_READER_SNIPPET = '''
import struct
import array

def _read_snapshot(filename):
    fh = open(filename, "rb")
    data = fh.read()
    fh.close()
    if data[:4] != b"TURB":
        raise ValueError("not a TURB snapshot")
    nx, ny, nz = struct.unpack("<iii", data[4:16])
    count = nx * ny * nz
    fields = {}
    offset = 16
    for name in ("u", "v", "w", "p"):
        values = array.array("f")
        values.frombytes(data[offset:offset + 4 * count])
        fields[name] = values
        offset += 4 * count
    return nx, ny, nz, fields
'''

GET_IMAGE_SOURCE = _READER_SNIPPET + '''
nx, ny, nz, fields = _read_snapshot(INPUT_FILENAME)

slice_name = str(PARAMS.get("slice", "x0"))
if not slice_name.startswith("x"):
    raise ValueError("slice parameter must look like x<index>")
ix = int(slice_name[1:])
if ix < 0 or ix >= nx:
    raise ValueError("slice index out of range")

component = str(PARAMS.get("type", "u"))
if component not in ("u", "v", "w", "p"):
    raise ValueError("type must be one of u, v, w, p")
field = fields[component]

# Gather the (ny x nz) plane at x = ix; TURB arrays are C-ordered.
plane = []
lo = None
hi = None
for j in range(ny):
    row = []
    for k in range(nz):
        value = field[(ix * ny + j) * nz + k]
        row.append(value)
        if lo is None or value < lo:
            lo = value
        if hi is None or value > hi:
            hi = value
    plane.append(row)

span = (hi - lo) if hi > lo else 1.0
out = open("slice.pgm", "wb")
header = "P5\\n" + str(nz) + " " + str(ny) + "\\n255\\n"
out.write(header.encode("ascii"))
for row in plane:
    scaled = bytes(int(255 * (value - lo) / span) for value in row)
    out.write(scaled)
out.close()
print("wrote slice.pgm for", component, "at", slice_name)
'''

FIELD_STATS_SOURCE = _READER_SNIPPET + '''
import json
import math

nx, ny, nz, fields = _read_snapshot(INPUT_FILENAME)
report = {"grid": [nx, ny, nz], "fields": {}}
for name in ("u", "v", "w", "p"):
    values = fields[name]
    n = len(values)
    total = 0.0
    square_total = 0.0
    lo = values[0]
    hi = values[0]
    for value in values:
        total += value
        square_total += value * value
        if value < lo:
            lo = value
        if value > hi:
            hi = value
    mean = total / n
    report["fields"][name] = {
        "min": lo,
        "max": hi,
        "mean": mean,
        "rms": math.sqrt(square_total / n),
    }
out = open("stats.json", "w")
out.write(json.dumps(report, indent=2))
out.close()
print("wrote stats.json")
'''

SUBSAMPLE_SOURCE = _READER_SNIPPET + '''
import struct
import array

factor = int(PARAMS.get("factor", 2))
if factor < 1:
    raise ValueError("factor must be >= 1")

nx, ny, nz, fields = _read_snapshot(INPUT_FILENAME)
mx = len(range(0, nx, factor))
my = len(range(0, ny, factor))
mz = len(range(0, nz, factor))

out = open("subsampled.turb", "wb")
out.write(b"TURB")
out.write(struct.pack("<iii", mx, my, mz))
for name in ("u", "v", "w", "p"):
    field = fields[name]
    reduced = array.array("f")
    for i in range(0, nx, factor):
        for j in range(0, ny, factor):
            base = (i * ny + j) * nz
            for k in range(0, nz, factor):
                reduced.append(field[base + k])
    out.write(reduced.tobytes())
out.close()
print("wrote subsampled.turb", mx, my, mz)
'''

VORTICITY_SOURCE = _READER_SNIPPET + '''
# Vorticity magnitude on one x-slice, central differences with periodic
# wrap, rendered as a PGM image like GetImage.
slice_name = str(PARAMS.get("slice", "x0"))
ix = int(slice_name[1:])

nx, ny, nz, fields = _read_snapshot(INPUT_FILENAME)
if ix < 0 or ix >= nx:
    raise ValueError("slice index out of range")
u, v, w = fields["u"], fields["v"], fields["w"]

def at(field, i, j, k):
    return field[((i % nx) * ny + (j % ny)) * nz + (k % nz)]

plane = []
lo = None
hi = None
for j in range(ny):
    row = []
    for k in range(nz):
        dw_dy = (at(w, ix, j + 1, k) - at(w, ix, j - 1, k)) / 2.0
        dv_dz = (at(v, ix, j, k + 1) - at(v, ix, j, k - 1)) / 2.0
        du_dz = (at(u, ix, j, k + 1) - at(u, ix, j, k - 1)) / 2.0
        dw_dx = (at(w, ix + 1, j, k) - at(w, ix - 1, j, k)) / 2.0
        dv_dx = (at(v, ix + 1, j, k) - at(v, ix - 1, j, k)) / 2.0
        du_dy = (at(u, ix, j + 1, k) - at(u, ix, j - 1, k)) / 2.0
        wx = dw_dy - dv_dz
        wy = du_dz - dw_dx
        wz = dv_dx - du_dy
        magnitude = (wx * wx + wy * wy + wz * wz) ** 0.5
        row.append(magnitude)
        if lo is None or magnitude < lo:
            lo = magnitude
        if hi is None or magnitude > hi:
            hi = magnitude
    plane.append(row)

span = (hi - lo) if hi > lo else 1.0
out = open("vorticity.pgm", "wb")
header = "P5\\n" + str(nz) + " " + str(ny) + "\\n255\\n"
out.write(header.encode("ascii"))
for row in plane:
    out.write(bytes(int(255 * (value - lo) / span) for value in row))
out.close()
print("wrote vorticity.pgm at", slice_name)
'''

ENERGY_SPECTRUM_SOURCE = '''
# Radially binned kinetic-energy spectrum E(k) via FFT (numpy permitted).
import json
import struct
import numpy as np

fh = open(INPUT_FILENAME, "rb")
data = fh.read()
fh.close()
if data[:4] != b"TURB":
    raise ValueError("not a TURB snapshot")
nx, ny, nz = struct.unpack("<iii", data[4:16])
count = nx * ny * nz

fields = {}
offset = 16
for name in ("u", "v", "w"):
    flat = np.frombuffer(data, dtype="<f4", count=count, offset=offset)
    fields[name] = flat.reshape((nx, ny, nz)).astype(np.float64)
    offset += 4 * count

energy = np.zeros((nx, ny, nz))
for name in ("u", "v", "w"):
    spectral = np.fft.fftn(fields[name]) / count
    energy += 0.5 * np.abs(spectral) ** 2

kx = np.fft.fftfreq(nx) * nx
ky = np.fft.fftfreq(ny) * ny
kz = np.fft.fftfreq(nz) * nz
kgrid = np.sqrt(
    kx[:, None, None] ** 2 + ky[None, :, None] ** 2 + kz[None, None, :] ** 2
)
kmax = int(kgrid.max()) + 1
shells = np.zeros(kmax)
for shell in range(kmax):
    mask = (kgrid >= shell - 0.5) & (kgrid < shell + 0.5)
    shells[shell] = float(energy[mask].sum())

out = open("spectrum.json", "w")
out.write(json.dumps({
    "k": list(range(kmax)),
    "E": [float(e) for e in shells],
    "total_energy": float(energy.sum()),
}))
out.close()
print("wrote spectrum.json with", kmax, "shells")
'''

#: registry: operation code name -> source
CODES = {
    "GetImage": GET_IMAGE_SOURCE,
    "FieldStats": FIELD_STATS_SOURCE,
    "Subsample": SUBSAMPLE_SOURCE,
    "Vorticity": VORTICITY_SOURCE,
    "EnergySpectrum": ENERGY_SPECTRUM_SOURCE,
}


def code_archive(name: str, format: str = "jar") -> bytes:
    """Package a named code the way the archive stores operations
    (``GetImage`` -> jar containing ``GetImage.py``)."""
    try:
        source = CODES[name]
    except KeyError:
        raise ReproError(
            f"unknown code {name!r}; available: {sorted(CODES)}"
        ) from None
    return pack_code_archive({f"{name}.py": source.encode("utf-8")}, format)
