"""Synthetic turbulence simulation datasets.

The UK Turbulence Consortium's real result files (hundreds of gigabytes
per simulation) are obviously not available; this module generates
scaled-down stand-ins with the same *shape*: per-timestep snapshots of
three velocity components and pressure on a regular grid.

The container format (``TURB``) is deliberately simple so that sandboxed
post-processing codes can parse it with the stdlib only::

    bytes 0-3    magic b"TURB"
    bytes 4-15   nx, ny, nz as little-endian int32
    then         u, v, w, p — four float32 arrays, C order, nx*ny*nz each

Fields are built from a handful of sinusoidal modes plus seeded noise —
enough spatial structure that slices, statistics and subsampling all
produce meaningfully different outputs, while staying exactly
reproducible for tests.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import ReproError

__all__ = [
    "TURB_MAGIC",
    "generate_snapshot",
    "encode_snapshot",
    "decode_snapshot",
    "snapshot_nbytes",
    "make_timestep_file",
]

TURB_MAGIC = b"TURB"
_HEADER = struct.Struct("<4siii")


def snapshot_nbytes(nx: int, ny: int | None = None, nz: int | None = None) -> int:
    """On-disk size of a snapshot (defaults to a cubic grid)."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    return _HEADER.size + 4 * 4 * nx * ny * nz


def generate_snapshot(
    nx: int,
    ny: int | None = None,
    nz: int | None = None,
    seed: int = 0,
    timestep: int = 0,
) -> dict[str, np.ndarray]:
    """Build one snapshot: dict of float32 arrays ``u``, ``v``, ``w``, ``p``.

    The same (grid, seed, timestep) always yields identical data.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    if min(nx, ny, nz) < 1:
        raise ReproError("grid dimensions must be positive")
    rng = np.random.default_rng(seed * 100_003 + timestep)
    x = np.linspace(0.0, 2 * np.pi, nx, endpoint=False)
    y = np.linspace(0.0, 2 * np.pi, ny, endpoint=False)
    z = np.linspace(0.0, 2 * np.pi, nz, endpoint=False)
    xg, yg, zg = np.meshgrid(x, y, z, indexing="ij")

    phase = 0.15 * timestep
    fields: dict[str, np.ndarray] = {}
    # A Taylor-Green-style base flow with drifting phase plus noise gives
    # divergence-suppressed, visually structured velocity fields.
    fields["u"] = np.cos(xg + phase) * np.sin(yg) * np.sin(zg)
    fields["v"] = np.sin(xg + phase) * np.cos(yg) * np.sin(zg)
    fields["w"] = -2.0 * np.sin(xg + phase) * np.sin(yg) * np.cos(zg)
    fields["p"] = 0.25 * (np.cos(2 * (xg + phase)) + np.cos(2 * yg)) * np.cos(2 * zg)
    for name in fields:
        noise = rng.standard_normal(fields[name].shape)
        fields[name] = (fields[name] + 0.05 * noise).astype(np.float32)
    return fields


def encode_snapshot(fields: dict[str, np.ndarray]) -> bytes:
    """Serialise a snapshot into the TURB container."""
    try:
        u, v, w, p = fields["u"], fields["v"], fields["w"], fields["p"]
    except KeyError as exc:
        raise ReproError(f"snapshot is missing field {exc}") from exc
    if not (u.shape == v.shape == w.shape == p.shape):
        raise ReproError("snapshot fields have mismatched shapes")
    if u.ndim != 3:
        raise ReproError("snapshot fields must be 3-dimensional")
    nx, ny, nz = u.shape
    parts = [_HEADER.pack(TURB_MAGIC, nx, ny, nz)]
    for field in (u, v, w, p):
        parts.append(np.ascontiguousarray(field, dtype=np.float32).tobytes())
    return b"".join(parts)


def decode_snapshot(data: bytes) -> dict[str, np.ndarray]:
    """Parse a TURB container back into its four fields."""
    if len(data) < _HEADER.size or data[:4] != TURB_MAGIC:
        raise ReproError("not a TURB snapshot")
    _magic, nx, ny, nz = _HEADER.unpack_from(data)
    count = nx * ny * nz
    expected = _HEADER.size + 4 * 4 * count
    if len(data) != expected:
        raise ReproError(
            f"truncated TURB snapshot: expected {expected} bytes, got {len(data)}"
        )
    fields = {}
    offset = _HEADER.size
    for name in ("u", "v", "w", "p"):
        flat = np.frombuffer(data, dtype="<f4", count=count, offset=offset)
        fields[name] = flat.reshape((nx, ny, nz)).copy()
        offset += 4 * count
    return fields


def make_timestep_file(
    grid: int, seed: int, timestep: int
) -> bytes:
    """Convenience: generate + encode one timestep snapshot."""
    return encode_snapshot(generate_snapshot(grid, seed=seed, timestep=timestep))
