"""The schema-driven web interface.

Generates the paper's QBE search forms and hyperlinked result tables from
the XUIS, enforces the guest restrictions, and exposes the archive behind
servlet endpoints (:class:`EasiaApp`).

* :mod:`repro.web.http` — servlet container, sessions, responses,
* :mod:`repro.web.auth` — users, roles, guest limits,
* :mod:`repro.web.qbe` — Query-By-Example translation to SQL,
* :mod:`repro.web.forms` — query/operation/login form HTML,
* :mod:`repro.web.browse` — PK/FK/LOB/DATALINK hyperlink cells,
* :mod:`repro.web.render` — result tables with operations links,
* :mod:`repro.web.app` — the assembled application.
"""

from repro.web.app import EasiaApp
from repro.web.auth import ROLES, User, UserManager
from repro.web.browse import CellRenderer
from repro.web.forms import (
    page,
    render_login_form,
    render_operation_form,
    render_query_form,
)
from repro.web.http import (
    Request,
    Response,
    Servlet,
    ServletContainer,
    Session,
    SessionManager,
    escape,
)
from repro.web.qbe import OPERATORS, QbeQuery, Restriction, build_query_from_params
from repro.web.render import render_result_table, result_rows_as_dicts

__all__ = [
    "EasiaApp",
    "User",
    "UserManager",
    "ROLES",
    "CellRenderer",
    "render_result_table",
    "result_rows_as_dicts",
    "render_query_form",
    "render_operation_form",
    "render_login_form",
    "page",
    "QbeQuery",
    "Restriction",
    "OPERATORS",
    "build_query_from_params",
    "Request",
    "Response",
    "Servlet",
    "ServletContainer",
    "Session",
    "SessionManager",
    "escape",
]
