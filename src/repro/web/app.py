"""The EASIA web application.

Wires the whole architecture behind servlet endpoints, mirroring the
paper's deployment (one servlet container on the database-server host):

==========================  ====================================================
path                        behaviour
==========================  ====================================================
``/login`` / ``/logout``    session management (guest/guest works, as the demo)
``/``                       home: the visible tables, with query-form links
``/query``                  the generated QBE query form for one table
``/search``                 QBE submission -> hyperlinked result table
``/table``                  "alternatively request all data for a table"
``/browse/fk``              foreign-key browsing (full referenced row)
``/browse/pk``              primary-key browsing (referencing rows)
``/lob``                    BLOB/CLOB rematerialisation with MIME type
``/download``               DATALINK download via its file server (no guests)
``/operation/form``         parameter form generated from the XUIS
``/operation/run``          sandboxed server-side execution, results shipped
``/upload/form``/``run``    code upload for secure server-side execution
``/stats``                  operation statistics ("for benefit of future users")
``/metrics``                live metrics registry (text exposition)
``/trace``                  recent spans from the tracing ring buffer
``/admin/users``            web-based user management (admin only)
==========================  ====================================================

All state flows through the explicit ``session_id`` returned by
``/login`` (the JWS URL-rewriting model).
"""

from __future__ import annotations

from typing import Any

from repro.datalink import DataLinker
from repro.errors import (
    AuthenticationError,
    AuthorizationError,
    WebError,
)
from repro.operations import CodeUploader, OperationEngine
from repro.sqldb.database import Database
from repro.sqldb.types import Blob, Clob, DatalinkValue
from repro.web.auth import UserManager
from repro.web.forms import (
    page,
    render_login_form,
    render_operation_form,
    render_query_form,
)
from repro.web.http import Request, Response, ServletContainer, escape
from repro.web.qbe import build_query_from_params
from repro.web.render import render_result_table
from repro.xuis.model import XuisDocument, parse_colid

__all__ = ["EasiaApp"]

def _int_param(request: Request, name: str, default: int) -> int:
    value = request.param(name, default)
    try:
        return int(value)
    except (TypeError, ValueError):
        raise WebError(f"parameter {name!r} must be an integer") from None


def _export_cell_text(value) -> str:
    from repro.sqldb.types import Blob

    if value is None:
        return ""
    if isinstance(value, Blob):
        return f"<{len(value)} bytes>"
    if isinstance(value, Clob):
        return value.text
    if isinstance(value, DatalinkValue):
        return value.url
    return str(value)


def _rows_as_csv(columns: list[str], rows: list[tuple]) -> bytes:
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(columns)
    for row in rows:
        writer.writerow([_export_cell_text(v) for v in row])
    return buffer.getvalue().encode("utf-8")


def _rows_as_xml(table_name: str, columns: list[str], rows: list[tuple]) -> bytes:
    import xml.etree.ElementTree as ET

    root = ET.Element("resultset", {"table": table_name})
    for row in rows:
        row_el = ET.SubElement(root, "row")
        for name, value in zip(columns, row):
            cell = ET.SubElement(row_el, "field", {"name": name})
            cell.text = _export_cell_text(value)
    return ET.tostring(root, encoding="utf-8", xml_declaration=True)


_OUTPUT_MIME = {
    ".pgm": "image/x-portable-graymap",
    ".png": "image/png",
    ".html": "text/html",
    ".json": "application/json",
    ".txt": "text/plain",
    ".turb": "application/octet-stream",
}


class EasiaApp:
    """The assembled archive application."""

    def __init__(
        self,
        db: Database,
        linker: DataLinker,
        document: XuisDocument,
        users: UserManager,
        engine: OperationEngine,
        documents_by_role: dict[str, XuisDocument] | None = None,
        session_max_idle: float | None = None,
        time_source=None,
    ) -> None:
        self.db = db
        self.linker = linker
        self.document = document
        self.users = users
        self.engine = engine
        self.uploader = CodeUploader(engine)
        #: personalisation: different user classes may see different XUIS
        self.documents_by_role = documents_by_role or {}
        # One source of truth: the engine evaluates operation conditions
        # against the same document the interface renders.
        self.engine.document = document
        self.container = ServletContainer(session_max_idle, time_source)
        self._register_routes()

    # -- plumbing ---------------------------------------------------------------

    def _register_routes(self) -> None:
        container = self.container
        container.register("/login", self._login)
        container.register("/logout", self._logout)
        container.register("/", self._home)
        container.register("/query", self._query_form)
        container.register("/search", self._search)
        container.register("/table", self._whole_table)
        container.register("/browse/fk", self._browse_fk)
        container.register("/browse/pk", self._browse_pk)
        container.register("/lob", self._lob)
        container.register("/download", self._download)
        container.register("/operation/form", self._operation_form)
        container.register("/operation/run", self._operation_run)
        container.register("/upload/form", self._upload_form)
        container.register("/upload/run", self._upload_run)
        container.register("/export", self._export)
        container.register("/operation/progress", self._operation_progress)
        container.register("/stats", self._stats)
        container.register("/metrics", self._metrics)
        container.register("/trace", self._trace)
        container.register("/admin/users", self._admin_users)
        container.register("/admin/xuis", self._admin_xuis)

    def get(self, path: str, params: dict[str, Any] | None = None,
            session_id: str | None = None) -> Response:
        return self.container.dispatch(path, params, "GET", session_id)

    def post(self, path: str, params: dict[str, Any] | None = None,
             session_id: str | None = None,
             files: dict[str, bytes] | None = None) -> Response:
        return self.container.dispatch(path, params, "POST", session_id, files)

    def login(self, username: str, password: str) -> str:
        """Convenience: authenticate and return the new session id."""
        response = self.post(
            "/login", {"username": username, "password": password}
        )
        if not response.ok:
            raise AuthenticationError(response.text)
        return response.headers["X-Session-Id"]

    def document_for(self, user) -> XuisDocument:
        """Personalisation hook: role-specific XUIS if configured."""
        if user is not None and user.role in self.documents_by_role:
            return self.documents_by_role[user.role]
        return self.document

    # -- auth ----------------------------------------------------------------------

    def _login(self, request: Request) -> Response:
        if request.method != "POST":
            return Response.html(render_login_form())
        username = request.require_param("username")
        password = request.require_param("password")
        user = self.users.authenticate(username, password)
        session = self.container.sessions.create()
        session["user"] = user
        body = page(
            "EASIA",
            f"<p>Welcome, {escape(user.username)} (role: {escape(user.role)}).</p>"
            '<p><a href="/">Browse the archive</a></p>',
        )
        return Response(body, headers={"X-Session-Id": session.session_id})

    def _logout(self, request: Request) -> Response:
        if request.session is not None:
            self.container.sessions.invalidate(request.session.session_id)
        return Response.html(render_login_form("Logged out."))

    # -- searching and browsing -------------------------------------------------------

    def _home(self, request: Request) -> Response:
        user = request.require_user()
        document = self.document_for(user)
        items = "".join(
            f'<li><a href="/query?table={escape(t.name)}">'
            f"{escape(t.display_name)}</a> "
            f'(<a href="/table?name={escape(t.name)}">all data</a>)</li>'
            for t in document.visible_tables()
        )
        return Response.html(page(document.title, f"<ul>{items}</ul>"))

    def _query_form(self, request: Request) -> Response:
        user = request.require_user()
        document = self.document_for(user)
        table = document.table(request.require_param("table"))
        if table.hidden:
            raise WebError(f"table {table.name} is not available")
        return Response.html(render_query_form(table))

    def _search(self, request: Request) -> Response:
        user = request.require_user()
        document = self.document_for(user)
        table_name = request.require_param("table")
        table = document.table(table_name)
        query = build_query_from_params(table_name, request.params)
        if not self.db.catalog.is_view(table.name):
            query.bind_types(self.db.catalog.schema(table.name))

        page_number = max(1, _int_param(request, "page", 1))
        page_size = max(1, _int_param(request, "page_size", 50))
        if query.limit is None:
            query.limit = page_size
            query.offset = (page_number - 1) * page_size
        # Pagination is only meaningful over a deterministic order: default
        # to the primary key (the engine runs ORDER BY ... LIMIT as top-N).
        visible = {c.colid for c in table.visible_columns()}
        candidates = [c for c in table.primary_key if c in visible]
        if not candidates and table.visible_columns():
            candidates = [table.visible_columns()[0].colid]
        query.ensure_order(candidates)
        count_sql, count_params = query.count_sql()
        total = self.db.execute(count_sql, count_params).scalar() or 0

        sql, params = query.to_sql(table)
        result = self.db.execute(sql, params)
        footer = self._pagination_footer(
            request, page_number, page_size, total
        )
        return Response.html(
            render_result_table(
                self.db, document, table.name, result, user, footer_html=footer
            )
        )

    def _export(self, request: Request) -> Response:
        """Download query results as CSV or XML (same QBE parameters as
        ``/search``, plus ``format=csv|xml``)."""
        user = request.require_user()
        document = self.document_for(user)
        table_name = request.require_param("table")
        table = document.table(table_name)
        query = build_query_from_params(table_name, request.params)
        if not self.db.catalog.is_view(table.name):
            query.bind_types(self.db.catalog.schema(table.name))
        sql, params = query.to_sql(table)
        result = self.db.execute(sql, params)

        export_format = request.param("format", "csv").lower()
        if export_format == "csv":
            return Response.data(
                _rows_as_csv(result.columns, result.rows), "text/csv"
            )
        if export_format == "xml":
            return Response.data(
                _rows_as_xml(table.name, result.columns, result.rows),
                "application/xml",
            )
        raise WebError(f"unknown export format {export_format!r}")

    @staticmethod
    def _pagination_footer(request: Request, page_number: int,
                           page_size: int, total: int) -> str:
        """Prev/next navigation preserving the submitted form parameters."""
        from urllib.parse import urlencode

        pages = max(1, -(-total // page_size))
        if pages <= 1:
            return ""
        base = {
            k: v for k, v in request.params.items() if k not in ("page",)
        }
        parts = [f"<p>page {page_number} of {pages} ({total} rows)"]
        if page_number > 1:
            href = "/search?" + urlencode({**base, "page": page_number - 1})
            parts.append(f' <a class="prev" href="{escape(href)}">prev</a>')
        if page_number < pages:
            href = "/search?" + urlencode({**base, "page": page_number + 1})
            parts.append(f' <a class="next" href="{escape(href)}">next</a>')
        parts.append("</p>")
        return "".join(parts)

    @staticmethod
    def _order_clause(document, table_name: str) -> str:
        """``ORDER BY <pk>`` for tables whose XUIS spec names a primary
        key, so repeated browse requests return rows in a stable order."""
        if not document.has_table(table_name):
            return ""
        primary_key = document.table(table_name).primary_key
        if not primary_key:
            return ""
        columns = ", ".join(parse_colid(c)[1] for c in primary_key)
        return f" ORDER BY {columns}"

    def _whole_table(self, request: Request) -> Response:
        user = request.require_user()
        document = self.document_for(user)
        table = document.table(request.require_param("name"))
        visible = ", ".join(c.colid for c in table.visible_columns())
        sql = (
            f"SELECT {visible} FROM {table.name}"
            + self._order_clause(document, table.name)
        )
        limit = _int_param(request, "limit", 0)
        if limit > 0:
            # LIMIT makes the engine keep a top-N heap over the PK order
            # instead of materialising and sorting the whole table.
            sql += f" LIMIT {limit}"
        result = self.db.execute(sql)
        return Response.html(
            render_result_table(self.db, document, table.name, result, user)
        )

    def _browse_fk(self, request: Request) -> Response:
        """Foreign-key browsing: full details of the referenced row."""
        user = request.require_user()
        document = self.document_for(user)
        colid = request.require_param("colid")
        value = request.require_param("value")
        column = document.column(colid)
        if column.fk is None:
            raise WebError(f"{colid} is not a foreign key")
        ref_table, ref_column = parse_colid(column.fk.tablecolumn)
        result = self.db.execute(
            f"SELECT * FROM {ref_table} WHERE {ref_column} = ?"
            + self._order_clause(document, ref_table),
            (value,),
        )
        return Response.html(
            render_result_table(self.db, document, ref_table, result, user)
        )

    def _browse_pk(self, request: Request) -> Response:
        """Primary-key browsing: all referencing rows in one child table."""
        user = request.require_user()
        document = self.document_for(user)
        ref = request.require_param("ref")
        value = request.require_param("value")
        child_table, child_column = parse_colid(ref)
        result = self.db.execute(
            f"SELECT * FROM {child_table} WHERE {child_column} = ?"
            + self._order_clause(document, child_table),
            (value,),
        )
        return Response.html(
            render_result_table(self.db, document, child_table, result, user)
        )

    # -- object rematerialisation -----------------------------------------------------------

    def _find_row(self, table_name: str, params: dict[str, Any]):
        """Locate one row via ``key_<COLUMN>`` parameters."""
        schema = self.db.catalog.schema(table_name)
        clauses = []
        values = []
        for key, value in params.items():
            if key.startswith("key_"):
                column = key[len("key_"):].upper()
                schema.column(column)  # validates
                clauses.append(f"{column} = ?")
                values.append(value)
        if not clauses:
            raise WebError("no key_<column> parameters supplied")
        sql = f"SELECT * FROM {table_name} WHERE " + " AND ".join(clauses)
        result = self.db.execute(sql, tuple(values))
        if len(result.rows) != 1:
            raise WebError(
                f"key parameters matched {len(result.rows)} rows (need exactly 1)"
            )
        row = {}
        for name, value in zip(result.columns, result.rows[0]):
            row[f"{table_name.upper()}.{name}"] = value
            row[name] = value
        return row

    def _lob(self, request: Request) -> Response:
        """Rematerialise a BLOB/CLOB 'and return [it] to the user's browser
        with the appropriate MIME type set'."""
        request.require_user()
        table_name = request.require_param("table").upper()
        column_name = request.require_param("column").upper()
        row = self._find_row(table_name, request.params)
        value = row.get(f"{table_name}.{column_name}")
        if isinstance(value, Blob):
            return Response.data(value.data, value.mime_type)
        if isinstance(value, Clob):
            return Response.data(value.text.encode("utf-8"), value.mime_type)
        raise WebError(f"{table_name}.{column_name} holds no LOB for this row")

    def _download(self, request: Request) -> Response:
        """Dataset download via the DATALINK's file server.

        Guests cannot download datasets (the demo's restriction)."""
        user = request.require_user()
        if not user.can_download:
            raise AuthorizationError("guest users cannot download datasets")
        url = request.require_param("url")
        value = DatalinkValue.parse_tokenized(url)
        if value.token is None:
            # No token in the URL: obtain one through the datalink manager,
            # exactly as a fresh SELECT would.
            column = self._datalink_column_for(value)
            spec = column.type.spec if column is not None else None
            value = self.linker.decorate(value, spec)
        data = self.linker.download(value)
        return Response.data(data, "application/octet-stream")

    def _datalink_column_for(self, value: DatalinkValue):
        """Find the schema column whose stored value matches this URL."""
        for table in self.db.catalog.tables():
            for column in table.schema.datalink_columns:
                index = table.schema.column_index(column.name)
                for _rowid, row in table.scan():
                    stored = row[index]
                    if stored is not None and stored.url == value.url:
                        return column
        return None

    # -- operations -------------------------------------------------------------------------

    def _operation_context(self, request: Request):
        user = request.require_user()
        document = self.document_for(user)
        colid = request.require_param("colid")
        table_name, _column = parse_colid(colid)
        row = self._find_row(table_name, request.params)
        return user, document, colid, row

    def _operation_form(self, request: Request) -> Response:
        user, document, colid, row = self._operation_context(request)
        name = request.require_param("name")
        operation = self.engine.operation(colid, name)
        if not user.can_run_operation(operation):
            raise AuthorizationError(f"guests may not run {name}")
        hidden = {"name": name, "colid": colid}
        for key, value in request.params.items():
            if key.startswith("key_"):
                hidden[key] = str(value)
        return Response.html(render_operation_form(operation, hidden=hidden))

    def _operation_run(self, request: Request) -> Response:
        user, _document, colid, row = self._operation_context(request)
        name = request.require_param("name")
        operation = self.engine.operation(colid, name)
        params = {
            param.name: request.params[param.name]
            for param in operation.params
            if param.name in request.params
        }
        session_tag = (
            request.session.session_id if request.session else "anonymous"
        )
        result = self.engine.invoke(
            name, colid, row, params, user=user, session_tag=session_tag
        )
        return self._operation_response(result)

    def _operation_response(self, result) -> Response:
        if len(result.outputs) == 1:
            output_name, data = next(iter(result.outputs.items()))
            suffix = "." + output_name.rsplit(".", 1)[-1]
            mime = _OUTPUT_MIME.get(suffix, "application/octet-stream")
            return Response.data(data, mime)
        items = "".join(
            f"<li>{escape(name)} ({len(data)} bytes)</li>"
            for name, data in sorted(result.outputs.items())
        )
        stdout = (
            f"<pre>{escape(result.stdout)}</pre>" if result.stdout else ""
        )
        return Response.html(
            page(
                f"Operation {result.operation.name} output",
                f"<ul>{items}</ul>{stdout}",
            )
        )

    # -- code upload ---------------------------------------------------------------------------

    def _upload_form(self, request: Request) -> Response:
        user, document, colid, _row = self._operation_context(request)
        column = document.column(colid)
        if column.upload is None:
            raise WebError(f"{colid} does not accept uploads")
        if user.is_guest and not column.upload.guest_access:
            raise AuthorizationError("guest users cannot upload post-processing codes")
        hidden = "".join(
            f'<input type="hidden" name="{escape(k)}" value="{escape(v)}"/>'
            for k, v in request.params.items()
        )
        body = (
            f'<form method="POST" action="/upload/run">{hidden}'
            '<label>Class to run <input type="text" name="class"/></label> '
            '<label>Archive <input type="file" name="archive"/></label> '
            '<input type="submit" value="Upload and run"/></form>'
        )
        return Response.html(page("Upload post-processing code", body))

    def _upload_run(self, request: Request) -> Response:
        user, _document, colid, row = self._operation_context(request)
        archive = request.files.get("archive")
        if archive is None:
            raise WebError("no archive file uploaded")
        class_name = request.require_param("class")
        session_tag = (
            request.session.session_id if request.session else "anonymous"
        )
        result = self.uploader.run_upload(
            colid, row, archive, class_name, user=user, session_tag=session_tag
        )
        return self._operation_response(result)

    def _operation_progress(self, request: Request) -> Response:
        """Runtime monitoring of operation progress (future-work feature):
        the stage log of this session's recent invocations."""
        request.require_user()
        session_tag = (
            request.session.session_id if request.session else "anonymous"
        )
        events = self.engine.events_for_session(session_tag)
        rows = "".join(
            f"<tr><td>{seq}</td><td>{escape(op)}</td>"
            f"<td>{escape(stage)}</td><td>{escape(detail)}</td></tr>"
            for seq, _tag, op, stage, detail in events
        )
        body = (
            '<table border="1"><tr><th>#</th><th>operation</th>'
            "<th>stage</th><th>detail</th></tr>" + rows + "</table>"
            if events
            else "<p>no operations have run in this session yet</p>"
        )
        return Response.html(page("Operation progress", body))

    # -- statistics and administration ------------------------------------------------------------

    def _stats(self, request: Request) -> Response:
        request.require_user()
        items = "".join(
            f"<li>{escape(summary.describe())}</li>"
            for summary in self.engine.stats.summaries()
        )
        return Response.html(
            page("Operation statistics", f"<ul>{items or '<li>none yet</li>'}</ul>")
        )

    def _metrics(self, request: Request) -> Response:
        """Text exposition of the live metrics registry, plus engine-level
        cache statistics (Prometheus-flavoured, one metric per line)."""
        request.require_user()
        from repro.obs import get_observability

        obs = get_observability()
        lines = [obs.metrics.render_text().rstrip("\n")] if obs.enabled else []
        stats = self.db.statement_cache_stats
        lines.append(f"sql.statement_cache.entries {stats['entries']}")
        lines.append(f"sql.statement_cache.hit_ratio {stats['hit_ratio']:.4f}")
        cache = self.engine.cache
        lines.append(f"operation.cache.hits {cache.hits}")
        lines.append(f"operation.cache.misses {cache.misses}")
        lines.append(f"operation.cache.stored_bytes {cache.stored_bytes}")
        lines.append(f"datalink.links_applied.total {self.linker.links_applied}")
        lines.append(f"datalink.unlinks_applied.total {self.linker.unlinks_applied}")
        lines.append(f"datalink.tokens_issued.total {self.linker.tokens.issued_count}")
        replication = getattr(self.linker, "replication", None)
        if replication is not None:
            status = replication.status()
            lines.append(f"replication.sets {len(status['sets'])}")
            lines.append(f"replication.max_lag {status['max_lag']}")
            lines.append(
                f"replication.failovers.total {status['total_failovers']}"
            )
            for host, s in status["sets"].items():
                lines.append(
                    f'replication.queue.depth{{set="{host}"}} '
                    f"{s['queue_depth']}"
                )
                lines.append(f'replication.lag{{set="{host}"}} {s["max_lag"]}')
                up = sum(1 for r in s["replicas"] if r["status"] == "up")
                lines.append(
                    f'replication.replicas_up{{set="{host}"}} {up}'
                )
        body = "\n".join(line for line in lines if line) + "\n"
        return Response.data(body.encode("utf-8"), "text/plain")

    def _trace(self, request: Request) -> Response:
        """Recent spans from the tracer's ring buffer, newest last, with
        indentation following parent/child nesting inside each trace."""
        request.require_user()
        from repro.obs import get_observability

        obs = get_observability()
        spans = obs.tracer.snapshot()
        if not spans:
            return Response.html(
                page("Trace", "<p>no spans recorded (is observability "
                              "enabled? see repro.obs.enable)</p>")
            )
        depths: dict[int, int] = {}
        rows = []
        for span in spans:
            parent = span["parent_id"]
            depth = depths.get(parent, -1) + 1 if parent is not None else 0
            depths[span["span_id"]] = depth
            attrs = ", ".join(
                f"{k}={v}" for k, v in sorted(span["attributes"].items())
            )
            rows.append(
                f"<tr><td>{span['trace_id']}</td>"
                f"<td style=\"padding-left:{depth}em\">{escape(span['name'])}</td>"
                f"<td>{span['duration'] * 1e3:.3f} ms</td>"
                f"<td>{escape(span['status'])}</td>"
                f"<td>{escape(attrs)}</td></tr>"
            )
        body = (
            '<table border="1"><tr><th>trace</th><th>span</th>'
            "<th>duration</th><th>status</th><th>attributes</th></tr>"
            + "".join(rows) + "</table>"
        )
        return Response.html(page("Trace", body))

    def _admin_users(self, request: Request) -> Response:
        user = request.require_user()
        if not user.can_manage_users:
            raise AuthorizationError("user management requires the admin role")
        if request.method == "POST":
            action = request.param("action", "add")
            if action == "add":
                self.users.add_user(
                    request.require_param("username"),
                    request.require_param("password"),
                    request.param("role", "user"),
                )
            elif action == "remove":
                self.users.remove_user(request.require_param("username"))
            else:
                raise WebError(f"unknown action {action!r}")
        rows = "".join(
            f"<li>{escape(name)} ({escape(self.users.user(name).role)})</li>"
            for name in self.users.usernames()
        )
        return Response.html(page("User management", f"<ul>{rows}</ul>"))

    def _admin_xuis(self, request: Request) -> Response:
        """Download or hot-swap the XUIS (paper: "The default XUIS can be
        customised prior to system initialisation" — here, also at runtime).

        GET returns the active specification as XML; POST with an ``xuis``
        file validates the uploaded document against the DTD rules and the
        live catalog, then installs it atomically for the app *and* the
        operation engine."""
        user = request.require_user()
        if not user.can_manage_users:
            raise AuthorizationError("XUIS management requires the admin role")
        from repro.xuis import assert_valid, parse_xuis, serialize_xuis

        if request.method == "POST":
            payload = request.files.get("xuis")
            if payload is None:
                raise WebError("no xuis file uploaded")
            document = parse_xuis(payload.decode("utf-8"))
            assert_valid(document, self.db)
            self.document = document
            self.engine.document = document
            return Response.html(
                page("XUIS installed",
                     f"<p>{len(document.tables)} table(s) active.</p>")
            )
        return Response.data(
            serialize_xuis(self.document).encode("utf-8"), "application/xml"
        )
