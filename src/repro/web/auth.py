"""Users, roles and the guest restrictions.

The paper's demo archive had a ``guest/guest`` account with limited
rights: guests "cannot download datasets, cannot upload post-processing
codes, and are limited in the types of operations they can run".  Roles:

* ``guest`` — browse and search only; operations must be explicitly
  flagged ``guest.access="true"`` in the XUIS,
* ``user`` — may also download datasets and run all operations,
* ``admin`` — may additionally upload post-processing codes for *other*
  columns and manage users (the paper's web-based user management page).

Authorised (non-guest) users may upload code where the XUIS permits it.
"""

from __future__ import annotations

import hashlib
import secrets
import threading

from repro.errors import AuthenticationError, AuthorizationError

__all__ = ["User", "UserManager", "ROLES"]

ROLES = ("guest", "user", "admin")


def _hash_password(password: str, salt: str) -> str:
    return hashlib.sha256(f"{salt}:{password}".encode("utf-8")).hexdigest()


class User:
    """One account."""

    __slots__ = ("username", "role", "_salt", "_password_hash")

    def __init__(self, username: str, password: str, role: str = "user") -> None:
        if role not in ROLES:
            raise AuthorizationError(f"unknown role {role!r}")
        self.username = username
        self.role = role
        self._salt = secrets.token_hex(8)
        self._password_hash = _hash_password(password, self._salt)

    def check_password(self, password: str) -> bool:
        return secrets.compare_digest(
            self._password_hash, _hash_password(password, self._salt)
        )

    def set_password(self, password: str) -> None:
        self._salt = secrets.token_hex(8)
        self._password_hash = _hash_password(password, self._salt)

    # -- capability checks ----------------------------------------------------

    @property
    def is_guest(self) -> bool:
        return self.role == "guest"

    @property
    def can_download(self) -> bool:
        """Guests cannot download datasets."""
        return self.role in ("user", "admin")

    @property
    def can_upload_code(self) -> bool:
        """Guests cannot upload post-processing codes."""
        return self.role in ("user", "admin")

    @property
    def can_manage_users(self) -> bool:
        return self.role == "admin"

    def can_run_operation(self, operation) -> bool:
        """Guests are limited to operations flagged guest.access."""
        if self.is_guest:
            return bool(operation.guest_access)
        return True

    def __repr__(self) -> str:
        return f"User({self.username!r}, role={self.role})"


class UserManager:
    """Account store with the paper's default guest account."""

    def __init__(self, with_guest: bool = True) -> None:
        self._users: dict[str, User] = {}
        # the admin user-management page and concurrent logins touch the
        # store from multiple request threads
        self._lock = threading.Lock()
        if with_guest:
            self.add_user("guest", "guest", role="guest")

    def add_user(self, username: str, password: str, role: str = "user") -> User:
        with self._lock:
            if username in self._users:
                raise AuthorizationError(f"user {username!r} already exists")
            user = User(username, password, role)
            self._users[username] = user
            return user

    def remove_user(self, username: str) -> None:
        if username == "guest":
            raise AuthorizationError("the guest account cannot be removed")
        with self._lock:
            if username not in self._users:
                raise AuthenticationError(f"no such user {username!r}")
            del self._users[username]

    def authenticate(self, username: str, password: str) -> User:
        user = self._users.get(username)
        if user is None or not user.check_password(password):
            raise AuthenticationError("bad username or password")
        return user

    def user(self, username: str) -> User:
        try:
            return self._users[username]
        except KeyError:
            raise AuthenticationError(f"no such user {username!r}") from None

    def has_user(self, username: str) -> bool:
        return username in self._users

    def usernames(self) -> list[str]:
        return sorted(self._users)

    def set_role(self, username: str, role: str) -> None:
        if role not in ROLES:
            raise AuthorizationError(f"unknown role {role!r}")
        user = self.user(username)
        if user.username == "guest" and role != "guest":
            raise AuthorizationError("the guest account stays a guest")
        user.role = role
