"""Hyperlinked result-cell rendering — the paper's browsing model.

Four kinds of browsable cell, each becoming a hyperlink in result tables:

* **Foreign-key browsing** — a value in a foreign-key column links to the
  full referenced row ("selecting a link on an AUTHOR_KEY value will
  retrieve full details of the author").  With an XUIS ``substcolumn``,
  the displayed text is taken from the referenced table (e.g. the
  author's name) instead of the raw key.
* **Primary-key browsing** — a primary-key value links once per
  *referencing* table (from ``<pk><refby/></pk>``): SIMULATION_KEY offers
  links into RESULT_FILE, CODE_FILE and VISUALISATION_FILE.
* **BLOB/CLOB browsing** — the cell shows the object size; the link
  rematerialises the object with its MIME type.
* **DATALINK browsing** — the cell shows the linked file's size; the link
  target is the token-carrying URL on the remote file server.
"""

from __future__ import annotations

from typing import Any
from urllib.parse import quote_plus

from repro.sqldb.database import Database
from repro.sqldb.types import Blob, Clob, DatalinkValue
from repro.web.http import escape
from repro.xuis.model import XuisColumn, XuisDocument, XuisTable, parse_colid

__all__ = ["CellRenderer"]


def _q(value: Any) -> str:
    return quote_plus(str(value))


class CellRenderer:
    """Turns raw column values into the hyperlinked HTML cells."""

    def __init__(self, db: Database, document: XuisDocument) -> None:
        self._db = db
        self._document = document

    def render(self, table: XuisTable, column: XuisColumn, value: Any,
               row: dict[str, Any]) -> str:
        """HTML for one cell.  ``row`` maps colids to the full row's values
        (needed to address LOBs by primary key)."""
        if value is None:
            return ""
        if isinstance(value, DatalinkValue):
            return self._render_datalink(value)
        if isinstance(value, (Blob, Clob)):
            return self._render_lob(table, column, value, row)
        if column.fk is not None:
            return self._render_fk(column, value)
        if column.pk is not None and column.pk.refby:
            return self._render_pk(column, value)
        return escape(value)

    # -- datalink -----------------------------------------------------------

    def _render_datalink(self, value: DatalinkValue) -> str:
        size = f"{value.size} bytes" if value.size is not None else value.filename
        return (
            f'<a class="datalink" href="{escape(value.tokenized_url)}">'
            f"{escape(size)}</a>"
        )

    # -- lobs -------------------------------------------------------------------

    def _render_lob(self, table: XuisTable, column: XuisColumn, value,
                    row: dict[str, Any]) -> str:
        key_params = []
        for pk_colid in table.primary_key:
            if pk_colid in row and row[pk_colid] is not None:
                _t, pk_col = parse_colid(pk_colid)
                key_params.append(f"key_{_q(pk_col)}={_q(row[pk_colid])}")
        href = (
            f"/lob?table={_q(table.name)}&column={_q(column.name)}"
            + ("&" + "&".join(key_params) if key_params else "")
        )
        label = f"{len(value)} " + ("bytes" if isinstance(value, Blob) else "chars")
        return f'<a class="lob" href="{escape(href)}">{escape(label)}</a>'

    # -- foreign keys ------------------------------------------------------------

    def _render_fk(self, column: XuisColumn, value: Any) -> str:
        display = value
        if column.fk.substcolumn is not None:
            substituted = self._lookup_substitute(column, value)
            if substituted is not None:
                display = substituted
        href = (
            f"/browse/fk?colid={_q(column.colid)}&value={_q(value)}"
        )
        return f'<a class="fk" href="{escape(href)}">{escape(display)}</a>'

    def _lookup_substitute(self, column: XuisColumn, value: Any) -> Any:
        """Fetch the substitute display value from the referenced table."""
        ref_table, ref_column = parse_colid(column.fk.tablecolumn)
        _t, subst_column = parse_colid(column.fk.substcolumn)
        result = self._db.execute(
            f"SELECT {subst_column} FROM {ref_table} WHERE {ref_column} = ?",
            (value,),
        )
        return result.scalar()

    # -- primary keys ----------------------------------------------------------------

    def _render_pk(self, column: XuisColumn, value: Any) -> str:
        """The paper's customised PK rendering: one link per referencing
        table, labelled with that table's alias."""
        links = [escape(value)]
        for ref in column.pk.refby:
            ref_table, _ref_column = parse_colid(ref)
            label = ref_table
            if self._document.has_table(ref_table):
                label = self._document.table(ref_table).display_name
            href = f"/browse/pk?ref={_q(ref)}&value={_q(value)}"
            links.append(
                f'<a class="pk" href="{escape(href)}">{escape(label)}</a>'
            )
        return " ".join(links)
