"""HTML form generation from the XUIS.

Two generated artefacts, both shown as figures in the paper:

* the **query form** for a table — one row per visible column with a
  "return field" checkbox, an operator drop-down, a value box and the
  XUIS sample values as suggestions (QBE style),
* the **operation input form** — rendered from an operation's
  ``<parameters>`` markup at invocation time (select lists, radio groups,
  free inputs).
"""

from __future__ import annotations

from repro.web.http import escape
from repro.web.qbe import OPERATORS
from repro.xuis.model import (
    InputControl,
    OperationSpec,
    RadioControl,
    SelectControl,
    XuisTable,
)

__all__ = ["render_query_form", "render_operation_form", "render_login_form", "page"]


def page(title: str, body: str) -> str:
    """Wrap ``body`` in the archive's plain HTML frame."""
    return (
        "<html><head><title>" + escape(title) + "</title></head>"
        "<body><h1>" + escape(title) + "</h1>" + body + "</body></html>"
    )


def render_login_form(message: str = "") -> str:
    note = f"<p>{escape(message)}</p>" if message else ""
    body = (
        note
        + '<form method="POST" action="/login">'
        '<label>Username <input type="text" name="username"/></label> '
        '<label>Password <input type="password" name="password"/></label> '
        '<input type="submit" value="Log in"/></form>'
    )
    return page("EASIA Login", body)


def render_query_form(table: XuisTable, action: str = "/search") -> str:
    """The QBE query form for one table."""
    rows = []
    for column in table.visible_columns():
        samples = ""
        if column.samples:
            options = "".join(
                f'<option value="{escape(s)}">{escape(s)}</option>'
                for s in column.samples
            )
            samples = (
                f'<select name="sample_{escape(column.name)}" '
                f'class="samples"><option value="">sample values...</option>'
                f"{options}</select>"
            )
        operators = "".join(
            f'<option value="{escape(op)}">{escape(op)}</option>'
            for op in OPERATORS
        )
        rows.append(
            "<tr>"
            f"<td>{escape(column.display_name)}</td>"
            f'<td><input type="checkbox" name="show_{escape(column.name)}" '
            'checked="checked"/></td>'
            f'<td><select name="op_{escape(column.name)}">{operators}</select></td>'
            f'<td><input type="text" name="val_{escape(column.name)}"/></td>'
            f"<td>{samples}</td>"
            "</tr>"
        )
    header = (
        "<tr><th>Field</th><th>Return</th><th>Operator</th>"
        "<th>Restriction</th><th>Samples</th></tr>"
    )
    body = (
        f'<form method="GET" action="{escape(action)}">'
        f'<input type="hidden" name="table" value="{escape(table.name)}"/>'
        f'<table border="1">{header}{"".join(rows)}</table>'
        '<label>Order by <input type="text" name="order_by"/></label> '
        '<label>Limit <input type="text" name="limit"/></label> '
        '<input type="submit" value="Search"/>'
        "</form>"
    )
    return page(f"Query {table.display_name}", body)


def render_operation_form(
    operation: OperationSpec,
    action: str = "/operation/run",
    hidden: dict[str, str] | None = None,
) -> str:
    """The parameter-entry form for one operation invocation.

    ``hidden`` carries the invocation context (operation name, target
    column, target row key) through the form round-trip.
    """
    controls = []
    for param in operation.params:
        controls.append(f"<p>{escape(param.description)}</p>")
        control = param.control
        if isinstance(control, SelectControl):
            size = f' size="{control.size}"' if control.size else ""
            options = "".join(
                f'<option value="{escape(value)}">{escape(label)}</option>'
                for value, label in control.options
            )
            controls.append(
                f'<select name="{escape(control.name)}"{size}>{options}</select>'
            )
        elif isinstance(control, RadioControl):
            for i, (value, label) in enumerate(control.options):
                checked = ' checked="checked"' if i == 0 else ""
                controls.append(
                    f'<label><input type="radio" name="{escape(control.name)}" '
                    f'value="{escape(value)}"{checked}/>{escape(label)}</label>'
                )
        elif isinstance(control, InputControl):
            default = f' value="{escape(control.default)}"' if control.default else ""
            controls.append(
                f'<input type="{escape(control.input_type)}" '
                f'name="{escape(control.name)}"{default}/>'
            )
    hidden_inputs = "".join(
        f'<input type="hidden" name="{escape(k)}" value="{escape(v)}"/>'
        for k, v in (hidden or {}).items()
    )
    description = (
        f"<p>{escape(operation.description)}</p>" if operation.description else ""
    )
    body = (
        description
        + f'<form method="POST" action="{escape(action)}">'
        + hidden_inputs
        + "".join(controls)
        + '<p><input type="submit" value="Run operation"/></p></form>'
    )
    return page(f"Operation: {operation.name}", body)
