"""Servlet-style request/response framework.

The paper's implementation ran Java servlets inside the Java Web Server;
this module is the equivalent substrate: a :class:`ServletContainer`
dispatches :class:`Request` objects to registered :class:`Servlet`
handlers and returns :class:`Response` objects, with cookie-less session
tracking via an explicit session id (as JWS did with URL rewriting).

Everything is in-process and synchronous — the unit under study is the
generated interface, not socket plumbing.
"""

from __future__ import annotations

import html
import secrets
import threading
from time import perf_counter
from typing import Any, Callable, Mapping

from repro.errors import AuthenticationError, RoutingError, WebError
from repro.obs import get_observability

__all__ = [
    "Request",
    "Response",
    "Session",
    "SessionManager",
    "Servlet",
    "ServletContainer",
    "escape",
]


def escape(text: Any) -> str:
    """HTML-escape arbitrary values for safe interpolation."""
    return html.escape(str(text), quote=True)


class Session:
    """Server-side per-user state."""

    def __init__(self, session_id: str, created_at: float = 0.0) -> None:
        self.session_id = session_id
        self.attributes: dict[str, Any] = {}
        self.created_at = created_at
        self.last_used_at = created_at

    def get(self, key: str, default: Any = None) -> Any:
        return self.attributes.get(key, default)

    def __setitem__(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __getitem__(self, key: str) -> Any:
        return self.attributes[key]

    def __contains__(self, key: str) -> bool:
        return key in self.attributes


class SessionManager:
    """Creates and resolves sessions by id, with optional idle expiry.

    ``max_idle_seconds`` bounds the gap between requests on one session
    (None disables expiry); ``time_source`` abstracts the clock so tests
    and simulations can drive it.
    """

    def __init__(self, max_idle_seconds: float | None = None,
                 time_source=None) -> None:
        import time as _time

        self._sessions: dict[str, Session] = {}
        self.max_idle_seconds = max_idle_seconds
        self._time_source = time_source or _time.time
        # the threaded web tier creates/expires sessions from many request
        # threads; the store itself must be race-free
        self._lock = threading.Lock()

    def create(self) -> Session:
        session_id = secrets.token_urlsafe(12)
        session = Session(session_id, created_at=self._time_source())
        with self._lock:
            self._sessions[session_id] = session
        return session

    def get(self, session_id: str | None) -> Session | None:
        if session_id is None:
            return None
        now = self._time_source()
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                return None
            if (
                self.max_idle_seconds is not None
                and now - session.last_used_at > self.max_idle_seconds
            ):
                del self._sessions[session_id]
                return None
            session.last_used_at = now
            return session

    def invalidate(self, session_id: str) -> None:
        with self._lock:
            self._sessions.pop(session_id, None)

    def __len__(self) -> int:
        return len(self._sessions)


class Request:
    """One servlet invocation."""

    def __init__(
        self,
        path: str,
        params: Mapping[str, Any] | None = None,
        method: str = "GET",
        session: Session | None = None,
        files: Mapping[str, bytes] | None = None,
    ) -> None:
        self.path = path
        self.params = dict(params or {})
        self.method = method.upper()
        self.session = session
        #: uploaded files (name -> bytes), for the code-upload endpoint
        self.files = dict(files or {})

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)

    def require_param(self, name: str) -> Any:
        try:
            return self.params[name]
        except KeyError:
            raise WebError(f"missing required parameter {name!r}") from None

    @property
    def user(self):
        """The authenticated user attached to the session (or None)."""
        if self.session is None:
            return None
        return self.session.get("user")

    def require_user(self):
        user = self.user
        if user is None:
            raise AuthenticationError("login required")
        return user


class Response:
    """What a servlet returns."""

    def __init__(
        self,
        body: str | bytes = "",
        status: int = 200,
        content_type: str = "text/html",
        headers: Mapping[str, str] | None = None,
    ) -> None:
        self.body = body
        self.status = status
        self.content_type = content_type
        self.headers = dict(headers or {})

    @classmethod
    def html(cls, body: str, status: int = 200) -> "Response":
        return cls(body, status=status, content_type="text/html")

    @classmethod
    def data(cls, payload: bytes, mime_type: str) -> "Response":
        """Rematerialised object with its MIME type set (the paper's BLOB/
        CLOB hyperlink behaviour)."""
        return cls(payload, content_type=mime_type)

    @classmethod
    def redirect(cls, location: str) -> "Response":
        return cls("", status=302, headers={"Location": location})

    @classmethod
    def error(cls, message: str, status: int = 400) -> "Response":
        return cls.html(
            f"<html><body><h1>Error {status}</h1>"
            f"<p>{escape(message)}</p></body></html>",
            status=status,
        )

    @property
    def text(self) -> str:
        if isinstance(self.body, bytes):
            return self.body.decode("utf-8", errors="replace")
        return self.body

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def __repr__(self) -> str:
        return f"Response(status={self.status}, {self.content_type}, {len(self.body)}B)"


class Servlet:
    """Base handler; subclasses override :meth:`service`."""

    def service(self, request: Request) -> Response:
        raise NotImplementedError


class _FunctionServlet(Servlet):
    def __init__(self, fn: Callable[[Request], Response]) -> None:
        self._fn = fn

    def service(self, request: Request) -> Response:
        return self._fn(request)


class ServletContainer:
    """Routes paths to servlets and manages sessions.

    Error policy mirrors a production container: handler exceptions become
    error responses (401/403/404/400) rather than propagating, so one bad
    request cannot take the archive down.
    """

    def __init__(self, session_max_idle: float | None = None,
                 time_source=None) -> None:
        self.sessions = SessionManager(session_max_idle, time_source)
        self._routes: dict[str, Servlet] = {}
        #: optional per-request database connection pool (threaded serving)
        self._pool = None

    def use_connection_pool(self, pool) -> None:
        """Serve each request on a pooled database connection.

        With a :class:`~repro.sqldb.connection.ConnectionPool` installed,
        every dispatch checks a connection out and installs it as the
        calling thread's implicit connection, so all ``db.execute`` calls
        inside the handlers run on it (snapshot reads, independent
        transaction state).  Checkout blocking doubles as backpressure
        when every pooled connection is busy; a checkout timeout maps to
        ``503``.
        """
        self._pool = pool

    def register(self, path: str, servlet: Servlet | Callable[[Request], Response]) -> None:
        if path in self._routes:
            raise WebError(f"path {path!r} already registered")
        if not isinstance(servlet, Servlet):
            servlet = _FunctionServlet(servlet)
        self._routes[path] = servlet

    def routes(self) -> list[str]:
        return sorted(self._routes)

    def dispatch(
        self,
        path: str,
        params: Mapping[str, Any] | None = None,
        method: str = "GET",
        session_id: str | None = None,
        files: Mapping[str, bytes] | None = None,
    ) -> Response:
        """Route one request, converting errors into HTTP-ish responses.

        Every dispatch reports through the observability layer (when
        enabled): an ``http.request`` span plus per-route latency
        histograms and status counters.
        """
        obs = get_observability()
        if not obs.enabled:
            return self._dispatch_inner(path, params, method, session_id, files)
        with obs.tracer.span("http.request", path=path, method=method) as span:
            started = perf_counter()
            response = self._dispatch_inner(
                path, params, method, session_id, files
            )
            elapsed = perf_counter() - started
            span.set(status=response.status, elapsed=elapsed)
        obs.metrics.counter(
            "http.requests", path=path, status=response.status
        ).inc()
        obs.metrics.histogram("http.request_seconds", path=path).observe(elapsed)
        if response.status >= 500:
            obs.events.emit(
                "http.error", path=path, status=response.status,
                detail=response.text[:200],
            )
        return response

    def _dispatch_inner(
        self,
        path: str,
        params: Mapping[str, Any] | None,
        method: str,
        session_id: str | None,
        files: Mapping[str, bytes] | None,
    ) -> Response:
        from repro.errors import (
            AllReplicasDownError,
            AuthorizationError,
            LockTimeout,
            OperationError,
            PermissionDeniedError,
            ReproError,
            TokenError,
        )

        servlet = self._routes.get(path)
        if servlet is None:
            return Response.error(f"no servlet registered for {path}", 404)
        session = self.sessions.get(session_id)
        request = Request(path, params, method, session, files)
        try:
            if self._pool is not None:
                with self._pool.scope():
                    return servlet.service(request)
            return servlet.service(request)
        except AuthenticationError as exc:
            return Response.error(str(exc), 401)
        except (AuthorizationError, PermissionDeniedError, TokenError) as exc:
            return Response.error(str(exc), 403)
        except RoutingError as exc:
            return Response.error(str(exc), 404)
        except LockTimeout as exc:
            # pool exhausted, or the writer lock stayed contended past the
            # timeout: the server is busy, not the request wrong
            return Response.error(str(exc), 503)
        except AllReplicasDownError as exc:
            # replicated downloads fail over transparently; only the loss
            # of *every* replica of a logical host surfaces as an error
            return Response.error(str(exc), 503)
        except (ReproError, OperationError) as exc:
            return Response.error(str(exc), 400)
        except Exception as exc:  # a handler bug must not kill the archive
            return Response.error(
                f"internal error: {type(exc).__name__}: {exc}", 500
            )
