"""Query By Example.

The generated query form presents, for each visible column of a table, a
checkbox ("return this field"), an operator drop-down and a value box with
sample values to pick from.  Submitting the form produces a
:class:`QbeQuery`, which this module translates into a parameterised
SELECT against the engine.

Paper: "On the query form, the user selects the fields to be returned.
Also for each field present, restrictions including wildcards may be put
on the values of the data."
"""

from __future__ import annotations

from typing import Any

from repro.errors import WebError
from repro.xuis.model import XuisTable, parse_colid

__all__ = ["QbeQuery", "Restriction", "OPERATORS", "build_query_from_params"]

#: operator choices offered by the form, in display order
OPERATORS = ("=", "<>", "<", "<=", ">", ">=", "LIKE")


class Restriction:
    """One restriction row of the form: ``column <op> value``."""

    __slots__ = ("colid", "op", "value")

    def __init__(self, colid: str, op: str, value: Any) -> None:
        op = op.upper()
        if op not in OPERATORS:
            raise WebError(f"unsupported QBE operator {op!r}")
        self.colid = colid.upper()
        self.op = op
        self.value = value

    def normalised_op(self) -> str:
        """Promote ``=`` with SQL wildcards to LIKE, the QBE convention."""
        if (
            self.op == "="
            and isinstance(self.value, str)
            and ("%" in self.value or "_" in self.value)
        ):
            return "LIKE"
        return self.op

    def __repr__(self) -> str:
        return f"Restriction({self.colid} {self.op} {self.value!r})"


class QbeQuery:
    """A filled-in query form for one table."""

    def __init__(
        self,
        table: str,
        fields: list[str] | None = None,
        restrictions: list[Restriction] | None = None,
        order_by: str | None = None,
        descending: bool = False,
        limit: int | None = None,
        offset: int | None = None,
    ) -> None:
        self.table = table.upper()
        #: colids to return; None/empty = all visible columns
        self.fields = [f.upper() for f in (fields or [])]
        self.restrictions = list(restrictions or [])
        self.order_by = order_by.upper() if order_by else None
        self.descending = descending
        self.limit = limit
        self.offset = offset

    def validate(self, xuis_table: XuisTable) -> None:
        """Reject references to unknown or hidden columns — users cannot
        smuggle hidden attributes back through hand-crafted parameters."""
        visible = {c.colid for c in xuis_table.visible_columns()}
        for colid in self.fields:
            if colid not in visible:
                raise WebError(f"field {colid} is not queryable")
        for restriction in self.restrictions:
            if restriction.colid not in visible:
                raise WebError(f"restriction on non-queryable {restriction.colid}")
        if self.order_by is not None and self.order_by not in visible:
            raise WebError(f"cannot order by {self.order_by}")

    def bind_types(self, schema) -> None:
        """Coerce restriction values (HTML forms deliver strings) to the
        engine types of their columns, using the catalog ``schema``.

        LIKE restrictions stay textual; a value that cannot be coerced is a
        user input error surfaced as :class:`WebError`.
        """
        from repro.errors import TypeMismatchError

        for restriction in self.restrictions:
            if restriction.normalised_op() == "LIKE":
                continue
            _table, column_name = parse_colid(restriction.colid)
            column = schema.column(column_name)
            try:
                restriction.value = column.type.validate(restriction.value)
            except TypeMismatchError as exc:
                raise WebError(
                    f"bad restriction value for {restriction.colid}: {exc}"
                ) from exc

    def ensure_order(self, colids: list[str]) -> None:
        """Default the sort order to the first of ``colids`` (typically the
        table's primary-key colids) when the form requested none.

        Paginated results are only meaningful over a deterministic order;
        the engine turns the resulting ``ORDER BY ... LIMIT`` into a top-N
        heap, so the default costs O(n log k), not a full sort.
        """
        if self.order_by is None and colids:
            self.order_by = colids[0].upper()

    def to_sql(self, xuis_table: XuisTable | None = None) -> tuple[str, tuple]:
        """Render as parameterised SQL; returns ``(sql, params)``."""
        if xuis_table is not None:
            self.validate(xuis_table)
            default_fields = [c.colid for c in xuis_table.visible_columns()]
        else:
            default_fields = []
        fields = self.fields or default_fields
        if fields:
            select_list = ", ".join(_column_expr(colid) for colid in fields)
        else:
            select_list = "*"
        sql = [f"SELECT {select_list} FROM {self.table}"]
        params: list[Any] = []
        if self.restrictions:
            clauses = []
            for restriction in self.restrictions:
                op = restriction.normalised_op()
                clauses.append(f"{_column_expr(restriction.colid)} {op} ?")
                params.append(restriction.value)
            sql.append("WHERE " + " AND ".join(clauses))
        if self.order_by:
            direction = " DESC" if self.descending else ""
            sql.append(f"ORDER BY {_column_expr(self.order_by)}{direction}")
        if self.limit is not None:
            sql.append(f"LIMIT {int(self.limit)}")
        if self.offset:
            sql.append(f"OFFSET {int(self.offset)}")
        return " ".join(sql), tuple(params)

    def count_sql(self) -> tuple[str, tuple]:
        """A COUNT(*) over the same restrictions (drives pagination)."""
        sql = [f"SELECT COUNT(*) FROM {self.table}"]
        params: list[Any] = []
        if self.restrictions:
            clauses = []
            for restriction in self.restrictions:
                op = restriction.normalised_op()
                clauses.append(f"{_column_expr(restriction.colid)} {op} ?")
                params.append(restriction.value)
            sql.append("WHERE " + " AND ".join(clauses))
        return " ".join(sql), tuple(params)

    def __repr__(self) -> str:
        return f"QbeQuery({self.table}, {len(self.restrictions)} restriction(s))"


def _column_expr(colid: str) -> str:
    """``TABLE.COLUMN`` colids go into SQL verbatim; bare names pass through."""
    if "." in colid:
        table, column = parse_colid(colid)
        return f"{table}.{column}"
    return colid


def build_query_from_params(table: str, params: dict[str, Any]) -> QbeQuery:
    """Decode an HTML form submission into a :class:`QbeQuery`.

    Form field conventions (what ``render_query_form`` emits):

    * ``show_<COLUMN>`` = "on"       — include the column in the output,
    * ``op_<COLUMN>`` = operator     — restriction operator,
    * ``val_<COLUMN>`` = text        — restriction value ('' = no restriction),
    * ``order_by`` / ``order_dir``   — sorting,
    * ``limit``                      — row cap.
    """
    table = table.upper()
    fields: list[str] = []
    restrictions: list[Restriction] = []
    for key, value in params.items():
        if key.startswith("show_") and value in ("on", "true", True):
            fields.append(f"{table}.{key[len('show_'):]}")
        elif key.startswith("val_") and value not in (None, ""):
            column = key[len("val_"):]
            op = params.get(f"op_{column}", "=")
            restrictions.append(Restriction(f"{table}.{column}", op, value))
    order_by = params.get("order_by") or None
    if order_by and "." not in order_by:
        order_by = f"{table}.{order_by}"
    limit_text = params.get("limit")
    limit = None
    if limit_text not in (None, ""):
        try:
            limit = int(limit_text)
        except (TypeError, ValueError):
            raise WebError("limit must be an integer") from None
        if limit < 0:
            raise WebError("limit cannot be negative")
    return QbeQuery(
        table,
        fields=fields,
        restrictions=restrictions,
        order_by=order_by,
        descending=params.get("order_dir") == "desc",
        limit=limit,
    )
