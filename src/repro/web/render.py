"""Result-table rendering.

Produces the paper's result tables: column headers use XUIS aliases,
cells carry the browse hyperlinks, and rows whose DATALINK column has
applicable operations get "Operations" links (plus an "Upload code" link
where the XUIS permits it for the current user).
"""

from __future__ import annotations

from typing import Any
from urllib.parse import quote_plus

from repro.sqldb.database import Database, Result
from repro.web.auth import User
from repro.web.browse import CellRenderer
from repro.web.forms import page
from repro.web.http import escape
from repro.xuis.model import XuisDocument, XuisTable

__all__ = ["render_result_table", "result_rows_as_dicts"]


def result_rows_as_dicts(table: XuisTable, result: Result) -> list[dict[str, Any]]:
    """Zip result rows into colid-keyed dicts (the shape conditions and the
    cell renderer consume)."""
    out = []
    for row in result.rows:
        entry: dict[str, Any] = {}
        for name, value in zip(result.columns, row):
            entry[f"{table.name}.{name}"] = value
            entry[name] = value
        out.append(entry)
    return out


def render_result_table(
    db: Database,
    document: XuisDocument,
    table_name: str,
    result: Result,
    user: User | None = None,
    footer_html: str = "",
) -> str:
    """HTML for a query result against ``table_name``.

    ``footer_html`` (e.g. pagination links) is appended below the table.
    """
    table = document.table(table_name)
    renderer = CellRenderer(db, document)
    columns = [
        table.column(name) for name in result.columns if table.has_column(name)
    ]
    operations_column = _operations_apply(table, columns)

    headers = "".join(
        f"<th>{escape(column.display_name)}</th>" for column in columns
    )
    if operations_column:
        headers += "<th>Operations</th>"

    body_rows = []
    for row_dict in result_rows_as_dicts(table, result):
        cells = []
        for column in columns:
            value = row_dict.get(column.colid)
            cells.append(
                f"<td>{renderer.render(table, column, value, row_dict)}</td>"
            )
        if operations_column:
            cells.append(f"<td>{_render_operations_cell(table, row_dict, user)}</td>")
        body_rows.append("<tr>" + "".join(cells) + "</tr>")

    count = len(result.rows)
    body = (
        f"<p>{count} row(s)</p>"
        f'<table border="1"><tr>{headers}</tr>{"".join(body_rows)}</table>'
        f"{footer_html}"
    )
    return page(f"Results: {table.display_name}", body)


def _operations_apply(table: XuisTable, columns) -> bool:
    return any(c.operations or c.upload is not None for c in columns)


def _row_key_params(table: XuisTable, row_dict: dict[str, Any]) -> str:
    parts = []
    for pk_colid in table.primary_key:
        value = row_dict.get(pk_colid)
        if value is not None:
            column = pk_colid.split(".", 1)[1]
            parts.append(f"key_{quote_plus(column)}={quote_plus(str(value))}")
    return "&".join(parts)


def _render_operations_cell(table: XuisTable, row_dict: dict[str, Any],
                            user: User | None) -> str:
    """Links for each operation applicable to this row, per the XUIS
    conditions and the user's guest restrictions."""
    links = []
    key_params = _row_key_params(table, row_dict)
    for column in table.columns:
        for operation in column.operations:
            if not operation.applies_to(row_dict):
                continue
            if user is not None and not user.can_run_operation(operation):
                continue
            href = (
                f"/operation/form?name={quote_plus(operation.name)}"
                f"&colid={quote_plus(column.colid)}&{key_params}"
            )
            links.append(
                f'<a class="operation" href="{escape(href)}">'
                f"{escape(operation.name)}</a>"
            )
        upload = column.upload
        if upload is not None and upload.applies_to(row_dict):
            allowed = user is None or user.can_upload_code or upload.guest_access
            if allowed:
                href = (
                    f"/upload/form?colid={quote_plus(column.colid)}&{key_params}"
                )
                links.append(
                    f'<a class="upload" href="{escape(href)}">Upload code</a>'
                )
    return " ".join(links)
