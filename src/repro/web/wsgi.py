"""WSGI adapter for the EASIA application.

The servlet container is transport-agnostic; this module makes it speak
WSGI so the archive runs under any standard Python HTTP server — the
stdlib's ``wsgiref`` is enough for a demo deployment:

    from wsgiref.simple_server import make_server
    from repro.web.wsgi import WsgiAdapter

    httpd = make_server("", 8080, WsgiAdapter(app))
    httpd.serve_forever()

Sessions ride an ``easia_session`` cookie (set by ``/login``); form posts
accept ``application/x-www-form-urlencoded`` and ``multipart/form-data``
(the code-upload form).
"""

from __future__ import annotations

from typing import Callable, Iterable
from urllib.parse import parse_qsl

from repro.web.app import EasiaApp

__all__ = ["WsgiAdapter", "parse_multipart"]

_COOKIE_NAME = "easia_session"


def _parse_cookies(header: str) -> dict[str, str]:
    cookies: dict[str, str] = {}
    for part in header.split(";"):
        name, sep, value = part.strip().partition("=")
        if sep:
            cookies[name] = value
    return cookies


def parse_multipart(body: bytes, content_type: str) -> tuple[dict, dict]:
    """Minimal ``multipart/form-data`` parser.

    Returns ``(fields, files)``: text fields decoded as UTF-8, parts with a
    ``filename`` kept as bytes under their field name.
    """
    _mime, _, tail = content_type.partition("boundary=")
    boundary = tail.strip().strip('"')
    if not boundary:
        return {}, {}
    delimiter = b"--" + boundary.encode("ascii")
    fields: dict[str, str] = {}
    files: dict[str, bytes] = {}
    for chunk in body.split(delimiter):
        chunk = chunk.strip(b"\r\n")
        if not chunk or chunk == b"--":
            continue
        header_blob, _, payload = chunk.partition(b"\r\n\r\n")
        headers = header_blob.decode("utf-8", errors="replace")
        name = None
        filename = None
        for line in headers.splitlines():
            if line.lower().startswith("content-disposition"):
                for item in line.split(";"):
                    item = item.strip()
                    if item.startswith("name="):
                        name = item[len("name="):].strip('"')
                    elif item.startswith("filename="):
                        filename = item[len("filename="):].strip('"')
        if name is None:
            continue
        payload = payload.rstrip(b"\r\n")
        if filename is not None:
            files[name] = payload
        else:
            fields[name] = payload.decode("utf-8", errors="replace")
    return fields, files


class WsgiAdapter:
    """Wraps an :class:`EasiaApp` as a WSGI callable."""

    def __init__(self, app: EasiaApp) -> None:
        self.app = app

    def __call__(self, environ: dict, start_response: Callable) -> Iterable[bytes]:
        path = environ.get("PATH_INFO", "/") or "/"
        method = environ.get("REQUEST_METHOD", "GET").upper()
        params: dict = dict(parse_qsl(environ.get("QUERY_STRING", "")))
        files: dict = {}

        if method == "POST":
            try:
                length = int(environ.get("CONTENT_LENGTH") or 0)
            except ValueError:
                length = 0
            body = environ["wsgi.input"].read(length) if length else b""
            content_type = environ.get("CONTENT_TYPE", "")
            if content_type.startswith("multipart/form-data"):
                fields, files = parse_multipart(body, content_type)
                params.update(fields)
            elif body:
                params.update(parse_qsl(body.decode("utf-8", errors="replace")))

        cookies = _parse_cookies(environ.get("HTTP_COOKIE", ""))
        session_id = params.pop("session", None) or cookies.get(_COOKIE_NAME)

        response = self.app.container.dispatch(
            path, params, method, session_id, files
        )

        status_text = {
            200: "200 OK",
            302: "302 Found",
            400: "400 Bad Request",
            401: "401 Unauthorized",
            403: "403 Forbidden",
            404: "404 Not Found",
        }.get(response.status, f"{response.status} Status")
        body_bytes = (
            response.body
            if isinstance(response.body, bytes)
            else response.body.encode("utf-8")
        )
        headers = [
            ("Content-Type", response.content_type),
            ("Content-Length", str(len(body_bytes))),
        ]
        for name, value in response.headers.items():
            if name == "X-Session-Id":
                # a fresh login: persist the session in a cookie
                headers.append(
                    ("Set-Cookie", f"{_COOKIE_NAME}={value}; Path=/; HttpOnly")
                )
            else:
                headers.append((name, value))
        start_response(status_text, headers)
        return [body_bytes]
