"""WSGI adapter for the EASIA application.

The servlet container is transport-agnostic; this module makes it speak
WSGI so the archive runs under any standard Python HTTP server — the
stdlib's ``wsgiref`` is enough for a demo deployment:

    from wsgiref.simple_server import make_server
    from repro.web.wsgi import WsgiAdapter

    httpd = make_server("", 8080, WsgiAdapter(app))
    httpd.serve_forever()

For concurrent serving, :func:`make_threading_server` builds a
thread-per-request server (``socketserver.ThreadingMixIn``); pair it with
a :class:`~repro.sqldb.connection.ConnectionPool` installed on the
container so each request runs on its own database connection::

    pool = ConnectionPool(app.db, size=4)
    app.container.use_connection_pool(pool)
    httpd = make_threading_server("", 8080, WsgiAdapter(app))
    httpd.serve_forever()

Sessions ride an ``easia_session`` cookie (set by ``/login``,
``HttpOnly`` and ``SameSite=Lax``); form posts accept
``application/x-www-form-urlencoded`` and ``multipart/form-data`` (the
code-upload form).  Bodies larger than ``max_content_length`` are
rejected with ``413`` before being read.
"""

from __future__ import annotations

from socketserver import ThreadingMixIn
from typing import Callable, Iterable
from urllib.parse import parse_qsl
from wsgiref.simple_server import WSGIServer, make_server

from repro.web.app import EasiaApp

__all__ = [
    "ThreadingWSGIServer",
    "WsgiAdapter",
    "make_threading_server",
    "parse_multipart",
]

_COOKIE_NAME = "easia_session"

#: default request-body cap: 10 MiB comfortably covers the archive's
#: code-upload form while bounding per-request memory in the threaded tier
DEFAULT_MAX_CONTENT_LENGTH = 10 * 1024 * 1024


class ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """Thread-per-request WSGI server for the concurrent web tier.

    Daemon threads: an in-flight request never blocks interpreter exit
    (the pool rolls back anything a killed handler left open on the next
    checkout — see :meth:`ConnectionPool.checkin`).
    """

    daemon_threads = True


def make_threading_server(host: str, port: int, app) -> ThreadingWSGIServer:
    """A ``wsgiref`` server that handles each request on its own thread."""
    return make_server(host, port, app, server_class=ThreadingWSGIServer)


def _parse_cookies(header: str) -> dict[str, str]:
    cookies: dict[str, str] = {}
    for part in header.split(";"):
        name, sep, value = part.strip().partition("=")
        if sep:
            cookies[name] = value
    return cookies


def parse_multipart(body: bytes, content_type: str) -> tuple[dict, dict]:
    """Minimal ``multipart/form-data`` parser.

    Returns ``(fields, files)``: text fields decoded as UTF-8, parts with a
    ``filename`` kept as bytes under their field name.
    """
    _mime, _, tail = content_type.partition("boundary=")
    boundary = tail.strip().strip('"')
    if not boundary:
        return {}, {}
    delimiter = b"--" + boundary.encode("ascii")
    fields: dict[str, str] = {}
    files: dict[str, bytes] = {}
    for chunk in body.split(delimiter):
        chunk = chunk.strip(b"\r\n")
        if not chunk or chunk == b"--":
            continue
        header_blob, _, payload = chunk.partition(b"\r\n\r\n")
        headers = header_blob.decode("utf-8", errors="replace")
        name = None
        filename = None
        for line in headers.splitlines():
            if line.lower().startswith("content-disposition"):
                for item in line.split(";"):
                    item = item.strip()
                    if item.startswith("name="):
                        name = item[len("name="):].strip('"')
                    elif item.startswith("filename="):
                        filename = item[len("filename="):].strip('"')
        if name is None:
            continue
        payload = payload.rstrip(b"\r\n")
        if filename is not None:
            files[name] = payload
        else:
            fields[name] = payload.decode("utf-8", errors="replace")
    return fields, files


class WsgiAdapter:
    """Wraps an :class:`EasiaApp` as a WSGI callable."""

    def __init__(self, app: EasiaApp,
                 max_content_length: int = DEFAULT_MAX_CONTENT_LENGTH) -> None:
        self.app = app
        self.max_content_length = max_content_length

    def __call__(self, environ: dict, start_response: Callable) -> Iterable[bytes]:
        path = environ.get("PATH_INFO", "/") or "/"
        method = environ.get("REQUEST_METHOD", "GET").upper()
        params: dict = dict(parse_qsl(environ.get("QUERY_STRING", "")))
        files: dict = {}

        if method == "POST":
            try:
                length = int(environ.get("CONTENT_LENGTH") or 0)
            except ValueError:
                length = 0
            if length > self.max_content_length:
                body_bytes = b"request body too large"
                start_response("413 Content Too Large", [
                    ("Content-Type", "text/plain; charset=utf-8"),
                    ("Content-Length", str(len(body_bytes))),
                ])
                return [body_bytes]
            body = environ["wsgi.input"].read(length) if length else b""
            content_type = environ.get("CONTENT_TYPE", "")
            if content_type.startswith("multipart/form-data"):
                fields, files = parse_multipart(body, content_type)
                params.update(fields)
            elif body:
                params.update(parse_qsl(body.decode("utf-8", errors="replace")))

        cookies = _parse_cookies(environ.get("HTTP_COOKIE", ""))
        session_id = params.pop("session", None) or cookies.get(_COOKIE_NAME)

        response = self.app.container.dispatch(
            path, params, method, session_id, files
        )

        status_text = {
            200: "200 OK",
            302: "302 Found",
            400: "400 Bad Request",
            401: "401 Unauthorized",
            403: "403 Forbidden",
            404: "404 Not Found",
            405: "405 Method Not Allowed",
            409: "409 Conflict",
            413: "413 Content Too Large",
            500: "500 Internal Server Error",
            503: "503 Service Unavailable",
        }.get(response.status, f"{response.status} Status")
        body_bytes = (
            response.body
            if isinstance(response.body, bytes)
            else response.body.encode("utf-8")
        )
        headers = [
            ("Content-Type", response.content_type),
            ("Content-Length", str(len(body_bytes))),
        ]
        for name, value in response.headers.items():
            if name == "X-Session-Id":
                # a fresh login: persist the session in a cookie
                headers.append((
                    "Set-Cookie",
                    f"{_COOKIE_NAME}={value}; Path=/; HttpOnly; SameSite=Lax",
                ))
            else:
                headers.append((name, value))
        start_response(status_text, headers)
        return [body_bytes]
