"""XUIS — the XML User Interface Specification.

EASIA's interface is not hand-written: a generator reads the database
catalog and emits an XML document describing tables, columns, types,
sample values and key relationships; the web layer renders whatever the
document says.  Customising the document (aliases, hidden columns,
substitute columns, user-defined relationships, operations, uploads)
changes the interface without touching any code, and different users can
be served different documents over the same data.

* :func:`generate_default_xuis` — the generation tool,
* :func:`serialize_xuis` / :func:`parse_xuis` — XML round-trip,
* :func:`validate_xuis` / :func:`assert_valid` — DTD-style validation,
* :class:`Customizer` / :func:`personalise` — customisation API,
* :mod:`repro.xuis.model` — the document model classes.
"""

from repro.xuis.customize import Customizer, personalise
from repro.xuis.dtd import assert_valid, validate_xuis
from repro.xuis.generate import default_alias, generate_default_xuis
from repro.xuis.model import (
    Condition,
    DatabaseResultLocation,
    InputControl,
    OperationSpec,
    ParamSpec,
    RadioControl,
    SelectControl,
    UploadSpec,
    UrlLocation,
    XuisColumn,
    XuisDocument,
    XuisFk,
    XuisPk,
    XuisTable,
    XuisType,
    parse_colid,
)
from repro.xuis.parse import parse_xuis
from repro.xuis.serialize import serialize_xuis

__all__ = [
    "generate_default_xuis",
    "default_alias",
    "serialize_xuis",
    "parse_xuis",
    "validate_xuis",
    "assert_valid",
    "Customizer",
    "personalise",
    "XuisDocument",
    "XuisTable",
    "XuisColumn",
    "XuisType",
    "XuisPk",
    "XuisFk",
    "Condition",
    "OperationSpec",
    "UploadSpec",
    "ParamSpec",
    "SelectControl",
    "RadioControl",
    "InputControl",
    "DatabaseResultLocation",
    "UrlLocation",
    "parse_colid",
]
