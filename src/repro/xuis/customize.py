"""XUIS customisation and personalisation.

Paper (Summary ii): separating the interface specification from its
processing enables —

* **Customisation** — aliases for table and column names, different sample
  values, hiding tables and attributes from view.
* **User defined relationships** — hypertext links to related data even
  where no referential-integrity constraint exists in the database.
* **Personalisation** — different users (or classes of user) get different
  XUIS files over the same data.
* **Operations** — server-side post-processing codes attached to columns.

:class:`Customizer` applies those edits fluently to a document::

    doc = (Customizer(generate_default_xuis(db))
           .table_alias("SIMULATION", "Numerical Simulations")
           .substitute_fk("SIMULATION.AUTHOR_KEY", "AUTHOR.NAME")
           .hide_column("AUTHOR.EMAIL")
           .attach_operation("RESULT_FILE.DOWNLOAD_RESULT", op_spec)
           .document)

Customisation works on a deep copy, so the default document can be reused
as the base for several personalised variants
(:func:`personalise`).
"""

from __future__ import annotations

import copy
from typing import Callable, Iterable

from repro.errors import XuisError
from repro.xuis.model import (
    OperationSpec,
    UploadSpec,
    XuisDocument,
    XuisFk,
    parse_colid,
)

__all__ = ["Customizer", "personalise"]


class Customizer:
    """Fluent, copy-on-construct editor for a XUIS document."""

    def __init__(self, document: XuisDocument) -> None:
        self.document = copy.deepcopy(document)

    # -- aliases ----------------------------------------------------------------

    def table_alias(self, table: str, alias: str) -> "Customizer":
        self.document.table(table).alias = alias
        return self

    def column_alias(self, colid: str, alias: str) -> "Customizer":
        self.document.column(colid).alias = alias
        return self

    # -- visibility ------------------------------------------------------------------

    def hide_table(self, table: str) -> "Customizer":
        self.document.table(table).hidden = True
        return self

    def hide_column(self, colid: str) -> "Customizer":
        self.document.column(colid).hidden = True
        return self

    # -- samples -----------------------------------------------------------------------

    def set_samples(self, colid: str, samples: Iterable[str]) -> "Customizer":
        self.document.column(colid).samples = list(samples)
        return self

    # -- relationships ---------------------------------------------------------------------

    def substitute_fk(self, colid: str, substcolumn: str) -> "Customizer":
        """Display a column from the referenced table instead of the raw
        foreign-key value (the paper's AUTHOR_KEY -> Author.Name example)."""
        column = self.document.column(colid)
        if column.fk is None:
            raise XuisError(f"{colid} has no foreign key to substitute")
        subst_table, _ = parse_colid(substcolumn)
        fk_table, _ = parse_colid(column.fk.tablecolumn)
        if subst_table != fk_table:
            raise XuisError(
                f"substitute column {substcolumn} must be in referenced "
                f"table {fk_table}"
            )
        column.fk = XuisFk(column.fk.tablecolumn, substcolumn)
        return self

    def add_relationship(self, colid: str, target_colid: str,
                         substcolumn: str | None = None) -> "Customizer":
        """Declare a browse link where the database has no FK constraint
        ("User defined relationships between tables - hypertext links to
        related data can be specified in the XML even if there are no
        referential integrity constraints")."""
        column = self.document.column(colid)
        target_table, _ = parse_colid(target_colid)
        if not self.document.has_table(target_table):
            raise XuisError(f"relationship target table {target_table} unknown")
        column.fk = XuisFk(target_colid, substcolumn)
        return self

    # -- operations / uploads ----------------------------------------------------------------

    def attach_operation(self, colid: str, operation: OperationSpec) -> "Customizer":
        column = self.document.column(colid)
        if any(op.name == operation.name for op in column.operations):
            raise XuisError(
                f"{colid} already has an operation named {operation.name}"
            )
        column.operations.append(operation)
        return self

    def remove_operation(self, colid: str, name: str) -> "Customizer":
        column = self.document.column(colid)
        before = len(column.operations)
        column.operations = [op for op in column.operations if op.name != name]
        if len(column.operations) == before:
            raise XuisError(f"{colid} has no operation named {name}")
        return self

    def allow_upload(self, colid: str, upload: UploadSpec) -> "Customizer":
        column = self.document.column(colid)
        if not column.type.is_datalink:
            raise XuisError(f"{colid} is not a DATALINK column")
        column.upload = upload
        return self

    # -- misc ----------------------------------------------------------------------------------

    def set_title(self, title: str) -> "Customizer":
        self.document.title = title
        return self


def personalise(
    base: XuisDocument,
    profiles: dict[str, Callable[[Customizer], Customizer]],
) -> dict[str, XuisDocument]:
    """Build one customised document per user class.

    ``profiles`` maps a user-class name to a function applying that class's
    customisations.  Each profile starts from an independent copy of
    ``base``:

    >>> from repro.xuis.model import XuisDocument
    >>> docs = personalise(XuisDocument(), {"guest": lambda c: c.set_title("Guest view")})
    >>> docs["guest"].title
    'Guest view'
    """
    return {
        name: profile(Customizer(base)).document
        for name, profile in profiles.items()
    }
