"""XUIS validation.

Paper: "Default XUIS conforms to a DTD that we have created."  The checks
here are the semantic content of that DTD plus the cross-references a DTD
cannot express, applied to the document model:

structural rules
    every table has a name and at least one column; colids are
    ``TABLE.COLUMN`` and agree with the owning table/column; declared
    types are known; SELECT/radio controls have at least one option;
    operation names are unique per column.

referential rules
    a table's ``primaryKey`` names its own columns; ``<refby>``, ``<fk>``
    and ``<condition>`` colids resolve within the document; substitute
    columns live in the referenced table; operations with a JAVA/
    executable type have a filename; ``<database.result>`` locations name
    a DATALINK column.

catalog rules (optional)
    when a database is supplied, every XUIS table/column must exist in its
    catalog with a matching type, so the interface can never offer a query
    the engine would reject.

:func:`validate_xuis` returns the list of violations (empty = valid);
:func:`assert_valid` raises :class:`XuisValidationError` with all of them.
"""

from __future__ import annotations

from repro.errors import XuisError, XuisValidationError
from repro.xuis.model import (
    DatabaseResultLocation,
    XuisDocument,
    parse_colid,
)

__all__ = ["validate_xuis", "assert_valid"]

_KNOWN_TYPES = {
    "INTEGER", "DOUBLE", "BOOLEAN", "VARCHAR", "CHAR",
    "DATE", "TIMESTAMP", "BLOB", "CLOB", "DATALINK",
    "ANY",  # view columns, whose output types are not declared
}


def validate_xuis(document: XuisDocument, db=None) -> list[str]:
    """Collect every rule violation in ``document`` (optionally also
    cross-checking against database ``db``'s catalog)."""
    problems: list[str] = []
    seen_tables: set[str] = set()

    for table in document.tables:
        where = f"table {table.name}"
        if table.name in seen_tables:
            problems.append(f"{where}: duplicate table")
        seen_tables.add(table.name)
        if not table.columns:
            problems.append(f"{where}: has no columns")
        _check_primary_key(table, problems)
        seen_columns: set[str] = set()
        for column in table.columns:
            _check_column(document, table, column, problems)
            if column.name in seen_columns:
                problems.append(f"{where}: duplicate column {column.name}")
            seen_columns.add(column.name)

    if db is not None:
        _check_against_catalog(document, db, problems)
    return problems


def assert_valid(document: XuisDocument, db=None) -> None:
    problems = validate_xuis(document, db)
    if problems:
        raise XuisValidationError(
            f"XUIS has {len(problems)} problem(s):\n- " + "\n- ".join(problems)
        )


def _resolves(document: XuisDocument, colid: str) -> bool:
    try:
        table_name, column_name = parse_colid(colid)
    except XuisError:
        return False
    if not document.has_table(table_name):
        return False
    return document.table(table_name).has_column(column_name)


def _check_primary_key(table, problems: list[str]) -> None:
    for colid in table.primary_key:
        try:
            owner, column_name = parse_colid(colid)
        except XuisError:
            problems.append(f"table {table.name}: bad primaryKey colid {colid!r}")
            continue
        if owner != table.name:
            problems.append(
                f"table {table.name}: primaryKey {colid} names another table"
            )
        elif not table.has_column(column_name):
            problems.append(
                f"table {table.name}: primaryKey column {column_name} not present"
            )


def _check_column(document, table, column, problems: list[str]) -> None:
    where = f"column {column.colid}"
    try:
        owner, name = parse_colid(column.colid)
        if owner != table.name or name != column.name:
            problems.append(
                f"{where}: colid disagrees with table {table.name} / "
                f"column {column.name}"
            )
    except XuisError:
        problems.append(f"{where}: malformed colid")

    if column.type.name not in _KNOWN_TYPES:
        problems.append(f"{where}: unknown type {column.type.name}")
    if column.type.name in ("VARCHAR", "CHAR") and not column.type.size:
        problems.append(f"{where}: {column.type.name} needs a size")

    if column.pk is not None:
        for ref in column.pk.refby:
            if not _resolves(document, ref):
                problems.append(f"{where}: refby {ref} does not resolve")
    if column.fk is not None:
        if not _resolves(document, column.fk.tablecolumn):
            problems.append(
                f"{where}: fk target {column.fk.tablecolumn} does not resolve"
            )
        if column.fk.substcolumn is not None:
            if not _resolves(document, column.fk.substcolumn):
                problems.append(
                    f"{where}: substcolumn {column.fk.substcolumn} does not resolve"
                )
            else:
                fk_table, _ = parse_colid(column.fk.tablecolumn)
                subst_table, _ = parse_colid(column.fk.substcolumn)
                if fk_table != subst_table:
                    problems.append(
                        f"{where}: substcolumn {column.fk.substcolumn} is not "
                        f"in referenced table {fk_table}"
                    )

    seen_ops: set[str] = set()
    for operation in column.operations:
        op_where = f"{where}: operation {operation.name}"
        if operation.name in seen_ops:
            problems.append(f"{op_where}: duplicate operation name")
        seen_ops.add(operation.name)
        _check_operation(document, op_where, operation, problems, column)
    if column.upload is not None:
        if not column.type.is_datalink:
            problems.append(f"{where}: upload allowed on non-DATALINK column")
        for condition in column.upload.conditions:
            if not _resolves(document, condition.colid):
                problems.append(
                    f"{where}: upload condition colid {condition.colid} "
                    f"does not resolve"
                )


def _check_operation(document, op_where, operation, problems: list[str],
                     column=None) -> None:
    for condition in operation.conditions:
        if not _resolves(document, condition.colid):
            problems.append(
                f"{op_where}: condition colid {condition.colid} does not resolve"
            )
    if operation.is_chain:
        # extended DTD: a chain names sibling operations on the same column
        if column is not None:
            siblings = {op.name for op in column.operations}
            for step in operation.chain:
                if step == operation.name:
                    problems.append(f"{op_where}: chain references itself")
                elif step not in siblings:
                    problems.append(
                        f"{op_where}: chain step {step!r} is not an "
                        f"operation on this column"
                    )
        if operation.location is not None:
            problems.append(
                f"{op_where}: a chain operation must not also have a <location>"
            )
        return
    location = operation.location
    if location is None:
        problems.append(f"{op_where}: has no <location>")
        return
    if isinstance(location, DatabaseResultLocation):
        if not _resolves(document, location.colid):
            problems.append(
                f"{op_where}: location colid {location.colid} does not resolve"
            )
        else:
            target = document.column(location.colid)
            if not target.type.is_datalink:
                problems.append(
                    f"{op_where}: location {location.colid} is not a DATALINK column"
                )
        for condition in location.conditions:
            if not _resolves(document, condition.colid):
                problems.append(
                    f"{op_where}: location condition {condition.colid} "
                    f"does not resolve"
                )
        if operation.type in ("JAVA", "EXECUTABLE", "SCRIPT") and not operation.filename:
            problems.append(f"{op_where}: archived operation needs a filename")
    else:  # UrlLocation
        if not location.url:
            problems.append(f"{op_where}: empty <URL>")

    for param in operation.params:
        control = param.control
        if hasattr(control, "options") and not control.options:
            problems.append(
                f"{op_where}: parameter {param.name!r} has no options"
            )


def _check_against_catalog(document, db, problems: list[str]) -> None:
    catalog = db.catalog
    for table in document.tables:
        if catalog.is_view(table.name):
            continue  # view output shapes are checked at query time
        if not catalog.has_table(table.name):
            problems.append(f"catalog: no such table {table.name}")
            continue
        schema = catalog.schema(table.name)
        for column in table.columns:
            if not schema.has_column(column.name):
                problems.append(
                    f"catalog: no such column {table.name}.{column.name}"
                )
                continue
            engine_type = schema.column(column.name).type.name
            if engine_type != column.type.name:
                problems.append(
                    f"catalog: {column.colid} is {engine_type} in the "
                    f"database but {column.type.name} in the XUIS"
                )
