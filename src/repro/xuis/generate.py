"""Default XUIS generation.

Paper: "We provide a tool to generate automatically a default user
interface specification, in the form of an XML document, for a given
database. [...] Written in Java, uses JDBC to extract data and schema
information from the database being used to archive simulation results."

:func:`generate_default_xuis` is that tool: it reads the system catalog
(tables, columns, types, primary keys, foreign keys) plus live sample
values and emits an :class:`~repro.xuis.model.XuisDocument`:

* every table and column appears, un-aliased and visible,
* each column carries its type and up to N sample data values,
* primary-key columns list every foreign key referencing them
  (``<pk><refby/></pk>`` — drives primary-key browsing),
* foreign-key columns carry ``<fk tablecolumn="..."/>`` (drives
  foreign-key browsing),
* no operations or uploads — those are added by customisation.
"""

from __future__ import annotations

from repro.sqldb.database import Database
from repro.sqldb.types import CharType, VarcharType
from repro.xuis.model import (
    XuisColumn,
    XuisDocument,
    XuisFk,
    XuisPk,
    XuisTable,
    XuisType,
)

__all__ = ["generate_default_xuis", "default_alias"]


def default_alias(identifier: str) -> str:
    """Human-friendly default alias: ``RESULT_FILE`` -> ``Result File``."""
    return " ".join(part.capitalize() for part in identifier.split("_"))


def generate_default_xuis(
    db: Database,
    samples_per_column: int = 3,
    title: str = "EASIA Archive",
    include_views: bool = False,
) -> XuisDocument:
    """Build the default specification for every table in ``db``.

    With ``include_views``, SQL views also appear as browsable tables —
    the curator's way to publish pre-joined or filtered slices of the
    archive (columns are typed ``ANY`` since a view's output types are
    not declared).
    """
    catalog = db.catalog
    tables = []
    for table in catalog.tables():
        schema = table.schema
        # Map column -> outgoing fk (single-column fks drive browsing).
        fk_by_column: dict[str, XuisFk] = {}
        for fk in schema.foreign_keys:
            if len(fk.columns) == 1:
                fk_by_column[fk.columns[0]] = XuisFk(
                    f"{fk.ref_table}.{fk.ref_columns[0]}"
                )
        # Map pk column -> list of referencing colids.
        refby: dict[str, list[str]] = {c: [] for c in schema.primary_key}
        for child_name, child_fk in catalog.references_to(schema.name):
            for child_col, ref_col in zip(child_fk.columns, child_fk.ref_columns):
                if ref_col in refby:
                    refby[ref_col].append(f"{child_name}.{child_col}")

        columns = []
        for column in schema.columns:
            size = None
            if isinstance(column.type, (VarcharType, CharType)):
                size = column.type.size
            colid = f"{schema.name}.{column.name}"
            pk = None
            if column.name in refby:
                pk = XuisPk(sorted(refby[column.name]))
            samples = [
                _sample_text(v)
                for v in catalog.sample_values(
                    schema.name, column.name, samples_per_column
                )
            ]
            columns.append(
                XuisColumn(
                    column.name,
                    colid,
                    XuisType(column.type.name, size),
                    alias=default_alias(column.name),
                    samples=samples,
                    pk=pk,
                    fk=fk_by_column.get(column.name),
                )
            )
        tables.append(
            XuisTable(
                schema.name,
                primary_key=[f"{schema.name}.{c}" for c in schema.primary_key],
                alias=default_alias(schema.name),
                columns=columns,
            )
        )
    if include_views:
        for view_name in catalog.view_names():
            result = db.execute(f"SELECT * FROM {view_name} LIMIT {samples_per_column}")
            columns = []
            for i, column_name in enumerate(result.columns):
                samples = [
                    _sample_text(row[i])
                    for row in result.rows
                    if row[i] is not None
                ]
                columns.append(
                    XuisColumn(
                        column_name,
                        f"{view_name}.{column_name}",
                        XuisType("ANY"),
                        alias=default_alias(column_name),
                        samples=samples,
                    )
                )
            tables.append(
                XuisTable(
                    view_name,
                    primary_key=[],
                    alias=default_alias(view_name),
                    columns=columns,
                )
            )
    return XuisDocument(tables, title=title)


def _sample_text(value) -> str:
    """Render a sample value the way the XUIS stores it (as text)."""
    from repro.sqldb.types import Blob, Clob, DatalinkValue

    if isinstance(value, Clob):
        text = value.text
        return text[:40] + ("..." if len(text) > 40 else "")
    if isinstance(value, Blob):
        return f"<{len(value)} bytes>"
    if isinstance(value, DatalinkValue):
        return value.url
    return str(value)
