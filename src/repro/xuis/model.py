"""XUIS document model.

The XML User Interface Specification separates *what the interface shows*
from *how the interface is processed*.  This module is the in-memory form:
a tree of tables, columns, type info, sample values, key relationships,
post-processing operations and code-upload permissions — everything the
paper's XUIS fragments carry.

Element-to-class mapping (matching the paper's XML verbatim):

========================  =========================
XML                       class
========================  =========================
``<table>``               :class:`XuisTable`
``<column>``              :class:`XuisColumn`
``<type>``                :class:`XuisType`
``<pk><refby/></pk>``     :class:`XuisPk`
``<fk/>``                 :class:`XuisFk`
``<operation>``           :class:`OperationSpec`
``<if><condition>``       :class:`Condition`
``<location>``            :class:`DatabaseResultLocation` / :class:`UrlLocation`
``<param><variable>``     :class:`ParamSpec` + control classes
``<upload>``              :class:`UploadSpec`
========================  =========================
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import XuisError

__all__ = [
    "XuisDocument",
    "XuisTable",
    "XuisColumn",
    "XuisType",
    "XuisPk",
    "XuisFk",
    "Condition",
    "DatabaseResultLocation",
    "UrlLocation",
    "ParamSpec",
    "SelectControl",
    "RadioControl",
    "InputControl",
    "OperationSpec",
    "UploadSpec",
    "parse_colid",
]

_CONDITION_OPS = ("eq", "ne", "lt", "le", "gt", "ge", "like")


def parse_colid(colid: str) -> tuple[str, str]:
    """Split a ``TABLE.COLUMN`` identifier.

    >>> parse_colid("AUTHOR.AUTHOR_KEY")
    ('AUTHOR', 'AUTHOR_KEY')
    """
    table, sep, column = colid.partition(".")
    if not sep or not table or not column:
        raise XuisError(f"bad colid {colid!r}: expected TABLE.COLUMN")
    return table.upper(), column.upper()


class XuisType:
    """``<type><VARCHAR/><size>30</size></type>``."""

    __slots__ = ("name", "size")

    def __init__(self, name: str, size: int | None = None) -> None:
        self.name = name.upper()
        self.size = size

    @property
    def is_datalink(self) -> bool:
        return self.name == "DATALINK"

    @property
    def is_lob(self) -> bool:
        return self.name in ("BLOB", "CLOB")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, XuisType)
            and self.name == other.name
            and self.size == other.size
        )

    def __repr__(self) -> str:
        return f"XuisType({self.name}{f'({self.size})' if self.size else ''})"


class XuisPk:
    """Primary-key browsing info: which foreign keys refer *back* to this
    column (``<pk><refby tablecolumn="SIMULATION.AUTHOR_KEY"/></pk>``).

    In the generated interface, a value in this column becomes a set of
    hyperlinks retrieving the referencing rows from each table listed.
    """

    __slots__ = ("refby",)

    def __init__(self, refby: Iterable[str] = ()) -> None:
        self.refby = [r.upper() for r in refby]

    def __repr__(self) -> str:
        return f"XuisPk(refby={self.refby})"


class XuisFk:
    """Foreign-key browsing info
    (``<fk tablecolumn="AUTHOR.AUTHOR_KEY" substcolumn="AUTHOR.NAME"/>``).

    ``substcolumn`` is the customisation shown in the paper: display the
    referenced author's *name* instead of the opaque key.
    """

    __slots__ = ("tablecolumn", "substcolumn")

    def __init__(self, tablecolumn: str, substcolumn: str | None = None) -> None:
        self.tablecolumn = tablecolumn.upper()
        self.substcolumn = substcolumn.upper() if substcolumn else None

    def __repr__(self) -> str:
        return f"XuisFk({self.tablecolumn}, subst={self.substcolumn})"


class Condition:
    """One ``<condition colid="..."><eq>'value'</eq></condition>``.

    Conditions gate when an operation/upload applies to a row: e.g. the
    GetImage operation only applies to rows whose SIMULATION_KEY equals
    ``'S19990110150932'``.
    """

    __slots__ = ("colid", "op", "value")

    def __init__(self, colid: str, op: str, value: Any) -> None:
        op = op.lower()
        if op not in _CONDITION_OPS:
            raise XuisError(f"unknown condition operator {op!r}")
        self.colid = colid.upper()
        self.op = op
        self.value = value

    def matches(self, row: dict[str, Any]) -> bool:
        """Evaluate against a row dict keyed by ``TABLE.COLUMN`` (and bare
        column names)."""
        table, column = parse_colid(self.colid)
        if self.colid in row:
            actual = row[self.colid]
        elif column in row:
            actual = row[column]
        else:
            return False
        if actual is None:
            return False
        expected = self.value
        actual_cmp = _comparable(actual)
        expected_cmp = _comparable(expected)
        if self.op == "eq":
            return actual_cmp == expected_cmp
        if self.op == "ne":
            return actual_cmp != expected_cmp
        if self.op == "like":
            from repro.sqldb.expressions import Like

            return bool(Like.compile_pattern(str(expected)).match(str(actual_cmp)))
        try:
            if self.op == "lt":
                return actual_cmp < expected_cmp
            if self.op == "le":
                return actual_cmp <= expected_cmp
            if self.op == "gt":
                return actual_cmp > expected_cmp
            return actual_cmp >= expected_cmp
        except TypeError:
            raise XuisError(
                f"condition on {self.colid}: cannot compare "
                f"{type(actual).__name__} with {type(expected).__name__}"
            ) from None

    def __repr__(self) -> str:
        return f"Condition({self.colid} {self.op} {self.value!r})"


def _comparable(value: Any) -> Any:
    from repro.sqldb.types import Clob, DatalinkValue

    if isinstance(value, Clob):
        return value.text
    if isinstance(value, DatalinkValue):
        return value.url
    if isinstance(value, str):
        return value.rstrip()
    return value


class DatabaseResultLocation:
    """``<location><database.result colid="...">...</database.result>``.

    The operation's executable is itself archived as a DATALINK: resolve it
    by querying the named column with the given conditions (e.g. the
    CODE_FILE row whose CODE_NAME = 'GetImage.jar').
    """

    __slots__ = ("colid", "conditions")

    def __init__(self, colid: str, conditions: Iterable[Condition] = ()) -> None:
        self.colid = colid.upper()
        self.conditions = list(conditions)

    def __repr__(self) -> str:
        return f"DatabaseResultLocation({self.colid}, {self.conditions})"


class UrlLocation:
    """``<location><URL>http://...</URL></location>`` — a servlet/CGI
    post-processing service running near a file server (the paper's NCSA
    Scientific Data Browser example)."""

    __slots__ = ("url",)

    def __init__(self, url: str) -> None:
        self.url = url

    def __repr__(self) -> str:
        return f"UrlLocation({self.url!r})"


class SelectControl:
    """``<select name="slice" size="4"><option value="x0">x0=0.0</option>``."""

    __slots__ = ("name", "size", "options")

    def __init__(self, name: str, options: Iterable[tuple[str, str]], size: int | None = None) -> None:
        self.name = name
        self.size = size
        self.options = list(options)

    def default_value(self) -> str | None:
        return self.options[0][0] if self.options else None

    def accepts(self, value: str) -> bool:
        return any(v == value for v, _label in self.options)


class RadioControl:
    """A group of ``<input type="radio" name="..." value="...">label``."""

    __slots__ = ("name", "options")

    def __init__(self, name: str, options: Iterable[tuple[str, str]]) -> None:
        self.name = name
        self.options = list(options)

    def default_value(self) -> str | None:
        return self.options[0][0] if self.options else None

    def accepts(self, value: str) -> bool:
        return any(v == value for v, _label in self.options)


class InputControl:
    """A free-form ``<input type="text" name="..."/>`` parameter."""

    __slots__ = ("name", "input_type", "default")

    def __init__(self, name: str, input_type: str = "text", default: str = "") -> None:
        self.name = name
        self.input_type = input_type
        self.default = default

    def default_value(self) -> str:
        return self.default

    def accepts(self, value: str) -> bool:
        return True


class ParamSpec:
    """``<param><variable><description>...</description> <control/>``."""

    __slots__ = ("description", "control")

    def __init__(self, description: str, control) -> None:
        self.description = description
        self.control = control

    @property
    def name(self) -> str:
        return self.control.name


class OperationSpec:
    """A server-side post-processing operation attached to a column.

    Mirrors ``<operation name="GetImage" type="JAVA" filename="GetImage.class"
    format="jar" guest.access="true" column="false">``:

    * ``conditions`` — the ``<if>`` block restricting which rows offer it,
    * ``location`` — where the executable lives (archived DATALINK or URL),
    * ``params`` — extra user inputs, rendered as an HTML form at
      invocation time,
    * ``column_wide`` — True when the operation applies to the whole column
      (all matching datasets) rather than a single row's file.
    """

    __slots__ = (
        "name",
        "type",
        "filename",
        "format",
        "guest_access",
        "column_wide",
        "conditions",
        "location",
        "params",
        "description",
        "chain",
    )

    def __init__(
        self,
        name: str,
        type: str = "",
        filename: str = "",
        format: str = "",
        guest_access: bool = False,
        column_wide: bool = False,
        conditions: Iterable[Condition] = (),
        location=None,
        params: Iterable[ParamSpec] = (),
        description: str = "",
        chain: Iterable[str] = (),
    ) -> None:
        if not name:
            raise XuisError("operation needs a name")
        self.name = name
        self.type = type.upper()
        self.filename = filename
        self.format = format
        self.guest_access = guest_access
        self.column_wide = column_wide
        self.conditions = list(conditions)
        self.location = location
        self.params = list(params)
        self.description = description
        #: extended-DTD feature (paper future work "operation chaining"):
        #: names of operations on the same column to run in sequence, each
        #: consuming the previous one's output.  When set, ``location`` is
        #: unused — the steps provide their own code.
        self.chain = [c for c in chain]

    @property
    def is_chain(self) -> bool:
        return bool(self.chain)

    def applies_to(self, row: dict[str, Any]) -> bool:
        """All ``<if>`` conditions must hold (AND semantics)."""
        return all(cond.matches(row) for cond in self.conditions)

    def __repr__(self) -> str:
        return f"OperationSpec({self.name!r}, type={self.type!r})"


class UploadSpec:
    """``<upload type="JAVA" format="jar" guest.access="false">`` — user
    code upload permitted against this DATALINK column, gated by ``<if>``
    conditions and denied to guest users when ``guest_access`` is False."""

    __slots__ = ("type", "format", "guest_access", "column_wide", "conditions")

    def __init__(
        self,
        type: str = "JAVA",
        format: str = "jar",
        guest_access: bool = False,
        column_wide: bool = False,
        conditions: Iterable[Condition] = (),
    ) -> None:
        self.type = type.upper()
        self.format = format
        self.guest_access = guest_access
        self.column_wide = column_wide
        self.conditions = list(conditions)

    def applies_to(self, row: dict[str, Any]) -> bool:
        return all(cond.matches(row) for cond in self.conditions)


class XuisColumn:
    """One ``<column>`` element."""

    def __init__(
        self,
        name: str,
        colid: str,
        type: XuisType,
        alias: str | None = None,
        hidden: bool = False,
        samples: Iterable[str] = (),
        pk: XuisPk | None = None,
        fk: XuisFk | None = None,
        operations: Iterable[OperationSpec] = (),
        upload: UploadSpec | None = None,
    ) -> None:
        self.name = name.upper()
        self.colid = colid.upper()
        self.type = type
        self.alias = alias
        self.hidden = hidden
        self.samples = list(samples)
        self.pk = pk
        self.fk = fk
        self.operations = list(operations)
        self.upload = upload

    @property
    def display_name(self) -> str:
        return self.alias or self.name

    def __repr__(self) -> str:
        return f"XuisColumn({self.colid!r}, {self.type!r})"


class XuisTable:
    """One ``<table>`` element."""

    def __init__(
        self,
        name: str,
        primary_key: Iterable[str] = (),
        alias: str | None = None,
        hidden: bool = False,
        columns: Iterable[XuisColumn] = (),
    ) -> None:
        self.name = name.upper()
        #: colids, e.g. ["RESULT_FILE.FILE_NAME", "RESULT_FILE.SIMULATION_KEY"]
        self.primary_key = [c.upper() for c in primary_key]
        self.alias = alias
        self.hidden = hidden
        self.columns = list(columns)

    @property
    def display_name(self) -> str:
        return self.alias or self.name

    def column(self, name: str) -> XuisColumn:
        name = name.upper()
        for column in self.columns:
            if column.name == name:
                return column
        raise XuisError(f"no column {name} in XUIS table {self.name}")

    def has_column(self, name: str) -> bool:
        name = name.upper()
        return any(c.name == name for c in self.columns)

    def visible_columns(self) -> list[XuisColumn]:
        return [c for c in self.columns if not c.hidden]

    def __repr__(self) -> str:
        return f"XuisTable({self.name!r}, {len(self.columns)} columns)"


class XuisDocument:
    """The whole specification: the root ``<xuis>`` element."""

    def __init__(self, tables: Iterable[XuisTable] = (), title: str = "EASIA Archive") -> None:
        self.tables = list(tables)
        self.title = title

    def table(self, name: str) -> XuisTable:
        name = name.upper()
        for table in self.tables:
            if table.name == name:
                return table
        raise XuisError(f"no table {name} in XUIS document")

    def has_table(self, name: str) -> bool:
        name = name.upper()
        return any(t.name == name for t in self.tables)

    def column(self, colid: str) -> XuisColumn:
        table_name, column_name = parse_colid(colid)
        return self.table(table_name).column(column_name)

    def visible_tables(self) -> list[XuisTable]:
        return [t for t in self.tables if not t.hidden]

    def all_operations(self) -> list[tuple[XuisColumn, OperationSpec]]:
        """Every operation in the document with its owning column."""
        out = []
        for table in self.tables:
            for column in table.columns:
                for operation in column.operations:
                    out.append((column, operation))
        return out

    def __repr__(self) -> str:
        return f"XuisDocument({len(self.tables)} tables)"
