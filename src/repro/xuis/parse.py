"""XML text -> XUIS document model (inverse of ``serialize``)."""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.errors import XuisParseError
from repro.xuis.model import (
    Condition,
    DatabaseResultLocation,
    InputControl,
    OperationSpec,
    ParamSpec,
    RadioControl,
    SelectControl,
    UploadSpec,
    UrlLocation,
    XuisColumn,
    XuisDocument,
    XuisFk,
    XuisPk,
    XuisTable,
    XuisType,
)

__all__ = ["parse_xuis"]

_TYPE_NAMES = {
    "INTEGER", "DOUBLE", "BOOLEAN", "VARCHAR", "CHAR",
    "DATE", "TIMESTAMP", "BLOB", "CLOB", "DATALINK", "ANY",
}


def parse_xuis(text: str) -> XuisDocument:
    """Parse XUIS XML into the document model.

    Raises :class:`XuisParseError` on malformed XML or unknown structure.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XuisParseError(f"not well-formed XML: {exc}") from exc
    if root.tag != "xuis":
        raise XuisParseError(f"root element must be <xuis>, got <{root.tag}>")
    tables = [_parse_table(el) for el in root.findall("table")]
    return XuisDocument(tables, title=root.get("title", "EASIA Archive"))


def _required(element: ET.Element, attribute: str) -> str:
    value = element.get(attribute)
    if value is None:
        raise XuisParseError(
            f"<{element.tag}> is missing required attribute {attribute!r}"
        )
    return value


def _bool_attr(element: ET.Element, attribute: str, default: bool = False) -> bool:
    value = element.get(attribute)
    if value is None:
        return default
    if value.lower() in ("true", "false"):
        return value.lower() == "true"
    raise XuisParseError(
        f"attribute {attribute!r} of <{element.tag}> must be true/false"
    )


def _parse_table(element: ET.Element) -> XuisTable:
    name = _required(element, "name")
    primary_key = _required(element, "primaryKey").split()
    alias_el = element.find("tablealias")
    columns = [_parse_column(el) for el in element.findall("column")]
    return XuisTable(
        name,
        primary_key=primary_key,
        alias=alias_el.text if alias_el is not None else None,
        hidden=_bool_attr(element, "hidden"),
        columns=columns,
    )


def _parse_column(element: ET.Element) -> XuisColumn:
    name = _required(element, "name")
    colid = _required(element, "colid")
    type_el = element.find("type")
    if type_el is None:
        raise XuisParseError(f"column {colid} has no <type>")
    xuis_type = _parse_type(type_el, colid)

    alias_el = element.find("columnalias")
    pk = None
    pk_el = element.find("pk")
    if pk_el is not None:
        pk = XuisPk(_required(r, "tablecolumn") for r in pk_el.findall("refby"))
    fk = None
    fk_el = element.find("fk")
    if fk_el is not None:
        fk = XuisFk(_required(fk_el, "tablecolumn"), fk_el.get("substcolumn"))
    samples = [
        s.text or "" for s in element.findall("samples/sample")
    ]
    operations = [_parse_operation(el) for el in element.findall("operation")]
    upload = None
    upload_el = element.find("upload")
    if upload_el is not None:
        upload = UploadSpec(
            type=upload_el.get("type", "JAVA"),
            format=upload_el.get("format", "jar"),
            guest_access=_bool_attr(upload_el, "guest.access"),
            column_wide=_bool_attr(upload_el, "column"),
            conditions=_parse_conditions(upload_el.find("if")),
        )
    return XuisColumn(
        name,
        colid,
        xuis_type,
        alias=alias_el.text if alias_el is not None else None,
        hidden=_bool_attr(element, "hidden"),
        samples=samples,
        pk=pk,
        fk=fk,
        operations=operations,
        upload=upload,
    )


def _parse_type(type_el: ET.Element, colid: str) -> XuisType:
    name = None
    size = None
    for child in type_el:
        tag = child.tag.upper()
        if tag == "SIZE":
            try:
                size = int(child.text or "")
            except ValueError:
                raise XuisParseError(f"bad <size> for column {colid}") from None
        elif tag in _TYPE_NAMES:
            if name is not None:
                raise XuisParseError(f"column {colid} declares two types")
            name = tag
        else:
            raise XuisParseError(f"unknown type element <{child.tag}> in {colid}")
    if name is None:
        raise XuisParseError(f"column {colid} has an empty <type>")
    return XuisType(name, size)


def _parse_conditions(if_el: ET.Element | None) -> list[Condition]:
    if if_el is None:
        return []
    conditions = []
    for cond_el in if_el.findall("condition"):
        conditions.append(_parse_one_condition(cond_el))
    return conditions


def _parse_one_condition(cond_el: ET.Element) -> Condition:
    colid = _required(cond_el, "colid")
    children = list(cond_el)
    if len(children) != 1:
        raise XuisParseError(
            f"condition on {colid} must have exactly one operator element"
        )
    op_el = children[0]
    return Condition(colid, op_el.tag, _condition_value(op_el.text or ""))


def _condition_value(text: str):
    text = text.strip()
    if text.startswith("'") and text.endswith("'") and len(text) >= 2:
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _parse_operation(element: ET.Element) -> OperationSpec:
    location = None
    location_el = element.find("location")
    if location_el is not None:
        url_el = location_el.find("URL")
        result_el = location_el.find("database.result")
        if url_el is not None:
            location = UrlLocation(url_el.text or "")
        elif result_el is not None:
            conditions = [
                _parse_one_condition(c) for c in result_el.findall("condition")
            ]
            location = DatabaseResultLocation(
                _required(result_el, "colid"), conditions
            )
        else:
            raise XuisParseError(
                "operation <location> needs <URL> or <database.result>"
            )
    params = [
        _parse_param(el) for el in element.findall("parameters/param")
    ]
    chain = [
        _required(step, "name") for step in element.findall("chain/step")
    ]
    description_el = element.find("description")
    return OperationSpec(
        chain=chain,
        name=_required(element, "name"),
        type=element.get("type", ""),
        filename=element.get("filename", ""),
        format=element.get("format", ""),
        guest_access=_bool_attr(element, "guest.access"),
        column_wide=_bool_attr(element, "column"),
        conditions=_parse_conditions(element.find("if")),
        location=location,
        params=params,
        description=(description_el.text or "") if description_el is not None else "",
    )


def _parse_param(param_el: ET.Element) -> ParamSpec:
    variable_el = param_el.find("variable")
    if variable_el is None:
        raise XuisParseError("<param> must contain <variable>")
    description_el = variable_el.find("description")
    description = (description_el.text or "") if description_el is not None else ""

    select_el = variable_el.find("select")
    if select_el is not None:
        options = [
            (_required(o, "value"), o.text or "")
            for o in select_el.findall("option")
        ]
        size_text = select_el.get("size")
        return ParamSpec(
            description,
            SelectControl(
                _required(select_el, "name"),
                options,
                size=int(size_text) if size_text else None,
            ),
        )
    inputs = variable_el.findall("input")
    if inputs:
        radios = [i for i in inputs if i.get("type") == "radio"]
        if radios:
            name = _required(radios[0], "name")
            options = [
                (_required(i, "value"), i.text or "") for i in radios
            ]
            return ParamSpec(description, RadioControl(name, options))
        input_el = inputs[0]
        return ParamSpec(
            description,
            InputControl(
                _required(input_el, "name"),
                input_type=input_el.get("type", "text"),
                default=input_el.get("value", ""),
            ),
        )
    raise XuisParseError("<variable> needs a <select> or <input> control")
