"""XUIS document -> XML text.

The element and attribute names follow the paper's fragments exactly
(``<tablealias>``, ``<pk><refby tablecolumn=.../></pk>``,
``<fk tablecolumn=... substcolumn=...>``, ``guest.access``,
``<database.result>``, ``<URL>``), so a document serialised here is
recognisably the same artefact the paper shows.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.xuis.model import (
    Condition,
    DatabaseResultLocation,
    InputControl,
    OperationSpec,
    ParamSpec,
    RadioControl,
    SelectControl,
    UploadSpec,
    UrlLocation,
    XuisColumn,
    XuisDocument,
    XuisTable,
)

__all__ = ["serialize_xuis"]


def serialize_xuis(document: XuisDocument, indent: bool = True) -> str:
    """Render ``document`` as an XML string (UTF-8 text, with XML decl)."""
    root = ET.Element("xuis", {"title": document.title})
    for table in document.tables:
        root.append(_table_element(table))
    if indent:
        ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def _bool(value: bool) -> str:
    return "true" if value else "false"


def _table_element(table: XuisTable) -> ET.Element:
    attrs = {"name": table.name, "primaryKey": " ".join(table.primary_key)}
    if table.hidden:
        attrs["hidden"] = "true"
    element = ET.Element("table", attrs)
    if table.alias:
        ET.SubElement(element, "tablealias").text = table.alias
    for column in table.columns:
        element.append(_column_element(column))
    return element


def _column_element(column: XuisColumn) -> ET.Element:
    attrs = {"name": column.name, "colid": column.colid}
    if column.hidden:
        attrs["hidden"] = "true"
    element = ET.Element("column", attrs)
    if column.alias:
        ET.SubElement(element, "columnalias").text = column.alias
    type_el = ET.SubElement(element, "type")
    ET.SubElement(type_el, column.type.name)
    if column.type.size is not None:
        ET.SubElement(type_el, "size").text = str(column.type.size)
    if column.pk is not None:
        pk_el = ET.SubElement(element, "pk")
        for ref in column.pk.refby:
            ET.SubElement(pk_el, "refby", {"tablecolumn": ref})
    if column.fk is not None:
        fk_attrs = {"tablecolumn": column.fk.tablecolumn}
        if column.fk.substcolumn:
            fk_attrs["substcolumn"] = column.fk.substcolumn
        ET.SubElement(element, "fk", fk_attrs)
    if column.samples:
        samples_el = ET.SubElement(element, "samples")
        for sample in column.samples:
            ET.SubElement(samples_el, "sample").text = sample
    for operation in column.operations:
        element.append(_operation_element(operation))
    if column.upload is not None:
        element.append(_upload_element(column.upload))
    return element


def _conditions_element(conditions: list[Condition]) -> ET.Element:
    if_el = ET.Element("if")
    for condition in conditions:
        cond_el = ET.SubElement(if_el, "condition", {"colid": condition.colid})
        op_el = ET.SubElement(cond_el, condition.op)
        op_el.text = _condition_value_text(condition.value)
    return if_el


def _condition_value_text(value) -> str:
    if isinstance(value, str):
        return f"'{value}'"
    return str(value)


def _operation_element(operation: OperationSpec) -> ET.Element:
    element = ET.Element(
        "operation",
        {
            "name": operation.name,
            "type": operation.type,
            "filename": operation.filename,
            "format": operation.format,
            "guest.access": _bool(operation.guest_access),
            "column": _bool(operation.column_wide),
        },
    )
    if operation.conditions:
        element.append(_conditions_element(operation.conditions))
    if operation.chain:
        chain_el = ET.SubElement(element, "chain")
        for step in operation.chain:
            ET.SubElement(chain_el, "step", {"name": step})
    if operation.location is not None:
        location_el = ET.SubElement(element, "location")
        if isinstance(operation.location, UrlLocation):
            ET.SubElement(location_el, "URL").text = operation.location.url
        elif isinstance(operation.location, DatabaseResultLocation):
            result_el = ET.SubElement(
                location_el, "database.result",
                {"colid": operation.location.colid},
            )
            for condition in operation.location.conditions:
                cond_el = ET.SubElement(
                    result_el, "condition", {"colid": condition.colid}
                )
                op_el = ET.SubElement(cond_el, condition.op)
                op_el.text = _condition_value_text(condition.value)
    if operation.params:
        params_el = ET.SubElement(element, "parameters")
        for param in operation.params:
            params_el.append(_param_element(param))
    if operation.description:
        ET.SubElement(element, "description").text = operation.description
    return element


def _param_element(param: ParamSpec) -> ET.Element:
    param_el = ET.Element("param")
    variable_el = ET.SubElement(param_el, "variable")
    ET.SubElement(variable_el, "description").text = param.description
    control = param.control
    if isinstance(control, SelectControl):
        attrs = {"name": control.name}
        if control.size is not None:
            attrs["size"] = str(control.size)
        select_el = ET.SubElement(variable_el, "select", attrs)
        for value, label in control.options:
            option_el = ET.SubElement(select_el, "option", {"value": value})
            option_el.text = label
    elif isinstance(control, RadioControl):
        for value, label in control.options:
            input_el = ET.SubElement(
                variable_el, "input",
                {"type": "radio", "name": control.name, "value": value},
            )
            input_el.text = label
    elif isinstance(control, InputControl):
        attrs = {"type": control.input_type, "name": control.name}
        if control.default:
            attrs["value"] = control.default
        ET.SubElement(variable_el, "input", attrs)
    return param_el


def _upload_element(upload: UploadSpec) -> ET.Element:
    element = ET.Element(
        "upload",
        {
            "type": upload.type,
            "format": upload.format,
            "guest.access": _bool(upload.guest_access),
            "column": _bool(upload.column_wide),
        },
    )
    if upload.conditions:
        element.append(_conditions_element(upload.conditions))
    return element
