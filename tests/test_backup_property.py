"""Property-based test: coordinated backup/restore is lossless for any
archive contents."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalink import (
    DataLinker,
    TokenManager,
    coordinated_backup,
    coordinated_restore,
)
from repro.fileserver import FileServer
from repro.sqldb import Database

_NAME = st.text(alphabet=string.ascii_lowercase + string.digits,
                min_size=1, max_size=10)
_CONTENT = st.binary(min_size=0, max_size=200)


class TestBackupRestoreProperty:
    @given(
        files=st.dictionaries(_NAME, _CONTENT, min_size=1, max_size=6),
        hosts=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip_preserves_everything(self, files, hosts, tmp_path_factory):
        linker = DataLinker(
            TokenManager(secret=b"p", time_source=lambda: 0.0)
        )
        servers = [
            linker.register_server(FileServer(f"fs{i}.prop"))
            for i in range(hosts)
        ]
        db = Database()
        db.set_datalink_hooks(linker)
        db.execute(
            "CREATE TABLE F (NAME VARCHAR(20) PRIMARY KEY, SIZE INTEGER, "
            "D DATALINK LINKTYPE URL FILE LINK CONTROL INTEGRITY ALL "
            "READ PERMISSION DB WRITE PERMISSION BLOCKED RECOVERY YES "
            "ON UNLINK RESTORE)"
        )
        for i, (name, content) in enumerate(sorted(files.items())):
            server = servers[i % hosts]
            path = f"/data/{name}.bin"
            server.put(path, content)
            db.execute(
                "INSERT INTO F VALUES (?, ?, ?)",
                (name, len(content), f"http://{server.host}{path}"),
            )

        directory = str(tmp_path_factory.mktemp("img"))
        manifest = coordinated_backup(db, linker, directory)
        assert manifest["byte_total"] == sum(len(c) for c in files.values())

        db2, linker2 = coordinated_restore(
            directory, TokenManager(secret=b"p", time_source=lambda: 0.0)
        )
        assert db2.execute("SELECT COUNT(*) FROM F").scalar() == len(files)
        for name, content in files.items():
            value = db2.execute(
                "SELECT D FROM F WHERE NAME = ?", (name,)
            ).scalar()
            assert value.size == len(content)
            assert linker2.download(value) == content
            # link control survives: the restored file is protected
            server2 = linker2.server(value.host)
            assert server2.filesystem.entry(value.server_path).linked
