"""Tests for unlink-driven operation-cache invalidation."""

import pytest

from repro.turbulence import build_turbulence_archive

COLID = "RESULT_FILE.DOWNLOAD_RESULT"


@pytest.fixture
def deployment(tmp_path):
    archive = build_turbulence_archive(n_simulations=1, timesteps=2, grid=8)
    engine = archive.make_engine(str(tmp_path / "sb"))
    return archive, engine


class TestUnlinkInvalidatesCache:
    def test_unlink_drops_cached_results(self, deployment):
        archive, engine = deployment
        rows = archive.result_rows()
        engine.invoke("FieldStats", COLID, rows[0])
        engine.invoke("FieldStats", COLID, rows[1])
        assert len(engine.cache) == 2

        # deleting the row unlinks the first dataset at commit time
        archive.db.execute(
            "DELETE FROM RESULT_FILE WHERE FILE_NAME = ? AND SIMULATION_KEY = ?",
            (rows[0]["RESULT_FILE.FILE_NAME"],
             rows[0]["RESULT_FILE.SIMULATION_KEY"]),
        )
        assert len(engine.cache) == 1  # only the deleted dataset's entry went

    def test_rolled_back_delete_keeps_cache(self, deployment):
        archive, engine = deployment
        row = archive.result_rows()[0]
        engine.invoke("FieldStats", COLID, row)
        assert len(engine.cache) == 1
        archive.db.execute("BEGIN")
        archive.db.execute(
            "DELETE FROM RESULT_FILE WHERE FILE_NAME = ? AND SIMULATION_KEY = ?",
            (row["RESULT_FILE.FILE_NAME"], row["RESULT_FILE.SIMULATION_KEY"]),
        )
        archive.db.execute("ROLLBACK")
        # unlink never applied, so the cache entry survives
        assert len(engine.cache) == 1
        assert engine.invoke("FieldStats", COLID, row).cached

    def test_relinked_dataset_recomputes(self, deployment):
        """After unlink + re-put + re-link, the next invocation must see
        the *new* content, not a stale cached result."""
        import json

        archive, engine = deployment
        row = archive.result_rows()[0]
        first = engine.invoke("FieldStats", COLID, row)
        original_grid = json.loads(first.outputs["stats.json"])["grid"]
        assert original_grid == [8, 8, 8]

        value = row[COLID]
        server = archive.linker.server(value.host)
        archive.db.execute(
            "DELETE FROM RESULT_FILE WHERE FILE_NAME = ? AND SIMULATION_KEY = ?",
            (row["RESULT_FILE.FILE_NAME"], row["RESULT_FILE.SIMULATION_KEY"]),
        )
        # replace the (now unlinked) file with a smaller snapshot
        from repro.turbulence import make_timestep_file

        replacement = make_timestep_file(4, seed=1, timestep=0)
        server.filesystem.delete(value.server_path)
        server.put(value.server_path, replacement)
        archive.db.execute(
            "INSERT INTO RESULT_FILE VALUES (?, ?, ?, ?, ?, ?, ?)",
            (row["RESULT_FILE.FILE_NAME"],
             row["RESULT_FILE.SIMULATION_KEY"], 0, "u,v,w,p", "TURB",
             len(replacement), value.url),
        )
        fresh = engine.invoke("FieldStats", COLID, row)
        assert not fresh.cached
        assert json.loads(fresh.outputs["stats.json"])["grid"] == [4, 4, 4]

    def test_invalidate_file_unit(self):
        from repro.operations import OperationCache

        class FakeResult:
            outputs = {"o": b"x"}
            stdout = ""
            dataset_bytes = 1

        cache = OperationCache()
        cache.put(cache.key("Op", "http://h/a/f.bin", {}), FakeResult())
        cache.put(cache.key("Op", "http://h/a/g.bin", {}), FakeResult())
        assert cache.invalidate_file("h", "/a/f.bin") == 1
        assert len(cache) == 1
