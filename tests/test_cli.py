"""Tests for the command-line interface and the XUIS admin endpoint."""

import pytest

from repro.cli import main


class TestCliSql:
    def test_script_execution(self, tmp_path, capsys):
        rc = main([
            "sql", str(tmp_path / "db"), "-c",
            "CREATE TABLE t (k INTEGER PRIMARY KEY, v VARCHAR(5)); "
            "INSERT INTO t VALUES (1, 'a'), (2, 'b'); "
            "SELECT * FROM t ORDER BY k;",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ok (2 row(s) affected)" in out
        assert "1\ta" in out
        assert "(2 row(s))" in out

    def test_durable_across_invocations(self, tmp_path, capsys):
        d = str(tmp_path / "db")
        main(["sql", d, "-c", "CREATE TABLE t (k INTEGER PRIMARY KEY);"])
        main(["sql", d, "-c", "INSERT INTO t VALUES (7);"])
        capsys.readouterr()
        rc = main(["sql", d, "-c", "SELECT k FROM t;"])
        assert rc == 0
        assert "7" in capsys.readouterr().out

    def test_sql_error_reported(self, tmp_path, capsys):
        rc = main(["sql", str(tmp_path / "db"), "-c", "SELEC oops"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "error:" in captured.err

    def test_null_rendered_empty(self, tmp_path, capsys):
        rc = main([
            "sql", str(tmp_path / "db"), "-c",
            "CREATE TABLE t (k INTEGER PRIMARY KEY, v VARCHAR(5)); "
            "INSERT INTO t VALUES (1, NULL); SELECT v FROM t;",
        ])
        assert rc == 0
        lines = capsys.readouterr().out.splitlines()
        assert "" in lines  # the NULL cell prints as an empty string


class TestCliXuis:
    def test_generates_valid_xml(self, tmp_path, capsys):
        d = str(tmp_path / "db")
        main(["sql", d, "-c",
              "CREATE TABLE AUTHOR (k VARCHAR(5) PRIMARY KEY, n VARCHAR(10));"])
        capsys.readouterr()
        rc = main(["xuis", d, "--title", "CLI Archive"])
        out = capsys.readouterr().out
        assert rc == 0
        assert '<xuis title="CLI Archive">' in out
        from repro.xuis import parse_xuis

        assert parse_xuis(out).table("AUTHOR").name == "AUTHOR"


class TestCliTable1:
    def test_exact_reproduction(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        for cell in ("45m20s", "4h50m08s", "30m38s", "3h16m02s",
                     "19m32s", "2h05m03s", "5m51s", "37m23s"):
            assert cell in out


class TestCliDemo:
    def test_summary(self, capsys):
        rc = main(["demo", "--simulations", "2", "--timesteps", "1",
                   "--grid", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "simulations : 2" in out
        assert "GetImage" in out


class TestXuisAdminEndpoint:
    @pytest.fixture
    def app(self, tmp_path):
        from repro import EasiaApp, build_turbulence_archive

        archive = build_turbulence_archive(n_simulations=1, timesteps=1, grid=8)
        engine = archive.make_engine(str(tmp_path / "sb"))
        return EasiaApp(
            archive.db, archive.linker, archive.document, archive.users, engine
        )

    def test_get_returns_current_xml(self, app):
        admin = app.login("admin", "hpcadmin")
        response = app.get("/admin/xuis", session_id=admin)
        assert response.content_type == "application/xml"
        assert b"RESULT_FILE" in response.body

    def test_requires_admin(self, app):
        guest = app.login("guest", "guest")
        assert app.get("/admin/xuis", session_id=guest).status == 403

    def test_post_hot_swaps_document(self, app):
        from repro.xuis import Customizer, serialize_xuis

        admin = app.login("admin", "hpcadmin")
        trimmed = Customizer(app.document).hide_table("CODE_FILE").document
        response = app.post(
            "/admin/xuis", session_id=admin,
            files={"xuis": serialize_xuis(trimmed).encode("utf-8")},
        )
        assert response.ok
        guest = app.login("guest", "guest")
        home = app.get("/", session_id=guest).text
        assert "CODE_FILE" not in home
        # the engine follows the swap too
        assert not any(
            t.name == "CODE_FILE"
            for t in app.engine.document.visible_tables()
        )

    def test_post_rejects_invalid_document(self, app):
        admin = app.login("admin", "hpcadmin")
        bad = b'<xuis><table name="GHOST" primaryKey=""/></xuis>'
        response = app.post(
            "/admin/xuis", session_id=admin, files={"xuis": bad}
        )
        assert response.status == 400
        # the active document is unchanged
        assert app.document.has_table("RESULT_FILE")

    def test_post_without_file(self, app):
        admin = app.login("admin", "hpcadmin")
        assert app.post("/admin/xuis", session_id=admin).status == 400
