"""Concurrent-connection stress tests: session transactions, snapshot
reads, the writer lock, WAL ordering, pooling and the threaded web tier.

The invariants under test are the ones docs/CONCURRENCY.md promises:

* transaction ids are unique across threads (no racy class counter),
* snapshot readers never observe a torn (mid-transaction) state,
* writes serialise through one writer lock with a typed timeout,
* concurrent committers produce a WAL whose LSNs are monotonic in file
  order, and recovery replays it cleanly,
* a crash injected while a writer holds the lock still releases it,
* the connection pool scopes per-request connections and rolls back
  abandoned transactions.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro import faultinject
from repro.errors import LockTimeout, TransactionError
from repro.obs import Observability
from repro.sqldb import Connection, ConnectionPool, Database


def _transfer_db(directory=None, rows=8, balance=100):
    db = Database(str(directory)) if directory else Database()
    db.execute("CREATE TABLE ACCT (K INTEGER PRIMARY KEY, V INTEGER)")
    for i in range(rows):
        db.execute("INSERT INTO ACCT VALUES (?, ?)", (i, balance))
    return db, rows * balance


class TestTransactionIds:
    def test_ids_unique_across_threads(self):
        db = Database()
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY)")
        seen, lock = [], threading.Lock()

        def worker():
            conn = db.connect()
            for _ in range(100):
                conn.execute("BEGIN")
                txn_id = conn.txns.active.txn_id
                conn.execute("ROLLBACK")
                with lock:
                    seen.append(txn_id)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == 800
        assert len(set(seen)) == 800

    def test_fallback_allocator_thread_safe(self):
        from repro.sqldb.transactions import Transaction

        seen, lock = [], threading.Lock()

        def worker():
            for _ in range(200):
                txn = Transaction(explicit=False)
                with lock:
                    seen.append(txn.txn_id)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen)) == len(seen)


class TestSessionTransactions:
    def test_connections_hold_independent_transactions(self):
        db = Database()
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY)")
        c1, c2 = db.connect(), db.connect(snapshot_reads=False)
        c1.execute("BEGIN")
        c1.execute("INSERT INTO T VALUES (1)")
        # c2 has no open transaction of its own
        assert not c2.in_transaction
        assert c1.in_transaction
        c1.execute("ROLLBACK")
        assert db.execute("SELECT COUNT(*) FROM T").scalar() == 0

    def test_default_execute_unchanged(self):
        """Database.execute keeps exact single-connection semantics."""
        db = Database()
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)")
        db.execute("BEGIN")
        db.execute("INSERT INTO T VALUES (1, 10)")
        # live read inside the transaction sees the uncommitted row
        assert db.execute("SELECT COUNT(*) FROM T").scalar() == 1
        db.execute("ROLLBACK")
        assert db.execute("SELECT COUNT(*) FROM T").scalar() == 0

    def test_transaction_context_on_connection(self):
        db = Database()
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY)")
        conn = db.connect()
        with conn.transaction():
            conn.execute("INSERT INTO T VALUES (1)")
        assert db.execute("SELECT COUNT(*) FROM T").scalar() == 1
        with pytest.raises(ZeroDivisionError):
            with conn.transaction():
                conn.execute("INSERT INTO T VALUES (2)")
                raise ZeroDivisionError
        assert db.execute("SELECT COUNT(*) FROM T").scalar() == 1

    def test_closed_connection_refuses_work(self):
        db = Database()
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY)")
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO T VALUES (1)")
        conn.close()
        # close rolled the open transaction back (and released the lock)
        assert db.execute("SELECT COUNT(*) FROM T").scalar() == 0
        assert not db.writer_lock.locked()
        with pytest.raises(TransactionError):
            conn.execute("SELECT * FROM T")


class TestSnapshotReads:
    def test_reader_does_not_see_open_transaction(self):
        db, total = _transfer_db()
        reader, writer = db.connect(), db.connect()
        writer.execute("BEGIN")
        writer.execute("UPDATE ACCT SET V = V - 50 WHERE K = 0")
        assert reader.execute("SELECT SUM(V) FROM ACCT").scalar() == total
        writer.execute("UPDATE ACCT SET V = V + 50 WHERE K = 1")
        assert reader.execute("SELECT SUM(V) FROM ACCT").scalar() == total
        writer.execute("COMMIT")
        assert reader.execute("SELECT SUM(V) FROM ACCT").scalar() == total
        rows = dict(reader.execute("SELECT K, V FROM ACCT WHERE K < 2").rows)
        assert rows == {0: 50, 1: 150}

    def test_explicit_transaction_reads_live(self):
        db, _total = _transfer_db()
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("UPDATE ACCT SET V = 0 WHERE K = 0")
        # the transaction observes its own uncommitted write
        assert conn.execute("SELECT V FROM ACCT WHERE K = 0").scalar() == 0
        conn.execute("ROLLBACK")
        assert conn.execute("SELECT V FROM ACCT WHERE K = 0").scalar() == 100

    def test_no_torn_reads_under_concurrent_transfers(self):
        """The classic invariant: money moves between accounts inside
        transactions; the total a snapshot reader sees never wavers."""
        db, total = _transfer_db(rows=10)
        stop = threading.Event()
        torn, lock = [], threading.Lock()

        def writer():
            conn = db.connect()
            i = 0
            while not stop.is_set():
                a, b = i % 10, (i + 3) % 10
                conn.execute("BEGIN")
                conn.execute("UPDATE ACCT SET V = V - 7 WHERE K = ?", (a,))
                conn.execute("UPDATE ACCT SET V = V + 7 WHERE K = ?", (b,))
                conn.execute("COMMIT")
                i += 1

        def reader():
            conn = db.connect()
            while not stop.is_set():
                seen = conn.execute("SELECT SUM(V) FROM ACCT").scalar()
                if seen != total:
                    with lock:
                        torn.append(seen)

        threads = [threading.Thread(target=writer)]
        threads += [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.8)
        stop.set()
        for t in threads:
            t.join()
        assert torn == []
        assert db.execute("SELECT SUM(V) FROM ACCT").scalar() == total

    def test_snapshot_scan_of_versioned_heap(self):
        """Direct check of the storage layer's visibility rules."""
        db = Database()
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)")
        db.execute("INSERT INTO T VALUES (1, 10), (2, 20)")
        heap = db.catalog.table("T").heap
        with db._snapshot_scope() as snapshot:  # pin: keep old versions alive
            db.execute("UPDATE T SET V = 99 WHERE K = 1")
            db.execute("DELETE FROM T WHERE K = 2")
            db.execute("INSERT INTO T VALUES (3, 30)")
            old = sorted(row for _rid, row in heap.scan_at(snapshot))
            assert old == [(1, 10), (2, 20)]
            new = sorted(
                row for _rid, row in heap.scan_at(db.catalog.clock.committed)
            )
            assert new == [(1, 99), (3, 30)]

    def test_history_pruned_without_active_snapshots(self):
        db = Database()
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)")
        db.execute("INSERT INTO T VALUES (1, 0)")
        for i in range(20):
            db.execute("UPDATE T SET V = ? WHERE K = 1", (i,))
        assert db.catalog.table("T").heap.history_versions == 0

    def test_history_retained_for_pinned_snapshot(self):
        db = Database()
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)")
        db.execute("INSERT INTO T VALUES (1, 0)")
        with db._snapshot_scope() as snapshot:
            db.execute("UPDATE T SET V = 1 WHERE K = 1")
            heap = db.catalog.table("T").heap
            assert heap.history_versions >= 1
            assert heap.get_at(1, snapshot) == (1, 0)
        # the pin is gone; the next commit prunes the old version
        db.execute("UPDATE T SET V = 2 WHERE K = 1")
        assert db.catalog.table("T").heap.history_versions == 0

    def test_union_runs_in_one_snapshot(self):
        db, total = _transfer_db()
        reader, writer = db.connect(), db.connect()
        writer.execute("BEGIN")
        writer.execute("UPDATE ACCT SET V = 0 WHERE K = 0")
        result = reader.execute(
            "SELECT V FROM ACCT WHERE K = 0 "
            "UNION ALL SELECT V FROM ACCT WHERE K = 1"
        )
        writer.execute("ROLLBACK")
        assert sorted(r[0] for r in result.rows) == [100, 100]


class TestWriterLock:
    def test_lock_timeout_is_typed_and_clean(self):
        db, _ = _transfer_db()
        holder = db.connect()
        holder.execute("BEGIN")
        holder.execute("UPDATE ACCT SET V = 0 WHERE K = 0")
        blocked = db.connect(lock_timeout=0.05)
        with pytest.raises(LockTimeout):
            blocked.execute("INSERT INTO ACCT VALUES (99, 1)")
        # the failed statement had no effect and left no open transaction
        assert not blocked.in_transaction
        holder.execute("ROLLBACK")
        blocked.execute("INSERT INTO ACCT VALUES (99, 1)")
        assert db.execute("SELECT V FROM ACCT WHERE K = 99").scalar() == 1

    def test_lock_released_on_rollback_and_commit(self):
        db, _ = _transfer_db()
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("UPDATE ACCT SET V = 1 WHERE K = 0")
        assert db.writer_lock.locked()
        conn.execute("ROLLBACK")
        assert not db.writer_lock.locked()
        conn.execute("BEGIN")
        conn.execute("UPDATE ACCT SET V = 1 WHERE K = 0")
        conn.execute("COMMIT")
        assert not db.writer_lock.locked()

    def test_read_only_transaction_never_takes_lock(self):
        db, _ = _transfer_db()
        c1, c2 = db.connect(), db.connect()
        c1.execute("BEGIN")
        c1.execute("SELECT SUM(V) FROM ACCT")
        # a concurrent writer is not blocked by the read-only transaction
        c2.execute("INSERT INTO ACCT VALUES (99, 1)")
        c1.execute("COMMIT")
        assert not db.writer_lock.locked()

    def test_writes_serialise_and_none_are_lost(self):
        db = Database()
        db.execute("CREATE TABLE C (K INTEGER PRIMARY KEY, V INTEGER)")
        db.execute("INSERT INTO C VALUES (1, 0)")

        def worker():
            conn = db.connect()
            for _ in range(25):
                conn.execute("BEGIN")
                v = conn.execute("SELECT V FROM C WHERE K = 1").scalar()
                conn.execute("UPDATE C SET V = ? WHERE K = 1", (v + 1,))
                conn.execute("COMMIT")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # BEGIN does not take the lock (reads are lock-free), so increments
        # *can* race between the read and the first write; the invariant the
        # engine promises is serialised, non-torn writes — assert the final
        # value is sane and the lock is free
        final = db.execute("SELECT V FROM C WHERE K = 1").scalar()
        assert 0 < final <= 100
        assert not db.writer_lock.locked()

    def test_metrics_cover_lock_waits(self):
        obs = Observability(enabled=True)
        db = Database(obs=obs)
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY)")
        holder = db.connect()
        holder.execute("BEGIN")
        holder.execute("INSERT INTO T VALUES (1)")
        blocked = db.connect(lock_timeout=0.02)
        with pytest.raises(LockTimeout):
            blocked.execute("INSERT INTO T VALUES (2)")
        holder.execute("COMMIT")
        snap = obs.metrics.snapshot()
        assert snap["sqldb.writer_lock.timeouts"]["value"] == 1
        assert snap["sqldb.writer_lock.acquires"]["value"] >= 2
        assert snap["sqldb.writer_lock.wait_seconds"]["count"] >= 1
        assert obs.events.events("sqldb.writer_lock.timeout")


class TestWalUnderConcurrency:
    def _lsns_in_file_order(self, directory):
        lsns = []
        with open(directory / "wal.jsonl", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                _tag, _crc, payload = line.split("|", 2)
                lsns.append(json.loads(payload)["lsn"])
        return lsns

    def test_concurrent_commits_keep_lsns_monotonic(self, tmp_path):
        db, _ = _transfer_db(tmp_path)

        def worker(base):
            conn = db.connect()
            for i in range(20):
                conn.execute(
                    "INSERT INTO ACCT VALUES (?, 1)", (1000 + base * 100 + i,)
                )

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        lsns = self._lsns_in_file_order(tmp_path)
        assert lsns == sorted(lsns)
        assert len(lsns) == len(set(lsns))
        # recovery replays the concurrent workload faithfully
        db2 = Database(str(tmp_path))
        assert db2.execute(
            "SELECT COUNT(*) FROM ACCT WHERE K >= 1000"
        ).scalar() == 80

    def test_crash_during_commit_releases_writer_lock(self, tmp_path):
        db, _ = _transfer_db(tmp_path)
        conn = db.connect()
        with faultinject.inject_crash("wal.append.torn"):
            with pytest.raises(faultinject.InjectedCrash):
                conn.execute("INSERT INTO ACCT VALUES (500, 1)")
        assert not db.writer_lock.locked()
        # the simulated host restarts: the torn record is discarded and
        # the lock-protected engine state is consistent
        db2 = Database(str(tmp_path))
        assert db2.execute(
            "SELECT COUNT(*) FROM ACCT WHERE K = 500"
        ).scalar() == 0
        assert db2.recovery_stats["torn_tail_bytes"] > 0
        db2.execute("INSERT INTO ACCT VALUES (500, 1)")

    def test_crash_after_full_write_is_durable_and_releases_lock(self, tmp_path):
        db, _ = _transfer_db(tmp_path)
        conn = db.connect()
        with faultinject.inject_crash("wal.append.full_write"):
            with pytest.raises(faultinject.InjectedCrash):
                conn.execute("INSERT INTO ACCT VALUES (501, 1)")
        assert not db.writer_lock.locked()
        db2 = Database(str(tmp_path))
        assert db2.execute(
            "SELECT COUNT(*) FROM ACCT WHERE K = 501"
        ).scalar() == 1

    def test_recovered_state_is_first_committed_snapshot(self, tmp_path):
        db, total = _transfer_db(tmp_path)
        del db
        db2 = Database(str(tmp_path))
        # snapshot connections must see the recovered rows immediately
        conn = db2.connect()
        assert conn.execute("SELECT SUM(V) FROM ACCT").scalar() == total

    def test_checkpoint_excludes_no_committed_work(self, tmp_path):
        db, _ = _transfer_db(tmp_path, rows=4)
        stop = threading.Event()
        errors = []

        def writer(base):
            conn = db.connect()
            i = 0
            try:
                while not stop.is_set():
                    conn.execute(
                        "INSERT INTO ACCT VALUES (?, 1)",
                        (2000 + base * 1_000_000 + i,),
                    )
                    i += 1
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(n,)) for n in range(2)]
        for t in threads:
            t.start()
        for _ in range(3):
            time.sleep(0.05)
            db.checkpoint()
        stop.set()
        for t in threads:
            t.join()
        assert errors == []
        expected = db.execute("SELECT COUNT(*) FROM ACCT").scalar()
        db2 = Database(str(tmp_path))
        assert db2.execute("SELECT COUNT(*) FROM ACCT").scalar() == expected


class TestCommitHooks:
    def test_hook_failures_reported_through_obs(self):
        obs = Observability(enabled=True)
        db = Database(obs=obs)
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY)")
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO T VALUES (1)")
        txn = conn.txns.active
        txn.on_commit.append(lambda: (_ for _ in ()).throw(RuntimeError("h1")))
        txn.on_commit.append(lambda: (_ for _ in ()).throw(RuntimeError("h2")))
        with pytest.raises(TransactionError, match="commit hooks failed"):
            conn.execute("COMMIT")
        assert not db.writer_lock.locked()
        snap = obs.metrics.snapshot()
        assert snap["sqldb.commit.hook_failures"]["value"] == 2
        events = obs.events.events("sqldb.commit.hook_failure")
        assert len(events) == 2
        assert events[0]["txn_id"] == txn.txn_id
        assert "h1" in events[0]["error"]
        # the data change itself committed (hooks run post-commit-point)
        assert db.execute("SELECT COUNT(*) FROM T").scalar() == 1


class TestConnectionPool:
    def test_scope_installs_thread_connection(self):
        db, _ = _transfer_db()
        pool = ConnectionPool(db, size=2)
        with pool.scope() as conn:
            assert db._connection() is conn
            assert isinstance(conn, Connection)
        assert db._connection() is not conn
        assert pool.in_use == 0

    def test_exhausted_pool_times_out(self):
        db, _ = _transfer_db()
        pool = ConnectionPool(db, size=1, checkout_timeout=0.05)
        held = pool.checkout()
        with pytest.raises(LockTimeout):
            pool.checkout()
        pool.checkin(held)
        again = pool.checkout()
        pool.checkin(again)

    def test_abandoned_transaction_rolled_back_on_checkin(self):
        db, _ = _transfer_db()
        pool = ConnectionPool(db, size=1)
        conn = pool.checkout()
        conn.execute("BEGIN")
        conn.execute("UPDATE ACCT SET V = 0 WHERE K = 0")
        pool.checkin(conn)  # handler died without COMMIT/ROLLBACK
        assert not db.writer_lock.locked()
        assert db.execute("SELECT V FROM ACCT WHERE K = 0").scalar() == 100

    def test_pool_requests_run_concurrently_without_torn_reads(self):
        db, total = _transfer_db()
        pool = ConnectionPool(db, size=4)
        stop = threading.Event()
        bad, lock = [], threading.Lock()

        def writer():
            conn = db.connect()
            while not stop.is_set():
                conn.execute("BEGIN")
                conn.execute("UPDATE ACCT SET V = V - 5 WHERE K = 0")
                conn.execute("UPDATE ACCT SET V = V + 5 WHERE K = 1")
                conn.execute("COMMIT")

        def request():
            for _ in range(30):
                with pool.scope():
                    seen = db.execute("SELECT SUM(V) FROM ACCT").scalar()
                    if seen != total:
                        with lock:
                            bad.append(seen)

        w = threading.Thread(target=writer)
        readers = [threading.Thread(target=request) for _ in range(4)]
        w.start()
        for t in readers:
            t.start()
        for t in readers:
            t.join()
        stop.set()
        w.join()
        assert bad == []


class TestThreadedWebTier:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        from repro import EasiaApp, build_turbulence_archive
        from repro.web.wsgi import WsgiAdapter, make_threading_server

        archive = build_turbulence_archive(n_simulations=1, timesteps=1, grid=8)
        engine = archive.make_engine(
            str(tmp_path_factory.mktemp("concurrency-sandbox"))
        )
        app = EasiaApp(
            archive.db, archive.linker, archive.document, archive.users, engine
        )
        pool = ConnectionPool(archive.db, size=4)
        app.container.use_connection_pool(pool)
        httpd = make_threading_server("127.0.0.1", 0, WsgiAdapter(app))
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        yield app, pool, base
        httpd.shutdown()
        thread.join(timeout=5)

    def _login(self, base):
        request = urllib.request.Request(
            f"{base}/login",
            data=b"username=guest&password=guest",
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            cookie = response.headers.get("Set-Cookie", "")
        assert cookie.startswith("easia_session=")
        return cookie.split(";")[0]

    def test_cookie_is_samesite_lax(self, served):
        _app, _pool, base = served
        request = urllib.request.Request(
            f"{base}/login",
            data=b"username=guest&password=guest",
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            cookie = response.headers.get("Set-Cookie", "")
        assert "SameSite=Lax" in cookie
        assert "HttpOnly" in cookie

    def test_concurrent_sessions_over_http(self, served):
        _app, pool, base = served
        failures, lock = [], threading.Lock()

        def client():
            try:
                cookie = self._login(base)
                for _ in range(5):
                    request = urllib.request.Request(
                        f"{base}/table?name=SIMULATION",
                        headers={"Cookie": cookie},
                    )
                    with urllib.request.urlopen(request, timeout=10) as resp:
                        body = resp.read()
                        if resp.status != 200 or b"SIMULATION" not in body:
                            with lock:
                                failures.append(resp.status)
            except Exception as exc:
                with lock:
                    failures.append(repr(exc))

        threads = [threading.Thread(target=client) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []
        assert pool.in_use == 0
        assert pool.checkouts >= 6

    def test_pool_exhaustion_maps_to_503(self, served):
        app, _pool, base = served
        cookie = self._login(base)
        tiny = ConnectionPool(app.db, size=1, checkout_timeout=0.05)
        app.container.use_connection_pool(tiny)
        held = tiny.checkout()
        try:
            request = urllib.request.Request(
                f"{base}/table?name=SIMULATION", headers={"Cookie": cookie}
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 503
        finally:
            tiny.checkin(held)
            app.container.use_connection_pool(_pool)

    def test_oversized_body_is_413(self, served):
        from io import BytesIO

        from repro.web.wsgi import WsgiAdapter

        app, _pool, _base = served
        adapter = WsgiAdapter(app, max_content_length=128)
        captured = {}

        def start_response(status, headers):
            captured["status"] = status

        body = adapter(
            {
                "PATH_INFO": "/login",
                "REQUEST_METHOD": "POST",
                "QUERY_STRING": "",
                "CONTENT_LENGTH": "1024",
                "CONTENT_TYPE": "application/x-www-form-urlencoded",
                "wsgi.input": BytesIO(b"u" * 1024),
            },
            start_response,
        )
        assert captured["status"].startswith("413")
        assert b"too large" in b"".join(body)
