"""The deterministic crash matrix.

Every durable-mode transaction scenario is run once per registered crash
point: the fault injector kills the "process" at that point, the database
is reopened from disk (recovery + datalink reconciliation), and the
recovered state must equal either the pre-transaction or the
post-transaction state — atomicity under every crash we can name.

The expected side is deterministic per point: anything before the WAL
record is fully on disk recovers to *pre*; anything after recovers to
*post* (committed work is never lost), with datalink reconciliation
closing any database/file-server gap the crash opened.
"""

import pytest

from repro import faultinject
from repro.datalink import DataLinker, TokenManager
from repro.datalink.reconcile import reconcile
from repro.fileserver import FileServer
from repro.sqldb import Database
from repro.sqldb.types import DatalinkValue

PLAIN_DDL = "CREATE TABLE t (k INTEGER PRIMARY KEY, v VARCHAR(10))"
DATALINK_DDL = (
    "CREATE TABLE r (k INTEGER PRIMARY KEY, d DATALINK LINKTYPE URL "
    "FILE LINK CONTROL READ PERMISSION DB WRITE PERMISSION BLOCKED "
    "RECOVERY YES ON UNLINK RESTORE)"
)
FILES = ["/data/a.bin", "/data/b.bin", "/data/c.bin"]


class Scenario:
    """One durable-mode transaction plus the crash points it exercises.

    ``points`` maps each (crash point, skip) pair to the state the
    recovered database must equal: "pre" or "post".
    """

    name: str
    tables: list[str]
    datalink = False
    points: list[tuple[str, int, str]]

    def build(self, directory):
        """Create the archive with the committed pre-state."""
        linker = server = None
        db = Database(directory, sync=True)
        if self.datalink:
            linker = DataLinker(
                TokenManager(secret=b"matrix", time_source=lambda: 0.0)
            )
            server = linker.register_server(FileServer("fs.x"))
            for path in FILES:
                server.put(path, b"payload:" + path.encode())
            db.set_datalink_hooks(linker)
        self.setup(db)
        return db, linker, server

    def setup(self, db):
        raise NotImplementedError

    def mutate(self, db):
        raise NotImplementedError


class InsertAutocommit(Scenario):
    name = "insert-autocommit"
    tables = ["t"]
    points = [
        ("wal.append.torn", 0, "pre"),
        ("wal.append.full_write", 0, "post"),
    ]

    def setup(self, db):
        db.execute(PLAIN_DDL)
        db.execute("INSERT INTO t VALUES (1, 'a')")

    def mutate(self, db):
        db.execute("INSERT INTO t VALUES (2, 'b')")


class ExplicitMultiOp(Scenario):
    name = "explicit-multiop"
    tables = ["t"]
    points = [
        ("wal.append.torn", 0, "pre"),
        ("wal.append.full_write", 0, "post"),
    ]

    def setup(self, db):
        db.execute(PLAIN_DDL)
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")

    def mutate(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (4, 'd')")
        db.execute("UPDATE t SET v = 'upd' WHERE k = 1")
        db.execute("DELETE FROM t WHERE k = 2")
        db.execute("COMMIT")


class Checkpoint(Scenario):
    name = "checkpoint"
    tables = ["t"]
    # A checkpoint does not change logical state: pre == post, and the
    # assertion's real teeth are "no duplicated rows" after replay.
    points = [
        ("wal.checkpoint.tmp_written", 0, "pre"),
        ("wal.checkpoint.after_replace", 0, "pre"),
        ("wal.checkpoint.after_truncate", 0, "pre"),
    ]

    def setup(self, db):
        db.execute(PLAIN_DDL)
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        db.execute("UPDATE t SET v = 'z' WHERE k = 3")

    def mutate(self, db):
        db.checkpoint()


class LinkInsert(Scenario):
    name = "link-insert"
    tables = ["r"]
    datalink = True
    points = [
        ("wal.append.torn", 0, "pre"),
        ("wal.append.full_write", 0, "post"),
        ("datalink.apply.before_op", 0, "post"),
        ("fileserver.dl_link", 0, "post"),
        ("datalink.apply.after_op", 0, "post"),
    ]

    def setup(self, db):
        db.execute(DATALINK_DDL)
        db.execute("INSERT INTO r VALUES (1, 'http://fs.x/data/a.bin')")

    def mutate(self, db):
        db.execute("INSERT INTO r VALUES (2, 'http://fs.x/data/b.bin')")


class UnlinkDelete(Scenario):
    name = "unlink-delete"
    tables = ["r"]
    datalink = True
    points = [
        ("wal.append.torn", 0, "pre"),
        ("wal.append.full_write", 0, "post"),
        ("datalink.apply.before_op", 0, "post"),
        ("fileserver.dl_unlink", 0, "post"),
        ("datalink.apply.after_op", 0, "post"),
    ]

    def setup(self, db):
        db.execute(DATALINK_DDL)
        db.execute("INSERT INTO r VALUES (1, 'http://fs.x/data/a.bin')")
        db.execute("INSERT INTO r VALUES (2, 'http://fs.x/data/b.bin')")

    def mutate(self, db):
        db.execute("DELETE FROM r WHERE k = 2")


class MultiLinkTransaction(Scenario):
    name = "multi-link-txn"
    tables = ["r"]
    datalink = True
    # skip=1 dies between the first and second link application: one file
    # is under link control, the other is not, and reconciliation must
    # close exactly that gap.
    points = [
        ("datalink.apply.before_op", 1, "post"),
        ("datalink.apply.after_op", 1, "post"),
        ("fileserver.dl_link", 1, "post"),
    ]

    def setup(self, db):
        db.execute(DATALINK_DDL)

    def mutate(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO r VALUES (1, 'http://fs.x/data/b.bin')")
        db.execute("INSERT INTO r VALUES (2, 'http://fs.x/data/c.bin')")
        db.execute("COMMIT")


SCENARIOS = [
    InsertAutocommit(),
    ExplicitMultiOp(),
    Checkpoint(),
    LinkInsert(),
    UnlinkDelete(),
    MultiLinkTransaction(),
]

MATRIX = [
    (scenario, point, skip, expected)
    for scenario in SCENARIOS
    for point, skip, expected in scenario.points
]


def db_state(db, tables):
    """Logical contents, normalised for comparison across processes."""
    state = {}
    for table in tables:
        rows = []
        for row in db.execute(f"SELECT * FROM {table}").rows:
            rows.append(tuple(
                value.url if isinstance(value, DatalinkValue) else value
                for value in row
            ))
        state[table] = sorted(rows)
    return state


def link_state(server):
    if server is None:
        return None
    fs = server.filesystem
    return {
        path: (
            fs.entry(path).linked,
            fs.entry(path).read_db,
            fs.entry(path).write_blocked,
            fs.entry(path).recovery,
        )
        for path in fs.paths()
    }


def reopen(directory, linker):
    """Simulated reboot of the database host.

    The crashed Database object is discarded; the file servers (remote
    processes) survive with whatever state the crash left them.  Recovery
    replays the WAL, then datalink reconciliation audits and repairs the
    database/file-server gap.
    """
    db = Database(directory, sync=True)
    if linker is not None:
        linker.recover(db)
        db.set_datalink_hooks(linker)
    return db


@pytest.mark.parametrize(
    "scenario,point,skip,expected",
    MATRIX,
    ids=[f"{s.name}--{p}-skip{k}" for s, p, k, _e in MATRIX],
)
def test_crash_matrix(tmp_path, scenario, point, skip, expected):
    # The clean run, in its own directory: what "post" should look like.
    clean_db, clean_linker, clean_server = scenario.build(
        str(tmp_path / "clean")
    )
    pre_rows = db_state(clean_db, scenario.tables)
    pre_links = link_state(clean_server)
    scenario.mutate(clean_db)
    post_rows = db_state(clean_db, scenario.tables)
    post_links = link_state(clean_server)

    # The crashed run.
    d = str(tmp_path / "crash")
    db, linker, server = scenario.build(d)
    assert db_state(db, scenario.tables) == pre_rows
    with faultinject.inject_crash(point, skip) as injector:
        scenario.mutate(db)
    assert injector.fired

    recovered = reopen(d, linker)
    state = db_state(recovered, scenario.tables)
    want = pre_rows if expected == "pre" else post_rows
    assert state == want, (
        f"crash at {point} (skip={skip}): recovered state is neither the "
        f"pre- nor the expected {expected}-transaction state"
    )
    # Atomicity means the *other* side is the only alternative; recovered
    # state must never be a hybrid.  (For checkpoint scenarios pre == post,
    # so the check above already covers it.)
    assert state in (pre_rows, post_rows)

    if linker is not None:
        # Reconciliation + repair must leave no unreported divergence: the
        # file servers now agree with the recovered database.
        assert reconcile(recovered, linker).consistent
        want_links = pre_links if expected == "pre" else post_links
        assert link_state(server) == want_links

    # Recovery must be reusable, not merely readable: the recovered
    # database can commit and checkpoint, and the result reopens cleanly.
    recovered.checkpoint()
    final = reopen(d, linker)
    assert db_state(final, scenario.tables) == want


def test_every_registered_crash_point_is_exercised():
    """Guards against silently-dead injection sites: a crash point that no
    scenario reaches would otherwise never be tested (and inject_crash
    would fail fast on it anyway)."""
    covered = {point for scenario in SCENARIOS for point, _s, _e in scenario.points}
    assert covered == faultinject.CRASH_POINTS


def test_double_crash_during_recovery_checkpoint(tmp_path):
    """Crash during the checkpoint that follows a crash recovery: recovery
    must be idempotent across repeated partial attempts."""
    d = str(tmp_path)
    db = Database(d, sync=True)
    db.execute(PLAIN_DDL)
    db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    with faultinject.inject_crash("wal.append.torn"):
        db.execute("INSERT INTO t VALUES (3, 'c')")
    db2 = Database(d, sync=True)
    with faultinject.inject_crash("wal.checkpoint.after_replace"):
        db2.checkpoint()
    db3 = Database(d, sync=True)
    assert sorted(db3.execute("SELECT k FROM t").rows) == [(1,), (2,)]
    db3.execute("INSERT INTO t VALUES (3, 'c')")
    assert sorted(Database(d).execute("SELECT k FROM t").rows) == [
        (1,), (2,), (3,),
    ]


def test_orphan_detection_is_reported_before_repair(tmp_path):
    """The pre-repair report names the orphan a mid-unlink crash leaves."""
    scenario = UnlinkDelete()
    d = str(tmp_path)
    db, linker, server = scenario.build(d)
    with faultinject.inject_crash("datalink.apply.before_op"):
        scenario.mutate(db)
    db2 = Database(d, sync=True)
    linker.discard_pending()
    report = linker.recover(db2)
    orphans = report.by_kind("orphaned")
    assert [(f.host, f.path) for f in orphans] == [("fs.x", "/data/b.bin")]
    assert reconcile(db2, linker).consistent
