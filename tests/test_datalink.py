"""Tests for SQL/MED datalink semantics: tokens, linking, backup."""

import pytest

from repro.datalink import (
    DataLinker,
    DatalinkSpec,
    TokenManager,
    coordinated_backup,
    coordinated_restore,
)
from repro.errors import (
    CatalogError,
    FileLinkError,
    RecoveryError,
    TokenError,
    TokenExpiredError,
)
from repro.fileserver import FileServer
from repro.sqldb import Database


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class TestDatalinkSpec:
    def test_paper_default(self):
        spec = DatalinkSpec.paper_default()
        assert spec.link_control and spec.requires_token
        assert spec.integrity == "ALL"
        assert spec.on_unlink == "RESTORE"
        assert spec.recovery

    def test_ddl_round_trip_through_parser(self):
        from repro.sqldb.parser import parse_sql

        spec = DatalinkSpec.paper_default()
        stmt = parse_sql(f"CREATE TABLE t (d DATALINK {spec.ddl()})")
        assert stmt.columns[0].type.spec == spec

    def test_no_link_control_ddl(self):
        assert DatalinkSpec().ddl() == "LINKTYPE URL NO LINK CONTROL"

    def test_options_require_link_control(self):
        with pytest.raises(CatalogError):
            DatalinkSpec(link_control=False, read_permission="DB")

    def test_read_db_defaults_on_unlink_restore(self):
        spec = DatalinkSpec(link_control=True, read_permission="DB")
        assert spec.on_unlink == "RESTORE"

    def test_link_control_promotes_integrity(self):
        assert DatalinkSpec(link_control=True).integrity == "SELECTIVE"

    def test_bad_enums(self):
        with pytest.raises(CatalogError):
            DatalinkSpec(link_control=True, integrity="SOMETIMES")
        with pytest.raises(CatalogError):
            DatalinkSpec(link_control=True, write_permission="MAYBE")


class TestTokenManager:
    def test_issue_validate_round_trip(self):
        clock = FakeClock()
        tm = TokenManager(secret=b"k", validity_seconds=60, time_source=clock)
        token = tm.issue("host/path")
        assert tm.validate("host/path", token) is True

    def test_expiry(self):
        clock = FakeClock()
        tm = TokenManager(secret=b"k", validity_seconds=60, time_source=clock)
        token = tm.issue("host/path")
        clock.now += 61
        with pytest.raises(TokenExpiredError):
            tm.validate("host/path", token)

    def test_not_transferable_between_scopes(self):
        tm = TokenManager(secret=b"k", validity_seconds=60, time_source=FakeClock())
        token = tm.issue("host/one")
        with pytest.raises(TokenError):
            tm.validate("host/two", token)

    def test_different_secret_rejects(self):
        clock = FakeClock()
        tm1 = TokenManager(secret=b"k1", validity_seconds=60, time_source=clock)
        tm2 = TokenManager(secret=b"k2", validity_seconds=60, time_source=clock)
        with pytest.raises(TokenError):
            tm2.validate("s", tm1.issue("s"))

    def test_tampered_expiry_rejected(self):
        tm = TokenManager(secret=b"k", validity_seconds=60, time_source=FakeClock())
        token = tm.issue("s")
        expiry, _, sig = token.partition(".")
        extended = format(int(expiry, 16) + 10_000_000, "x")
        with pytest.raises(TokenError):
            tm.validate("s", f"{extended}.{sig}")

    @pytest.mark.parametrize("bad", ["", "nodot", ".", "zz.!!", "12."])
    def test_malformed_tokens(self, bad):
        tm = TokenManager(secret=b"k", time_source=FakeClock())
        with pytest.raises(TokenError):
            tm.validate("s", bad)

    def test_custom_validity_per_token(self):
        clock = FakeClock()
        tm = TokenManager(secret=b"k", validity_seconds=10, time_source=clock)
        token = tm.issue("s", validity_seconds=1000)
        clock.now += 500
        assert tm.validate("s", token)

    def test_remaining_validity(self):
        clock = FakeClock()
        tm = TokenManager(secret=b"k", validity_seconds=60, time_source=clock)
        token = tm.issue("s")
        assert tm.remaining_validity(token) == pytest.approx(60, abs=0.01)

    def test_url_safe(self):
        tm = TokenManager(secret=b"k", time_source=FakeClock())
        token = tm.issue("s")
        assert "/" not in token and "+" not in token and "=" not in token

    def test_counters(self):
        tm = TokenManager(secret=b"k", time_source=FakeClock())
        tm.validate("s", tm.issue("s"))
        assert tm.issued_count == 1 and tm.validated_count == 1

    def test_nonpositive_validity_rejected(self):
        with pytest.raises(TokenError):
            TokenManager(validity_seconds=0)


@pytest.fixture
def archive():
    """A database + linker + one file server with two candidate files."""
    clock = FakeClock()
    tm = TokenManager(secret=b"shared", validity_seconds=60, time_source=clock)
    linker = DataLinker(tm)
    server = linker.register_server(FileServer("fs1.soton.ac.uk"))
    server.put("/data/ts0001.dat", b"a" * 1000)
    server.put("/data/ts0002.dat", b"b" * 2000)
    db = Database()
    db.set_datalink_hooks(linker)
    db.execute(
        "CREATE TABLE RESULT_FILE ("
        " file_name VARCHAR(40) PRIMARY KEY,"
        " download DATALINK LINKTYPE URL FILE LINK CONTROL INTEGRITY ALL"
        "   READ PERMISSION DB WRITE PERMISSION BLOCKED RECOVERY YES"
        "   ON UNLINK RESTORE)"
    )
    return db, linker, server, clock


class TestDataLinker:
    def test_insert_links_file(self, archive):
        db, _linker, server, _clock = archive
        db.execute(
            "INSERT INTO RESULT_FILE VALUES "
            "('f1', 'http://fs1.soton.ac.uk/data/ts0001.dat')"
        )
        assert server.filesystem.entry("/data/ts0001.dat").linked

    def test_missing_file_vetoes_insert(self, archive):
        db, _linker, _server, _clock = archive
        with pytest.raises(FileLinkError):
            db.execute(
                "INSERT INTO RESULT_FILE VALUES "
                "('f1', 'http://fs1.soton.ac.uk/data/absent.dat')"
            )
        assert db.execute("SELECT COUNT(*) FROM RESULT_FILE").scalar() == 0

    def test_unknown_host_vetoes_insert(self, archive):
        db, _linker, _server, _clock = archive
        with pytest.raises(FileLinkError):
            db.execute(
                "INSERT INTO RESULT_FILE VALUES ('f1', 'http://nowhere/x.dat')"
            )

    def test_double_link_rejected_across_rows(self, archive):
        db, _linker, _server, _clock = archive
        db.execute(
            "INSERT INTO RESULT_FILE VALUES "
            "('f1', 'http://fs1.soton.ac.uk/data/ts0001.dat')"
        )
        with pytest.raises(FileLinkError):
            db.execute(
                "INSERT INTO RESULT_FILE VALUES "
                "('f2', 'http://fs1.soton.ac.uk/data/ts0001.dat')"
            )

    def test_double_link_rejected_within_txn(self, archive):
        db, _linker, _server, _clock = archive
        db.execute("BEGIN")
        db.execute(
            "INSERT INTO RESULT_FILE VALUES "
            "('f1', 'http://fs1.soton.ac.uk/data/ts0001.dat')"
        )
        with pytest.raises(FileLinkError):
            db.execute(
                "INSERT INTO RESULT_FILE VALUES "
                "('f2', 'http://fs1.soton.ac.uk/data/ts0001.dat')"
            )
        db.execute("COMMIT")

    def test_rollback_discards_pending_link(self, archive):
        db, _linker, server, _clock = archive
        db.execute("BEGIN")
        db.execute(
            "INSERT INTO RESULT_FILE VALUES "
            "('f1', 'http://fs1.soton.ac.uk/data/ts0001.dat')"
        )
        db.execute("ROLLBACK")
        assert not server.filesystem.entry("/data/ts0001.dat").linked

    def test_link_applied_only_at_commit(self, archive):
        db, _linker, server, _clock = archive
        db.execute("BEGIN")
        db.execute(
            "INSERT INTO RESULT_FILE VALUES "
            "('f1', 'http://fs1.soton.ac.uk/data/ts0001.dat')"
        )
        assert not server.filesystem.entry("/data/ts0001.dat").linked
        db.execute("COMMIT")
        assert server.filesystem.entry("/data/ts0001.dat").linked

    def test_delete_unlinks_with_restore(self, archive):
        db, _linker, server, _clock = archive
        db.execute(
            "INSERT INTO RESULT_FILE VALUES "
            "('f1', 'http://fs1.soton.ac.uk/data/ts0001.dat')"
        )
        db.execute("DELETE FROM RESULT_FILE WHERE file_name = 'f1'")
        entry = server.filesystem.entry("/data/ts0001.dat")
        assert not entry.linked  # ON UNLINK RESTORE keeps the file

    def test_on_unlink_delete_removes_file(self, archive):
        db, linker, server, _clock = archive
        db.execute(
            "CREATE TABLE SCRATCH (k VARCHAR(5) PRIMARY KEY,"
            " d DATALINK LINKTYPE URL FILE LINK CONTROL INTEGRITY ALL"
            "   READ PERMISSION FS WRITE PERMISSION FS RECOVERY NO"
            "   ON UNLINK DELETE)"
        )
        db.execute(
            "INSERT INTO SCRATCH VALUES ('x', 'http://fs1.soton.ac.uk/data/ts0002.dat')"
        )
        db.execute("DELETE FROM SCRATCH WHERE k = 'x'")
        assert not server.filesystem.exists("/data/ts0002.dat")

    def test_update_relinks(self, archive):
        db, _linker, server, _clock = archive
        db.execute(
            "INSERT INTO RESULT_FILE VALUES "
            "('f1', 'http://fs1.soton.ac.uk/data/ts0001.dat')"
        )
        db.execute(
            "UPDATE RESULT_FILE SET download = "
            "'http://fs1.soton.ac.uk/data/ts0002.dat' WHERE file_name = 'f1'"
        )
        assert not server.filesystem.entry("/data/ts0001.dat").linked
        assert server.filesystem.entry("/data/ts0002.dat").linked

    def test_select_attaches_token_and_size(self, archive):
        db, linker, _server, _clock = archive
        db.execute(
            "INSERT INTO RESULT_FILE VALUES "
            "('f1', 'http://fs1.soton.ac.uk/data/ts0001.dat')"
        )
        value = db.execute("SELECT download FROM RESULT_FILE").scalar()
        assert value.token is not None
        assert value.size == 1000
        assert ";" in value.tokenized_url
        assert linker.download(value) == b"a" * 1000

    def test_expired_token_refused_fresh_select_works(self, archive):
        db, linker, _server, clock = archive
        db.execute(
            "INSERT INTO RESULT_FILE VALUES "
            "('f1', 'http://fs1.soton.ac.uk/data/ts0001.dat')"
        )
        value = db.execute("SELECT download FROM RESULT_FILE").scalar()
        clock.now += 3600
        with pytest.raises(TokenExpiredError):
            linker.download(value)
        fresh = db.execute("SELECT download FROM RESULT_FILE").scalar()
        assert linker.download(fresh) == b"a" * 1000

    def test_no_link_control_column_untouched(self, archive):
        db, _linker, server, _clock = archive
        db.execute(
            "CREATE TABLE NOTES (k VARCHAR(5) PRIMARY KEY,"
            " d DATALINK LINKTYPE URL NO LINK CONTROL)"
        )
        db.execute("INSERT INTO NOTES VALUES ('n', 'http://elsewhere/f.txt')")
        value = db.execute("SELECT d FROM NOTES").scalar()
        assert value.token is None

    def test_statement_rollback_in_explicit_txn(self, archive):
        """A failed multi-row INSERT inside a txn leaves no pending links."""
        db, _linker, server, _clock = archive
        db.execute("BEGIN")
        with pytest.raises(FileLinkError):
            db.execute(
                "INSERT INTO RESULT_FILE VALUES "
                "('f1', 'http://fs1.soton.ac.uk/data/ts0001.dat'),"
                "('f2', 'http://fs1.soton.ac.uk/data/absent.dat')"
            )
        db.execute("COMMIT")
        assert db.execute("SELECT COUNT(*) FROM RESULT_FILE").scalar() == 0
        assert not server.filesystem.entry("/data/ts0001.dat").linked

    def test_duplicate_server_registration(self, archive):
        _db, linker, _server, _clock = archive
        with pytest.raises(FileLinkError):
            linker.register_server(FileServer("fs1.soton.ac.uk"))

    def test_recovery_manifest(self, archive):
        db, linker, _server, _clock = archive
        db.execute(
            "INSERT INTO RESULT_FILE VALUES "
            "('f1', 'http://fs1.soton.ac.uk/data/ts0001.dat')"
        )
        assert linker.recovery_manifest() == [
            ("fs1.soton.ac.uk", "/data/ts0001.dat")
        ]


class TestCoordinatedBackup:
    def test_round_trip(self, archive, tmp_path):
        db, linker, _server, clock = archive
        db.execute(
            "INSERT INTO RESULT_FILE VALUES "
            "('f1', 'http://fs1.soton.ac.uk/data/ts0001.dat')"
        )
        manifest = coordinated_backup(db, linker, str(tmp_path))
        assert manifest["byte_total"] == 1000

        tm = TokenManager(secret=b"shared", validity_seconds=60,
                          time_source=lambda: clock.now)
        db2, linker2 = coordinated_restore(str(tmp_path), tm)
        value = db2.execute("SELECT download FROM RESULT_FILE").scalar()
        assert value.size == 1000
        assert linker2.download(value) == b"a" * 1000
        # link control survives the restore
        server2 = linker2.server("fs1.soton.ac.uk")
        assert server2.filesystem.entry("/data/ts0001.dat").linked

    def test_only_recovery_yes_files_in_image(self, archive, tmp_path):
        db, linker, server, _clock = archive
        db.execute(
            "CREATE TABLE SCRATCH (k VARCHAR(5) PRIMARY KEY,"
            " d DATALINK LINKTYPE URL FILE LINK CONTROL"
            "   READ PERMISSION FS WRITE PERMISSION FS RECOVERY NO"
            "   ON UNLINK RESTORE)"
        )
        db.execute(
            "INSERT INTO SCRATCH VALUES ('x', 'http://fs1.soton.ac.uk/data/ts0002.dat')"
        )
        manifest = coordinated_backup(db, linker, str(tmp_path))
        assert manifest["files"] == []  # RECOVERY NO file not in the image

    def test_restore_missing_image(self, tmp_path):
        with pytest.raises(RecoveryError):
            coordinated_restore(str(tmp_path / "empty"))
