"""Smoke tests keeping every example script runnable.

Each example's ``main()`` is executed in-process with output captured;
these tests fail the moment an API change breaks the documented
walkthroughs.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def _load_example(name: str):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        _load_example("quickstart.py").main()
        out = capsys.readouterr().out
        assert "download through token: OK" in out
        assert "delete blocked by FILE LINK CONTROL" in out
        assert "after rollback: 1 row(s), ts0002 linked = False" in out

    def test_bandwidth_study(self, capsys):
        _load_example("bandwidth_study.py").main()
        out = capsys.readouterr().out
        assert "45m20s" in out and "4h50m08s" in out
        assert "2h22m08s" in out  # the boundary-crossing upload

    def test_xuis_customisation(self, capsys):
        _load_example("xuis_customisation.py").main()
        out = capsys.readouterr().out
        assert "default XUIS problems: []" in out
        assert "customised XUIS problems: []" in out
        assert "hidden EMAIL column absent: True" in out
        assert "guest ('Public view') sees tables: ['SIMULATION']" in out

    def test_code_upload(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        _load_example("code_upload.py").main()
        out = capsys.readouterr().out
        assert "kinetic energy =" in out
        assert "guest upload refused" in out
        assert "sandbox stopped hostile upload" in out

    def test_turbulence_portal(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        _load_example("turbulence_portal.py").main()
        out = capsys.readouterr().out
        assert "guest raw-download attempt -> HTTP 403" in out
        assert "member raw-download -> HTTP 200" in out
        assert "reduction" in out

    def test_archive_administration(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        _load_example("archive_administration.py").main()
        out = capsys.readouterr().out
        assert "persisted statistics: [('FieldStats', 4)]" in out
        assert "after repair: consistent = True" in out
        assert "statistics survived the restore" in out

    def test_ui_gallery(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setattr(
            sys, "argv", ["generate_ui_gallery.py", str(tmp_path / "gallery")]
        )
        _load_example("generate_ui_gallery.py").main()
        out = capsys.readouterr().out
        assert "09_operation_output.pgm" in out
        written = sorted(os.listdir(tmp_path / "gallery"))
        assert len(written) == 9
        with open(tmp_path / "gallery" / "01_query_form.html") as fh:
            assert "sample values" in fh.read()


class TestExistsPredicate:
    def test_exists_and_not_exists(self):
        from repro.sqldb import Database

        db = Database()
        db.execute("CREATE TABLE a (k INTEGER PRIMARY KEY)")
        db.execute("CREATE TABLE b (k INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO a VALUES (1), (2)")
        assert db.execute(
            "SELECT k FROM a WHERE EXISTS (SELECT k FROM b)"
        ).rows == []
        assert len(db.execute(
            "SELECT k FROM a WHERE NOT EXISTS (SELECT k FROM b)"
        )) == 2
        db.execute("INSERT INTO b VALUES (9)")
        assert len(db.execute(
            "SELECT k FROM a WHERE EXISTS (SELECT k FROM b WHERE k > 5)"
        )) == 2

    def test_exists_in_delete(self):
        from repro.sqldb import Database

        db = Database()
        db.execute("CREATE TABLE a (k INTEGER PRIMARY KEY)")
        db.execute("CREATE TABLE flags (k INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO a VALUES (1), (2)")
        db.execute("INSERT INTO flags VALUES (1)")
        db.execute("DELETE FROM a WHERE EXISTS (SELECT k FROM flags)")
        assert db.execute("SELECT COUNT(*) FROM a").scalar() == 0
