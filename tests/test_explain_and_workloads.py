"""Tests for the EXPLAIN statement, planner helpers and bench workloads."""

import pytest

from repro.bench import metadata_database, multi_site_network, user_site_network
from repro.errors import SqlSyntaxError
from repro.sqldb import Database
from repro.sqldb.planner import conjuncts, constant_equalities, explain, join_equalities


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
    database.execute("CREATE TABLE u (k INTEGER PRIMARY KEY, t_k INTEGER REFERENCES t (k))")
    for i in range(5):
        database.execute("INSERT INTO t VALUES (?, ?)", (i, i * 10))
    return database


class TestExplainStatement:
    def test_point_lookup_plan(self, db):
        result = db.execute("EXPLAIN SELECT * FROM t WHERE k = 3")
        assert result.columns == ["PLAN"]
        assert any("PK_T" in row[0] for row in result.rows)

    def test_seq_scan_plan(self, db):
        result = db.execute("EXPLAIN SELECT * FROM t WHERE v > 10")
        assert any("seq scan" in row[0] for row in result.rows)

    def test_join_plan(self, db):
        result = db.execute(
            "EXPLAIN SELECT * FROM u JOIN t ON u.t_k = t.k"
        )
        assert any("join" in row[0] for row in result.rows)

    def test_explain_composite_key(self, db):
        db.execute(
            "CREATE TABLE c (a INTEGER, b INTEGER, PRIMARY KEY (a, b))"
        )
        result = db.execute("EXPLAIN SELECT * FROM c WHERE a = 1 AND b = 2")
        assert any("PK_C" in row[0] for row in result.rows)

    def test_explain_non_select_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("EXPLAIN DELETE FROM t")

    def test_explain_does_not_modify(self, db):
        db.execute("EXPLAIN SELECT * FROM t")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 5


class TestPlannerHelpers:
    def test_conjuncts_flatten_ands(self):
        from repro.sqldb.parser import parse_sql

        stmt = parse_sql("SELECT * FROM t WHERE a = 1 AND b = 2 AND c > 3")
        parts = conjuncts(stmt.where)
        assert len(parts) == 3

    def test_conjuncts_none(self):
        assert conjuncts(None) == []

    def test_constant_equalities_resolve_params(self):
        from repro.sqldb.parser import parse_sql

        stmt = parse_sql("SELECT * FROM t WHERE a = ? AND 5 = b AND c > 1")
        pairs = constant_equalities(conjuncts(stmt.where), ("x",))
        bindings = {ref.column: value for ref, value in pairs}
        assert bindings == {"A": "x", "B": 5}

    def test_join_equalities_orientation(self):
        from repro.sqldb.parser import parse_sql

        stmt = parse_sql("SELECT * FROM a JOIN b ON a.x = b.y")
        pairs = join_equalities(stmt.joins[0].on, "B")
        assert len(pairs) == 1
        outer, inner = pairs[0]
        assert outer.key == "A.X" and inner.key == "B.Y"

    def test_explain_renderer(self):
        assert explain(["one", "two"]) == "1. one\n2. two"


class TestBenchWorkloads:
    def test_metadata_database_rows_and_index(self):
        db = metadata_database(120)
        assert db.execute("SELECT COUNT(*) FROM SIMULATION").scalar() == 120
        plan = db.explain("SELECT * FROM SIMULATION WHERE GRID_SIZE = 128")
        assert "IX_GRID" in plan

    def test_metadata_database_without_index(self):
        db = metadata_database(10, with_index=False)
        plan = db.explain("SELECT * FROM SIMULATION WHERE GRID_SIZE = 128")
        assert "seq scan" in plan

    def test_user_site_network_matches_paper(self):
        network = user_site_network()
        assert network.profile_between(
            "qmw.london", "southampton"
        ).rate_at(12.0) == 0.25

    def test_multi_site_network_shape(self):
        network = multi_site_network(3)
        assert len(network.hosts(role="file_server")) == 3
        # default profile covers unlinked pairs
        profile = network.profile_between(
            "fs1.site1.ac.uk", "fs2.site2.ac.uk"
        )
        assert profile.rate_at(0) == 0.37
