"""Failure-injection and corruption tests: the system's behaviour when
things go wrong mid-flight."""

import json
import os

import pytest

from repro.datalink import DataLinker, TokenManager, coordinated_backup
from repro.errors import (
    CatalogError,
    FileLinkError,
    FileNotFoundOnServer,
    OperationError,
    RecoveryError,
    SandboxViolation,
)
from repro.fileserver import FileServer
from repro.sqldb import Database
from repro.sqldb.wal import WriteAheadLog
from repro.turbulence import build_turbulence_archive

COLID = "RESULT_FILE.DOWNLOAD_RESULT"


class TestWalCorruption:
    def _make_db(self, directory):
        db = Database(directory)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v VARCHAR(10))")
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        return db

    def test_torn_final_line_is_ignored(self, tmp_path):
        d = str(tmp_path)
        self._make_db(d)
        wal_path = os.path.join(d, "wal.jsonl")
        with open(wal_path, "a", encoding="utf-8") as fh:
            fh.write('{"txn": 99, "ops": [{"op": "ins')  # crash mid-append
        db2 = Database(d)
        assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_corruption_in_the_middle_is_fatal(self, tmp_path):
        d = str(tmp_path)
        self._make_db(d)
        wal_path = os.path.join(d, "wal.jsonl")
        with open(wal_path, encoding="utf-8") as fh:
            lines = fh.readlines()
        lines.insert(1, "GARBAGE NOT JSON\n")
        with open(wal_path, "w", encoding="utf-8") as fh:
            fh.writelines(lines)
        with pytest.raises(RecoveryError):
            Database(d)

    def test_corrupt_checkpoint_is_fatal(self, tmp_path):
        d = str(tmp_path)
        db = self._make_db(d)
        db.checkpoint()
        with open(os.path.join(d, "checkpoint.json"), "w") as fh:
            fh.write("{broken")
        with pytest.raises(RecoveryError):
            Database(d)

    def test_empty_wal_lines_skipped(self, tmp_path):
        d = str(tmp_path)
        self._make_db(d)
        with open(os.path.join(d, "wal.jsonl"), "a") as fh:
            fh.write("\n\n")
        db2 = Database(d)
        assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_wal_round_trips_datalink_values(self, tmp_path):
        d = str(tmp_path)
        db = Database(d)
        db.execute("CREATE TABLE r (k INTEGER PRIMARY KEY, d DATALINK)")
        db.execute("INSERT INTO r VALUES (1, 'http://h/x/f.dat')")
        db2 = Database(d)
        value = db2.execute("SELECT d FROM r").scalar()
        assert value.url == "http://h/x/f.dat"


class TestFileServerFailures:
    def _wired(self):
        linker = DataLinker(TokenManager(secret=b"f", time_source=lambda: 0.0))
        server = linker.register_server(FileServer("fs.x"))
        db = Database()
        db.set_datalink_hooks(linker)
        db.execute(
            "CREATE TABLE R (k INTEGER PRIMARY KEY, d DATALINK "
            "LINKTYPE URL FILE LINK CONTROL READ PERMISSION DB "
            "WRITE PERMISSION BLOCKED RECOVERY YES ON UNLINK RESTORE)"
        )
        return db, linker, server

    def test_insert_against_unknown_server(self):
        db, _linker, _server = self._wired()
        with pytest.raises(FileLinkError):
            db.execute("INSERT INTO R VALUES (1, 'http://unknown.host/f')")
        assert db.execute("SELECT COUNT(*) FROM R").scalar() == 0

    def test_decorate_survives_vanished_file(self):
        """A NO LINK CONTROL datalink may point at a file that has been
        deleted; SELECT must not crash, just omit the size."""
        db, linker, server = self._wired()
        db.execute(
            "CREATE TABLE N (k INTEGER PRIMARY KEY, "
            "d DATALINK LINKTYPE URL NO LINK CONTROL)"
        )
        server.put("/data/tmp.bin", b"x")
        db.execute("INSERT INTO N VALUES (1, 'http://fs.x/data/tmp.bin')")
        server.filesystem.delete("/data/tmp.bin")
        value = db.execute("SELECT d FROM N").scalar()
        assert value.size is None

    def test_download_of_missing_file(self):
        _db, linker, server = self._wired()
        from repro.sqldb.types import DatalinkValue

        with pytest.raises(FileNotFoundOnServer):
            linker.download(DatalinkValue("http://fs.x/not/there.bin"))

    def test_backup_is_consistent_snapshot(self, tmp_path):
        db, linker, server = self._wired()
        server.put("/data/f.bin", b"payload")
        db.execute("INSERT INTO R VALUES (1, 'http://fs.x/data/f.bin')")
        manifest = coordinated_backup(db, linker, str(tmp_path))
        stored = os.path.join(str(tmp_path), manifest["files"][0]["stored_as"])
        with open(stored, "rb") as fh:
            assert fh.read() == b"payload"


class TestOperationFailures:
    @pytest.fixture(scope="class")
    def archive(self):
        return build_turbulence_archive(n_simulations=1, timesteps=1, grid=8)

    def test_crashing_operation_reports_cleanly(self, archive, tmp_path):
        from repro.operations import CodeUploader, pack_code_archive

        engine = archive.make_engine(str(tmp_path / "sb"))
        uploader = CodeUploader(engine)
        user = archive.users.user("turbulence")
        row = archive.result_rows()[0]
        crasher = pack_code_archive({"Boom.py": b"raise ValueError('kaput')"})
        with pytest.raises(OperationError) as excinfo:
            uploader.run_upload(COLID, row, crasher, "Boom", user=user)
        assert "kaput" in str(excinfo.value)

    def test_workdir_cleaned_after_crash(self, archive, tmp_path):
        from repro.operations import CodeUploader, pack_code_archive

        sandbox_root = tmp_path / "sb2"
        engine = archive.make_engine(str(sandbox_root))
        uploader = CodeUploader(engine)
        user = archive.users.user("turbulence")
        row = archive.result_rows()[0]
        crasher = pack_code_archive({"Boom.py": b"1/0"})
        with pytest.raises(OperationError):
            uploader.run_upload(COLID, row, crasher, "Boom", user=user)
        leftovers = [
            p for p in sandbox_root.rglob("*") if p.is_dir()
        ]
        assert leftovers == []

    def test_infinite_loop_upload_is_killed(self, archive, tmp_path):
        from repro.operations import CodeUploader, pack_code_archive

        engine = archive.make_engine(str(tmp_path / "sb3"))
        uploader = CodeUploader(engine)
        user = archive.users.user("turbulence")
        row = archive.result_rows()[0]
        spinner = pack_code_archive({"Spin.py": b"while True:\n    pass\n"})
        with pytest.raises(SandboxViolation):
            uploader.run_upload(COLID, row, spinner, "Spin", user=user)

    def test_operation_code_row_missing(self, archive, tmp_path):
        """If the CODE_FILE row is deleted, invocation fails with a clear
        lookup error rather than a crash."""
        engine = archive.make_engine(str(tmp_path / "sb4"))
        row = archive.result_rows()[0]
        # remove the GetImage code row (and release its file)
        archive.db.execute(
            "DELETE FROM CODE_FILE WHERE CODE_NAME = 'GetImage.jar'"
        )
        try:
            with pytest.raises(OperationError) as excinfo:
                engine.invoke("GetImage", COLID, row,
                              {"slice": "x0", "type": "u"}, use_cache=False)
            assert "0 rows" in str(excinfo.value)
        finally:
            # restore for other tests sharing the archive fixture
            archive.db.execute(
                "INSERT INTO CODE_FILE VALUES (?, NULL, 'POST_PROCESS', "
                "'restored', ?)",
                ("GetImage.jar", "http://fs1.soton.ac.uk/codes/GetImage.jar"),
            )

    def test_commit_hook_failure_surfaces(self):
        """A datalink manager that explodes at commit time becomes a
        TransactionError, not silent corruption."""
        from repro.errors import TransactionError
        from repro.sqldb.database import DatalinkHooks

        class ExplodingHooks(DatalinkHooks):
            def on_insert_link(self, table, column, value, spec, txn):
                txn.on_commit.append(self._boom)

            @staticmethod
            def _boom():
                raise RuntimeError("link manager died")

        db = Database()
        db.set_datalink_hooks(ExplodingHooks())
        db.execute("CREATE TABLE R (k INTEGER PRIMARY KEY, d DATALINK)")
        with pytest.raises(TransactionError):
            db.execute("INSERT INTO R VALUES (1, 'http://h/f.bin')")


class TestEngineEdgeCases:
    def test_ambiguous_bare_column_in_join(self):
        db = Database()
        db.execute("CREATE TABLE a (k INTEGER PRIMARY KEY, x INTEGER)")
        db.execute("CREATE TABLE b (k INTEGER PRIMARY KEY, y INTEGER)")
        db.execute("INSERT INTO a VALUES (1, 10)")
        db.execute("INSERT INTO b VALUES (1, 20)")
        # bare K is ambiguous across a and b: must error, not guess
        with pytest.raises(CatalogError):
            db.execute("SELECT k FROM a, b WHERE a.k = b.k")

    def test_cross_join_cardinality(self):
        db = Database()
        db.execute("CREATE TABLE a (k INTEGER PRIMARY KEY)")
        db.execute("CREATE TABLE b (k INTEGER PRIMARY KEY)")
        for i in range(3):
            db.execute("INSERT INTO a VALUES (?)", (i,))
        for i in range(4):
            db.execute("INSERT INTO b VALUES (?)", (i,))
        assert len(db.execute("SELECT a.k, b.k FROM a, b")) == 12

    def test_self_join_with_aliases(self):
        db = Database()
        db.execute(
            "CREATE TABLE emp (k INTEGER PRIMARY KEY, boss INTEGER, "
            "name VARCHAR(10))"
        )
        db.execute("INSERT INTO emp VALUES (1, NULL, 'root')")
        db.execute("INSERT INTO emp VALUES (2, 1, 'leaf')")
        rows = db.execute(
            "SELECT e.name, b.name FROM emp e JOIN emp b ON e.boss = b.k"
        ).rows
        assert rows == [("leaf", "root")]

    def test_duplicate_alias_rejected(self):
        db = Database()
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY)")
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM t x, t x")

    def test_update_uses_index(self):
        """UPDATE point lookups ride the PK index (no full scan)."""
        db = Database()
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
        for i in range(1000):
            db.execute("INSERT INTO t VALUES (?, 0)", (i,))
        import time

        start = time.perf_counter()
        for _ in range(200):
            db.execute("UPDATE t SET v = v + 1 WHERE k = 500")
        indexed = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(200):
            db.execute("UPDATE t SET v = v + 1 WHERE v < -1")  # scan, no hits
        scan = time.perf_counter() - start
        assert indexed < scan

    def test_char_padding_round_trip(self):
        db = Database()
        db.execute("CREATE TABLE t (c CHAR(6) PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES ('ab')")
        assert db.execute("SELECT COUNT(*) FROM t WHERE c = 'ab'").scalar() == 1

    def test_like_on_clob(self):
        db = Database()
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, d CLOB)")
        db.execute("INSERT INTO t VALUES (1, 'turbulent channel flow')")
        assert db.execute(
            "SELECT COUNT(*) FROM t WHERE d LIKE '%channel%'"
        ).scalar() == 1

    def test_limit_zero(self):
        db = Database()
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.execute("SELECT * FROM t LIMIT 0").rows == []

    def test_group_by_null_bucket(self):
        db = Database()
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, g VARCHAR(5))")
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, NULL), (3, NULL)")
        rows = dict(
            db.execute("SELECT g, COUNT(*) FROM t GROUP BY g").rows
        )
        assert rows["a"] == 1
        assert rows[None] == 2
