"""Unit tests for the file-server substrate."""

import threading

import pytest

from repro.datalink import TokenManager
from repro.errors import (
    FileLockedError,
    FileNotFoundOnServer,
    FileServerError,
    PermissionDeniedError,
    TokenError,
)
from repro.fileserver import FileServer, ServerFileSystem


class TestServerFileSystem:
    def test_write_read(self):
        fs = ServerFileSystem()
        fs.write("/data/a.dat", b"abc")
        assert fs.read("/data/a.dat") == b"abc"

    def test_path_normalisation(self):
        fs = ServerFileSystem()
        fs.write("data//a.dat", b"x")
        assert fs.exists("/data/a.dat")

    def test_directory_path_rejected(self):
        fs = ServerFileSystem()
        with pytest.raises(FileServerError):
            fs.write("/data/dir/", b"x")

    def test_missing_file(self):
        with pytest.raises(FileNotFoundOnServer):
            ServerFileSystem().read("/nope")

    def test_overwrite_unlinked(self):
        fs = ServerFileSystem()
        fs.write("/a", b"1")
        fs.write("/a", b"22")
        assert fs.size("/a") == 2

    def test_delete_and_rename(self):
        fs = ServerFileSystem()
        fs.write("/a", b"1")
        fs.rename("/a", "/b")
        assert fs.exists("/b") and not fs.exists("/a")
        fs.delete("/b")
        assert len(fs) == 0

    def test_rename_collision(self):
        fs = ServerFileSystem()
        fs.write("/a", b"1")
        fs.write("/b", b"2")
        with pytest.raises(FileServerError):
            fs.rename("/a", "/b")

    def test_linked_file_cannot_be_deleted(self):
        fs = ServerFileSystem()
        fs.write("/a", b"1")
        fs.dl_link("/a", read_db=True, write_blocked=True, recovery=True)
        with pytest.raises(FileLockedError):
            fs.delete("/a")

    def test_linked_file_cannot_be_renamed(self):
        fs = ServerFileSystem()
        fs.write("/a", b"1")
        fs.dl_link("/a", read_db=False, write_blocked=False, recovery=False)
        with pytest.raises(FileLockedError):
            fs.rename("/a", "/b")

    def test_linked_write_blocked(self):
        fs = ServerFileSystem()
        fs.write("/a", b"1")
        fs.dl_link("/a", read_db=True, write_blocked=True, recovery=False)
        with pytest.raises(FileLockedError):
            fs.write("/a", b"replacement")

    def test_linked_write_fs_permission_allows_in_place_update(self):
        fs = ServerFileSystem()
        fs.write("/a", b"1")
        fs.dl_link("/a", read_db=False, write_blocked=False, recovery=False)
        fs.write("/a", b"updated")
        assert fs.read("/a") == b"updated"
        assert fs.entry("/a").linked  # still linked after update

    def test_double_link_rejected(self):
        fs = ServerFileSystem()
        fs.write("/a", b"1")
        fs.dl_link("/a", read_db=False, write_blocked=False, recovery=False)
        with pytest.raises(FileLockedError):
            fs.dl_link("/a", read_db=False, write_blocked=False, recovery=False)

    def test_unlink_restore_keeps_file(self):
        fs = ServerFileSystem()
        fs.write("/a", b"1")
        fs.dl_link("/a", read_db=True, write_blocked=True, recovery=True)
        fs.dl_unlink("/a", delete=False)
        entry = fs.entry("/a")
        assert not entry.linked and not entry.read_db
        fs.delete("/a")  # now permitted again

    def test_unlink_delete_removes_file(self):
        fs = ServerFileSystem()
        fs.write("/a", b"1")
        fs.dl_link("/a", read_db=False, write_blocked=False, recovery=False)
        fs.dl_unlink("/a", delete=True)
        assert not fs.exists("/a")

    def test_unlink_not_linked(self):
        fs = ServerFileSystem()
        fs.write("/a", b"1")
        with pytest.raises(FileServerError):
            fs.dl_unlink("/a", delete=False)

    def test_linked_paths_and_totals(self):
        fs = ServerFileSystem()
        fs.write("/a", b"12")
        fs.write("/b", b"345")
        fs.dl_link("/b", read_db=False, write_blocked=False, recovery=False)
        assert fs.linked_paths() == ["/b"]
        assert fs.total_bytes() == 5
        assert list(fs.paths()) == ["/a", "/b"]


class TestFileServer:
    def make(self, validity=60.0, now=None):
        state = {"now": 0.0}
        if now is not None:
            state["now"] = now
        tm = TokenManager(secret=b"s", validity_seconds=validity,
                          time_source=lambda: state["now"])
        server = FileServer("fs1.example.org", token_manager=tm)
        server.put("/data/f.dat", b"payload")
        return server, tm, state

    def test_open_file_served_without_token(self):
        server, _tm, _ = self.make()
        assert server.serve("/data/f.dat") == b"payload"

    def test_read_db_requires_token(self):
        server, _tm, _ = self.make()
        server.dl_link("/data/f.dat", read_db=True, write_blocked=True, recovery=False)
        with pytest.raises(PermissionDeniedError):
            server.serve("/data/f.dat")

    def test_valid_token_grants_access(self):
        server, tm, _ = self.make()
        server.dl_link("/data/f.dat", read_db=True, write_blocked=True, recovery=False)
        token = tm.issue("fs1.example.org/data/f.dat")
        assert server.serve("/data/f.dat", token=token) == b"payload"

    def test_tokenized_path_form(self):
        server, tm, _ = self.make()
        server.dl_link("/data/f.dat", read_db=True, write_blocked=True, recovery=False)
        token = tm.issue("fs1.example.org/data/f.dat")
        assert server.serve(f"/data/{token};f.dat") == b"payload"

    def test_token_for_other_file_rejected(self):
        server, tm, _ = self.make()
        server.put("/data/other.dat", b"x")
        server.dl_link("/data/f.dat", read_db=True, write_blocked=True, recovery=False)
        token = tm.issue("fs1.example.org/data/other.dat")
        with pytest.raises(TokenError):
            server.serve("/data/f.dat", token=token)

    def test_denied_counter(self):
        server, _tm, _ = self.make()
        server.dl_link("/data/f.dat", read_db=True, write_blocked=True, recovery=False)
        with pytest.raises(PermissionDeniedError):
            server.serve("/data/f.dat")
        assert server.denied == 1

    def test_bytes_served_accounting(self):
        server, _tm, _ = self.make()
        server.serve("/data/f.dat")
        server.serve("/data/f.dat")
        assert server.bytes_served == 2 * len(b"payload")
        assert server.requests == 2

    def test_head_is_free(self):
        server, _tm, _ = self.make()
        server.dl_link("/data/f.dat", read_db=True, write_blocked=True, recovery=False)
        assert server.head("/data/f.dat") == len(b"payload")

    def test_recovery_paths(self):
        server, _tm, _ = self.make()
        server.put("/data/r.dat", b"r")
        server.dl_link("/data/f.dat", read_db=True, write_blocked=True, recovery=True)
        server.dl_link("/data/r.dat", read_db=False, write_blocked=False, recovery=False)
        assert server.dl_recovery_paths() == ["/data/f.dat"]

    def test_no_token_manager_installed(self):
        server = FileServer("lonely")
        server.put("/f", b"x")
        server.filesystem.dl_link("/f", read_db=True, write_blocked=True, recovery=False)
        with pytest.raises(TokenError):
            server.serve("/f", token="anything.x")

    def test_counters_thread_safe(self):
        """Concurrent serves must not lose counter increments."""
        server, _tm, _ = self.make()
        threads_n, serves_each = 8, 200

        def hammer():
            for _ in range(serves_each):
                server.serve("/data/f.dat")

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = threads_n * serves_each
        assert server.requests == total
        assert server.bytes_served == total * len(b"payload")

    def test_denied_counter_thread_safe(self):
        server, _tm, _ = self.make()
        server.dl_link("/data/f.dat", read_db=True, write_blocked=True, recovery=False)
        threads_n, serves_each = 8, 100

        def hammer():
            for _ in range(serves_each):
                with pytest.raises(PermissionDeniedError):
                    server.serve("/data/f.dat")

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert server.denied == threads_n * serves_each


class TestTokenizedPathParsing:
    """The ``/dir/token;name`` splitting in ``FileServer.serve``."""

    def make(self):
        tm = TokenManager(secret=b"s", validity_seconds=60.0,
                          time_source=lambda: 0.0)
        return FileServer("fs1.example.org", token_manager=tm), tm

    def test_split_plain_path_untouched(self):
        assert FileServer._split_tokenized("/data/f.dat") == ("/data/f.dat", None)

    def test_split_tokenized_path(self):
        path, token = FileServer._split_tokenized("/data/3c.ab_C-1;f.dat")
        assert path == "/data/f.dat"
        assert token == "3c.ab_C-1"

    def test_no_directory_separator(self):
        """A bare ``token;name`` (no '/') must still split correctly."""
        server, tm = self.make()
        server.put("f.dat", b"top-level")
        server.dl_link("/f.dat", read_db=True, write_blocked=True, recovery=False)
        token = tm.issue("fs1.example.org/f.dat")
        assert server.serve(f"{token};f.dat") == b"top-level"

    def test_semicolon_filename_is_not_a_token(self):
        """A filename containing ';' with no token prefix must not be
        mis-split into a bogus token plus the wrong path."""
        server, _tm = self.make()
        server.put("/data/a;b.dat", b"odd name")
        assert server.serve("/data/a;b.dat") == b"odd name"

    def test_semicolon_filename_shape_check(self):
        # 'a' does not match the <expiry-hex>.<base64url> token shape
        assert FileServer._split_tokenized("/data/a;b.dat") == ("/data/a;b.dat", None)
        # trailing ';' leaves an empty filename: not tokenized either
        assert FileServer._split_tokenized("/data/f.dat;") == ("/data/f.dat;", None)

    def test_real_token_with_semicolon_filename(self):
        """Tokenized access to a file whose name itself contains ';'."""
        server, tm = self.make()
        server.put("/data/a;b.dat", b"odd name")
        server.dl_link("/data/a;b.dat", read_db=True, write_blocked=True,
                       recovery=False)
        token = tm.issue("fs1.example.org/data/a;b.dat")
        assert server.serve(f"/data/{token};a;b.dat") == b"odd name"


class TestManifest:
    """Content checksums powering replication's anti-entropy repair."""

    def test_entry_sha256_tracks_content(self):
        fs = ServerFileSystem()
        fs.write("/a", b"one")
        first = fs.checksum("/a")
        fs.write("/a", b"two")
        assert fs.checksum("/a") != first

    def test_manifest_contents(self):
        fs = ServerFileSystem()
        fs.write("/a", b"12")
        fs.write("/b", b"345")
        fs.dl_link("/b", read_db=True, write_blocked=True, recovery=True)
        manifest = fs.manifest()
        assert sorted(manifest) == ["/a", "/b"]
        assert manifest["/b"]["linked"] is True
        assert manifest["/b"]["read_db"] is True
        assert manifest["/a"]["size"] == 2
        assert manifest["/a"]["sha256"] == fs.checksum("/a")

    def test_dl_put_bypasses_write_blocked(self):
        fs = ServerFileSystem()
        fs.write("/a", b"old")
        fs.dl_link("/a", read_db=True, write_blocked=True, recovery=True)
        with pytest.raises(FileLockedError):
            fs.write("/a", b"new")
        fs.dl_put("/a", b"new")
        assert fs.read("/a") == b"new"
        assert fs.entry("/a").linked  # flags untouched

    def test_dl_remove_bypasses_link_control(self):
        fs = ServerFileSystem()
        fs.write("/a", b"x")
        fs.dl_link("/a", read_db=True, write_blocked=True, recovery=True)
        with pytest.raises(FileLockedError):
            fs.delete("/a")
        fs.dl_remove("/a")
        assert not fs.exists("/a")
