"""Real-socket end-to-end test: the portal served by wsgiref, driven by
urllib — the closest this test suite gets to the paper's live demo site."""

import threading
import urllib.request
from http.cookiejar import CookieJar
from urllib.parse import urlencode
from wsgiref.simple_server import WSGIRequestHandler, make_server

import pytest

from repro import EasiaApp, build_turbulence_archive
from repro.web.wsgi import WsgiAdapter


class _QuietHandler(WSGIRequestHandler):
    def log_message(self, *args):  # keep test output clean
        pass


@pytest.fixture(scope="module")
def live_server(tmp_path_factory):
    archive = build_turbulence_archive(n_simulations=1, timesteps=1, grid=8)
    engine = archive.make_engine(str(tmp_path_factory.mktemp("live-sb")))
    app = EasiaApp(
        archive.db, archive.linker, archive.document, archive.users, engine
    )
    httpd = make_server("127.0.0.1", 0, WsgiAdapter(app),
                        handler_class=_QuietHandler)
    port = httpd.server_address[1]
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{port}", archive
    httpd.shutdown()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def browser():
    jar = CookieJar()
    return urllib.request.build_opener(
        urllib.request.HTTPCookieProcessor(jar)
    )


class TestLivePortal:
    def test_full_session_over_http(self, live_server, browser):
        base, archive = live_server

        # login form is served
        with browser.open(f"{base}/login") as response:
            assert response.status == 200
            assert b"password" in response.read()

        # log in (cookie captured by the jar)
        body = urlencode({"username": "guest", "password": "guest"}).encode()
        with browser.open(f"{base}/login", data=body) as response:
            assert response.status == 200

        # home page via the cookie-backed session
        with browser.open(f"{base}/") as response:
            html = response.read().decode()
        assert "Turbulence" in html

        # QBE search over the wire
        params = urlencode({
            "table": "SIMULATION", "show_TITLE": "on",
            "val_GRID_SIZE": "8", "op_GRID_SIZE": "=",
        })
        with browser.open(f"{base}/search?{params}") as response:
            assert "1 row(s)" in response.read().decode()

        # run an operation; the PGM image comes back with its MIME type
        body = urlencode({
            "name": "GetImage", "colid": "RESULT_FILE.DOWNLOAD_RESULT",
            "key_FILE_NAME": "ts0000.turb",
            "key_SIMULATION_KEY": archive.simulation_keys[0],
            "slice": "x1", "type": "u",
        }).encode()
        with browser.open(f"{base}/operation/run", data=body) as response:
            assert response.headers["Content-Type"] == "image/x-portable-graymap"
            assert response.read().startswith(b"P5")

    def test_unauthenticated_is_401_over_http(self, live_server):
        base, _archive = live_server
        bare = urllib.request.build_opener()  # no cookie jar
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            bare.open(f"{base}/")
        assert excinfo.value.code == 401

    def test_guest_download_denied_over_http(self, live_server, browser):
        base, archive = live_server
        url = archive.result_rows()[0]["RESULT_FILE.DOWNLOAD_RESULT"].url
        params = urlencode({"url": url})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            browser.open(f"{base}/download?{params}")
        assert excinfo.value.code == 403
