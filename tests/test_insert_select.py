"""Tests for INSERT ... SELECT."""

import pytest

from repro.errors import ForeignKeyViolation, SqlSyntaxError, UniqueViolation
from repro.sqldb import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE SRC (k INTEGER PRIMARY KEY, v VARCHAR(5))")
    database.execute("CREATE TABLE DST (k INTEGER PRIMARY KEY, v VARCHAR(5))")
    database.execute("INSERT INTO SRC VALUES (1,'a'),(2,'b'),(3,'c')")
    return database


class TestInsertSelect:
    def test_copies_matching_rows(self, db):
        result = db.execute("INSERT INTO DST SELECT k, v FROM SRC WHERE k > 1")
        assert result.rowcount == 2
        assert db.execute("SELECT * FROM DST ORDER BY k").rows == [
            (2, "b"), (3, "c"),
        ]

    def test_with_expressions(self, db):
        db.execute("INSERT INTO DST SELECT k * 10, UPPER(v) FROM SRC")
        assert db.execute(
            "SELECT v FROM DST WHERE k = 20"
        ).scalar() == "B"

    def test_with_column_list(self, db):
        db.execute("INSERT INTO DST (v, k) VALUES ('z', 99)")
        db.execute("INSERT INTO DST (k, v) SELECT k, v FROM SRC WHERE k = 1")
        assert db.execute("SELECT COUNT(*) FROM DST").scalar() == 2

    def test_with_parameters(self, db):
        db.execute(
            "INSERT INTO DST SELECT k, v FROM SRC WHERE k = ?", (2,)
        )
        assert db.execute("SELECT v FROM DST").scalar() == "b"

    def test_unique_violation_is_atomic(self, db):
        db.execute("INSERT INTO DST VALUES (2, 'x')")
        with pytest.raises(UniqueViolation):
            db.execute("INSERT INTO DST SELECT k, v FROM SRC")
        # nothing from the failed statement persisted
        assert db.execute("SELECT COUNT(*) FROM DST").scalar() == 1

    def test_fk_enforced(self, db):
        db.execute(
            "CREATE TABLE CHILD (k INTEGER PRIMARY KEY, "
            "p INTEGER REFERENCES DST (k))"
        )
        with pytest.raises(ForeignKeyViolation):
            db.execute("INSERT INTO CHILD SELECT k, k FROM SRC")

    def test_from_view(self, db):
        db.execute("CREATE VIEW BIG AS SELECT k, v FROM SRC WHERE k >= 2")
        db.execute("INSERT INTO DST SELECT k, v FROM BIG")
        assert db.execute("SELECT COUNT(*) FROM DST").scalar() == 2

    def test_self_copy(self, db):
        db.execute("INSERT INTO SRC SELECT k + 100, v FROM SRC")
        assert db.execute("SELECT COUNT(*) FROM SRC").scalar() == 6

    def test_arity_mismatch(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("INSERT INTO DST SELECT k FROM SRC")
