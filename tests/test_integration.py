"""End-to-end integration tests across every subsystem."""

import json

import pytest

from repro import (
    EasiaApp,
    coordinated_backup,
    coordinated_restore,
    build_turbulence_archive,
)
from repro.datalink import TokenManager
from repro.sqldb import Database


@pytest.fixture(scope="module")
def archive():
    return build_turbulence_archive(n_simulations=3, timesteps=2, grid=10)


@pytest.fixture(scope="module")
def app(archive, tmp_path_factory):
    engine = archive.make_engine(str(tmp_path_factory.mktemp("sandbox")))
    return EasiaApp(
        archive.db, archive.linker, archive.document, archive.users, engine
    )


class TestFullUserJourney:
    """The paper's demo walkthrough: log in as guest, search, browse,
    post-process — never moving a whole dataset."""

    def test_guest_journey(self, app, archive):
        session = app.login("guest", "guest")

        # 1. Home page lists the five tables.
        home = app.get("/", session_id=session).text
        for table in ("AUTHOR", "SIMULATION", "RESULT_FILE",
                      "CODE_FILE", "VISUALISATION_FILE"):
            assert table in home

        # 2. QBE search for large simulations.
        results = app.get(
            "/search",
            {"table": "SIMULATION", "show_SIMULATION_KEY": "on",
             "show_TITLE": "on", "show_AUTHOR_KEY": "on",
             "val_GRID_SIZE": "10", "op_GRID_SIZE": ">="},
            session_id=session,
        ).text
        assert "3 row(s)" in results

        # 3. Follow a PK browse link into RESULT_FILE.
        children = app.get(
            "/browse/pk",
            {"ref": "RESULT_FILE.SIMULATION_KEY",
             "value": archive.simulation_keys[0]},
            session_id=session,
        ).text
        assert "2 row(s)" in children
        assert "GetImage" in children

        # 4. Run the GetImage operation; only the small image ships.
        image = app.post(
            "/operation/run",
            {"name": "GetImage", "colid": "RESULT_FILE.DOWNLOAD_RESULT",
             "key_FILE_NAME": "ts0000.turb",
             "key_SIMULATION_KEY": archive.simulation_keys[0],
             "slice": "x2", "type": "p"},
            session_id=session,
        )
        assert image.body.startswith(b"P5")
        dataset_size = archive.result_rows()[0]["RESULT_FILE.FILE_SIZE"]
        assert len(image.body) < dataset_size / 10

        # 5. Guests cannot pull the raw dataset.
        url = archive.result_rows()[0]["RESULT_FILE.DOWNLOAD_RESULT"].url
        assert app.get("/download", {"url": url}, session_id=session).status == 403

    def test_researcher_journey(self, app, archive):
        session = app.login("turbulence", "consortium")
        row = archive.result_rows()[0]

        # Researcher downloads a dataset through a fresh token.
        url = row["RESULT_FILE.DOWNLOAD_RESULT"].url
        download = app.get("/download", {"url": url}, session_id=session)
        assert download.ok
        assert len(download.body) == row["RESULT_FILE.FILE_SIZE"]

        # And runs the restricted Subsample operation.
        reduced = app.post(
            "/operation/run",
            {"name": "Subsample", "colid": "RESULT_FILE.DOWNLOAD_RESULT",
             "key_FILE_NAME": row["RESULT_FILE.FILE_NAME"],
             "key_SIMULATION_KEY": row["RESULT_FILE.SIMULATION_KEY"],
             "factor": "2"},
            session_id=session,
        )
        assert reduced.ok
        assert len(reduced.body) < row["RESULT_FILE.FILE_SIZE"]


class TestOperationsOverDistributedServers:
    def test_each_server_processes_its_own_data(self, archive, tmp_path):
        """Operations read datasets locally on their home file server —
        zero dataset bytes cross between servers."""
        engine = archive.make_engine(str(tmp_path / "sb"))
        before = {s.host: s.bytes_served for s in archive.servers}
        for row in archive.result_rows():
            result = engine.invoke(
                "FieldStats", "RESULT_FILE.DOWNLOAD_RESULT", row,
                use_cache=False,
            )
            stats = json.loads(result.outputs["stats.json"])
            assert stats["grid"] == [archive.grid] * 3
        after = {s.host: s.bytes_served for s in archive.servers}
        # serve() was never involved: local filesystem reads only
        assert before == after


class TestCoordinatedBackupRestoreFullArchive:
    def test_whole_archive_survives(self, archive, tmp_path):
        manifest = coordinated_backup(archive.db, archive.linker, str(tmp_path))
        # every RESULT_FILE and CODE_FILE dataset participates (RECOVERY YES)
        result_count = archive.db.execute(
            "SELECT COUNT(*) FROM RESULT_FILE"
        ).scalar()
        code_count = archive.db.execute("SELECT COUNT(*) FROM CODE_FILE").scalar()
        assert len(manifest["files"]) == result_count + code_count

        db2, linker2 = coordinated_restore(
            str(tmp_path),
            TokenManager(secret=b"r", validity_seconds=600,
                         time_source=lambda: 0.0),
        )
        assert db2.execute("SELECT COUNT(*) FROM SIMULATION").scalar() == 3
        value = db2.execute(
            "SELECT DOWNLOAD_RESULT FROM RESULT_FILE LIMIT 1"
        ).scalar()
        data = linker2.download(value)
        assert len(data) == value.size


class TestWalDurabilityWithArchiveSchema:
    def test_crash_recovery_preserves_turbulence_metadata(self, tmp_path):
        from repro.turbulence import create_turbulence_schema

        d = str(tmp_path / "db")
        db = Database(d)
        create_turbulence_schema(db)
        db.execute(
            "INSERT INTO AUTHOR VALUES ('A1', 'Mark', 'm@x', 'Soton')"
        )
        db.execute(
            "INSERT INTO SIMULATION (SIMULATION_KEY, AUTHOR_KEY, TITLE) "
            "VALUES ('S1', 'A1', 'Channel')"
        )
        # Uncommitted work must not survive the "crash".
        db.execute("BEGIN")
        db.execute("INSERT INTO AUTHOR VALUES ('A2', 'Ghost', NULL, NULL)")
        # no COMMIT: simulate a crash by simply reopening from disk

        db2 = Database(d)
        assert db2.execute("SELECT COUNT(*) FROM AUTHOR").scalar() == 1
        assert db2.execute(
            "SELECT TITLE FROM SIMULATION WHERE SIMULATION_KEY = 'S1'"
        ).scalar() == "Channel"
        # FKs still enforced after recovery
        from repro.errors import ForeignKeyViolation

        with pytest.raises(ForeignKeyViolation):
            db2.execute("DELETE FROM AUTHOR WHERE AUTHOR_KEY = 'A1'")

    def test_checkpoint_then_more_work_then_recover(self, tmp_path):
        d = str(tmp_path / "db")
        db = Database(d)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v VARCHAR(10))")
        for i in range(20):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
        db.checkpoint()
        for i in range(20, 30):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
        db.execute("DELETE FROM t WHERE k < 5")

        db2 = Database(d)
        assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 25
        assert db2.execute("SELECT MIN(k) FROM t").scalar() == 5


class TestXuisDrivesEverything:
    def test_removing_operation_from_xuis_removes_it_from_app(
        self, archive, tmp_path
    ):
        """The decoupling claim: edit the XML, the interface follows."""
        from repro.xuis import Customizer

        trimmed = Customizer(archive.document).remove_operation(
            "RESULT_FILE.DOWNLOAD_RESULT", "GetImage"
        ).document
        engine = archive.make_engine(str(tmp_path / "sb"))
        app = EasiaApp(
            archive.db, archive.linker, trimmed, archive.users, engine,
        )
        # swap the engine's document too (one source of truth in prod)
        engine.document = trimmed
        session = app.login("guest", "guest")
        listing = app.get(
            "/table", {"name": "RESULT_FILE"}, session_id=session
        ).text
        assert "GetImage" not in listing
        assert "FieldStats" in listing

    def test_hiding_column_hides_it_from_search(self, archive, tmp_path):
        from repro.xuis import Customizer

        trimmed = Customizer(archive.document).hide_column(
            "AUTHOR.EMAIL"
        ).document
        engine = archive.make_engine(str(tmp_path / "sb"))
        app = EasiaApp(
            archive.db, archive.linker, trimmed, archive.users, engine,
        )
        session = app.login("guest", "guest")
        form = app.get("/query", {"table": "AUTHOR"}, session_id=session).text
        assert "EMAIL" not in form
        listing = app.get("/table", {"name": "AUTHOR"}, session_id=session).text
        assert "papiani@computer.org" not in listing
