"""Tests for the applet-style interactive slice browser."""

import base64
import re

import pytest

from repro.turbulence import build_turbulence_archive

COLID = "RESULT_FILE.DOWNLOAD_RESULT"


@pytest.fixture(scope="module")
def archive():
    return build_turbulence_archive(n_simulations=1, timesteps=1, grid=6)


@pytest.fixture
def engine(archive, tmp_path):
    return archive.make_engine(str(tmp_path / "sb"))


@pytest.fixture
def row(archive):
    return archive.result_rows()[0]


class TestSliceBrowser:
    def test_produces_single_html_page(self, engine, row):
        result = engine.invoke("SliceBrowser", COLID, row, {"type": "u"})
        assert list(result.outputs) == ["browser.html"]
        html = result.outputs["browser.html"].decode()
        assert "<script>" in html
        assert 'type="range"' in html
        assert "Grid 6 x 6 x 6" in html

    def test_one_embedded_slice_per_x(self, engine, row):
        result = engine.invoke("SliceBrowser", COLID, row, {"type": "p"},
                               use_cache=False)
        html = result.outputs["browser.html"].decode()
        embedded = re.findall(r'"([A-Za-z0-9+/=]{40,})"', html)
        assert len(embedded) == 6  # nx slices

    def test_slices_are_valid_pgms(self, engine, row):
        result = engine.invoke("SliceBrowser", COLID, row, {"type": "w"},
                               use_cache=False)
        html = result.outputs["browser.html"].decode()
        embedded = re.findall(r'"([A-Za-z0-9+/=]{40,})"', html)
        for blob in embedded:
            pgm = base64.b64decode(blob)
            assert pgm.startswith(b"P5\n6 6\n255\n")
            assert len(pgm) == len(b"P5\n6 6\n255\n") + 36

    def test_first_slice_matches_getimage(self, engine, row):
        """The browser's x0 image uses the same normalisation domain as the
        whole field, so it differs from GetImage's per-slice scaling — but
        both must be plausible renderings (same shape, same header)."""
        browser = engine.invoke("SliceBrowser", COLID, row, {"type": "u"},
                                use_cache=False)
        image = engine.invoke("GetImage", COLID, row,
                              {"slice": "x0", "type": "u"}, use_cache=False)
        html = browser.outputs["browser.html"].decode()
        first = base64.b64decode(re.findall(r'"([A-Za-z0-9+/=]{40,})"', html)[0])
        assert first[:11] == image.outputs["slice.pgm"][:11]

    def test_guest_may_run_it(self, engine, archive, row):
        guest = archive.users.user("guest")
        names = {o.name for o in engine.operations_for(COLID, row, guest)}
        assert "SliceBrowser" in names

    def test_served_through_portal_as_html(self, archive, tmp_path):
        from repro import EasiaApp

        engine = archive.make_engine(str(tmp_path / "portal-sb"))
        app = EasiaApp(
            archive.db, archive.linker, archive.document, archive.users, engine
        )
        session = app.login("guest", "guest")
        response = app.post(
            "/operation/run",
            {"name": "SliceBrowser", "colid": COLID, "type": "v",
             "key_FILE_NAME": "ts0000.turb",
             "key_SIMULATION_KEY": archive.simulation_keys[0]},
            session_id=session,
        )
        assert response.content_type == "text/html"
        assert b"Interactive slice browser" in (
            response.body if isinstance(response.body, bytes)
            else response.body.encode()
        )

    def test_rejects_non_turb_data(self, engine, archive):
        from repro.errors import OperationError
        from repro.sqldb.types import DatalinkValue

        server = archive.servers[0]
        server.put("/data/not_turb.bin", b"garbage")
        fake_row = {
            COLID: DatalinkValue(f"http://{server.host}/data/not_turb.bin"),
            "RESULT_FILE.FILE_FORMAT": "TURB",
            "FILE_FORMAT": "TURB",
        }
        with pytest.raises((OperationError, ValueError)):
            engine.invoke("SliceBrowser", COLID, fake_row, {"type": "u"})
