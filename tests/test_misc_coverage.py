"""Miscellaneous coverage: stats persistence, error hierarchy, rendering
details, schema/med edge cases."""

import pytest

from repro import errors
from repro.operations import OperationStats
from repro.sqldb import Database


class TestStatsPersistence:
    def test_persist_and_load_round_trip(self):
        db = Database()
        stats = OperationStats()
        stats.record("GetImage", 0.5, 1000, 10)
        stats.record("GetImage", 1.5, 1000, 30)
        stats.record_cache_hit("GetImage")
        stats.record("FieldStats", 0.1, 500, 5)
        assert stats.persist(db) == 2

        loaded = OperationStats.load(db)
        summary = loaded.summary("GetImage")
        assert summary.invocations == 2
        assert summary.cache_hits == 1
        assert summary.mean_elapsed == 1.0
        assert summary.min_elapsed == 0.5
        assert summary.total_output_bytes == 40
        assert loaded.summary("FieldStats").invocations == 1

    def test_persist_replaces_prior_rows(self):
        db = Database()
        stats = OperationStats()
        stats.record("A", 1, 10, 1)
        stats.persist(db)
        stats2 = OperationStats()
        stats2.record("B", 1, 10, 1)
        stats2.persist(db)
        loaded = OperationStats.load(db)
        assert loaded.summary("A") is None
        assert loaded.summary("B") is not None

    def test_load_from_empty_database(self):
        assert OperationStats.load(Database()).summaries() == []

    def test_history_accumulates_across_sessions(self):
        db = Database()
        first = OperationStats()
        first.record("Op", 1.0, 100, 10)
        first.persist(db)
        second = OperationStats.load(db)
        second.record("Op", 3.0, 100, 10)
        assert second.summary("Op").invocations == 2
        assert second.summary("Op").mean_elapsed == 2.0


class TestErrorHierarchy:
    def test_everything_is_reproerror(self):
        leaf_errors = [
            errors.SqlSyntaxError("x"),
            errors.CatalogError("x"),
            errors.TypeMismatchError("x"),
            errors.NotNullViolation("x"),
            errors.UniqueViolation("x"),
            errors.ForeignKeyViolation("x"),
            errors.CheckViolation("x"),
            errors.TransactionError("x"),
            errors.RecoveryError("x"),
            errors.InvalidDatalinkValue("x"),
            errors.FileLinkError("x"),
            errors.TokenError("x"),
            errors.TokenExpiredError("x"),
            errors.PermissionDeniedError("x"),
            errors.UnknownHostError("x"),
            errors.NoRouteError("x"),
            errors.FileNotFoundOnServer("x"),
            errors.FileLockedError("x"),
            errors.XuisValidationError("x"),
            errors.XuisParseError("x"),
            errors.AuthenticationError("x"),
            errors.AuthorizationError("x"),
            errors.RoutingError("x"),
            errors.OperationNotApplicable("x"),
            errors.SandboxViolation("x"),
            errors.OperationExecutionError("x"),
        ]
        for exc in leaf_errors:
            assert isinstance(exc, errors.ReproError)

    def test_family_groupings(self):
        assert isinstance(errors.UniqueViolation("x"), errors.ConstraintViolation)
        assert isinstance(errors.ForeignKeyViolation("x"), errors.ConstraintViolation)
        assert isinstance(errors.TokenExpiredError("x"), errors.TokenError)
        assert isinstance(errors.SandboxViolation("x"), errors.OperationError)
        assert isinstance(errors.SqlSyntaxError("x"), errors.DatabaseError)

    def test_syntax_error_position(self):
        exc = errors.SqlSyntaxError("bad", position=17)
        assert exc.position == 17


class TestRenderingDetails:
    @pytest.fixture
    def setup(self):
        from repro.sqldb.types import Blob
        from repro.xuis import generate_default_xuis

        db = Database()
        db.execute(
            "CREATE TABLE G (k VARCHAR(5) PRIMARY KEY, pic BLOB, note CLOB)"
        )
        db.execute(
            "INSERT INTO G VALUES (?, ?, ?)",
            ("g1", Blob(b"\x00" * 10, "image/png"), "a note about g1"),
        )
        return db, generate_default_xuis(db)

    def test_blob_cell_is_size_link(self, setup):
        db, doc = setup
        from repro.web.render import render_result_table

        result = db.execute("SELECT * FROM G")
        html = render_result_table(db, doc, "G", result)
        assert "10 bytes" in html
        assert 'class="lob"' in html
        assert "key_K=g1" in html

    def test_clob_cell_is_chars_link(self, setup):
        db, doc = setup
        from repro.web.render import render_result_table

        result = db.execute("SELECT * FROM G")
        html = render_result_table(db, doc, "G", result)
        assert "15 chars" in html

    def test_html_escaping_in_cells(self, setup):
        db, doc = setup
        from repro.web.render import render_result_table

        db.execute("INSERT INTO G VALUES ('<b>', NULL, NULL)")
        result = db.execute("SELECT k FROM G WHERE k = '<b>'")
        html = render_result_table(db, doc, "G", result)
        assert "<b>" not in html.replace("<body>", "").replace("<br>", "")
        assert "&lt;b&gt;" in html


class TestMedEdgeCases:
    def test_char_datalink_interplay(self):
        db = Database()
        db.execute("CREATE TABLE t (c CHAR(4) PRIMARY KEY, d DATALINK)")
        db.execute("INSERT INTO t VALUES ('ab', 'http://h/f.bin')")
        assert db.execute(
            "SELECT DLURLSERVER(d) FROM t WHERE c = 'ab'"
        ).scalar() == "h"

    def test_datalink_in_order_by(self):
        db = Database()
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, d DATALINK)")
        db.execute("INSERT INTO t VALUES (1, 'http://b/f'), (2, 'http://a/f')")
        rows = db.execute("SELECT k FROM t ORDER BY DLURLSERVER(d)").rows
        assert rows == [(2,), (1,)]

    def test_datalink_group_by_server(self):
        db = Database()
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, d DATALINK)")
        db.execute(
            "INSERT INTO t VALUES (1, 'http://a/f1'), (2, 'http://a/f2'), "
            "(3, 'http://b/f3')"
        )
        rows = dict(db.execute(
            "SELECT DLURLSERVER(d) AS srv, COUNT(*) FROM t GROUP BY srv"
        ).rows)
        assert rows == {"a": 2, "b": 1}

    def test_datalink_unique_constraint_uses_url(self):
        from repro.errors import UniqueViolation

        db = Database()
        db.execute(
            "CREATE TABLE t (k INTEGER PRIMARY KEY, d DATALINK, UNIQUE (d))"
        )
        db.execute("INSERT INTO t VALUES (1, 'http://h/f.bin')")
        with pytest.raises(UniqueViolation):
            db.execute("INSERT INTO t VALUES (2, 'http://h/f.bin')")


class TestLoginForm:
    def test_render_contains_fields(self):
        from repro.web.forms import render_login_form

        html = render_login_form("try again")
        assert 'name="username"' in html
        assert 'type="password"' in html
        assert "try again" in html
