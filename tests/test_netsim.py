"""Unit tests for the network simulator (clock, bandwidth, transfers)."""

import pytest

from repro.errors import NetworkError, NoRouteError, UnknownHostError
from repro.netsim import (
    MBYTE,
    PAPER_RATES,
    BandwidthProfile,
    Host,
    Link,
    Network,
    SimClock,
    TransferEngine,
    format_duration,
    paper_profile,
    transfer_seconds,
)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_start_hour_positions_day(self):
        assert SimClock(start_hour=9.0).hour_of_day == 9.0

    def test_advance(self):
        clock = SimClock(start_hour=9.0)
        clock.advance(3600)
        assert clock.hour_of_day == 10.0

    def test_wraps_midnight(self):
        clock = SimClock(start_hour=23.0)
        clock.advance(2 * 3600)
        assert clock.hour_of_day == 1.0

    def test_seconds_until_hour(self):
        clock = SimClock(start_hour=9.0)
        assert clock.seconds_until_hour(18.0) == 9 * 3600
        assert clock.seconds_until_hour(8.0) == 23 * 3600

    def test_seconds_until_same_hour_is_full_day(self):
        clock = SimClock(start_hour=9.0)
        assert clock.seconds_until_hour(9.0) == 24 * 3600

    def test_negative_advance_rejected(self):
        with pytest.raises(NetworkError):
            SimClock().advance(-1)

    def test_bad_start_hour(self):
        with pytest.raises(NetworkError):
            SimClock(start_hour=24.0)

    def test_at_copies(self):
        clock = SimClock(start_hour=6.0)
        probe = clock.at(3600.0)
        assert probe.hour_of_day == 7.0
        assert clock.now == 0.0


class TestBandwidthProfile:
    def test_constant(self):
        profile = BandwidthProfile.constant(2.0)
        assert profile.rate_at(3.0) == 2.0
        assert profile.is_constant()

    def test_piecewise_rates(self):
        profile = BandwidthProfile([(0.0, 1.0), (8.0, 0.5), (18.0, 1.5)])
        assert profile.rate_at(2) == 1.0
        assert profile.rate_at(8) == 0.5
        assert profile.rate_at(17.99) == 0.5
        assert profile.rate_at(18) == 1.5
        assert profile.rate_at(23.5) == 1.5

    def test_rate_wraps_from_previous_day(self):
        profile = BandwidthProfile([(0.0, 1.0), (8.0, 0.5)])
        assert profile.rate_at(25.0) == 1.0  # 1am next day

    def test_next_boundary(self):
        profile = BandwidthProfile([(0.0, 1.0), (8.0, 0.5), (18.0, 1.5)])
        assert profile.next_boundary(7.0) == 1.0
        assert profile.next_boundary(10.0) == 8.0
        assert profile.next_boundary(20.0) == 4.0  # wraps to hour 0

    def test_must_start_at_zero(self):
        with pytest.raises(NetworkError):
            BandwidthProfile([(8.0, 1.0)])

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(NetworkError):
            BandwidthProfile([(0.0, 0.0)])

    def test_rejects_duplicate_hours(self):
        with pytest.raises(NetworkError):
            BandwidthProfile([(0.0, 1.0), (0.0, 2.0)])

    def test_paper_profile_rates(self):
        to_soton = paper_profile("to_southampton")
        assert to_soton.rate_at(12.0) == 0.25
        assert to_soton.rate_at(20.0) == 0.58
        from_soton = paper_profile("from_southampton")
        assert from_soton.rate_at(12.0) == 0.37
        assert from_soton.rate_at(20.0) == 1.94

    def test_paper_profile_unknown_direction(self):
        with pytest.raises(NetworkError):
            paper_profile("sideways")


class TestTransferArithmetic:
    def test_basic_formula(self):
        # 85 MB at 0.25 Mbit/s = 2720 s, the paper's day-rate upload
        assert transfer_seconds(85 * MBYTE, 0.25) == 2720.0

    def test_zero_bytes(self):
        assert transfer_seconds(0, 1.0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(NetworkError):
            transfer_seconds(-1, 1.0)

    def test_zero_rate_rejected(self):
        with pytest.raises(NetworkError):
            transfer_seconds(1, 0)

    @pytest.mark.parametrize(
        "seconds,text",
        [
            (2720, "45m20s"),
            (17408, "4h50m08s"),
            (350.5, "5m51s"),     # the paper's half-up rounding
            (0, "0m00s"),
            (59.4, "0m59s"),
            (3600, "1h00m00s"),
        ],
    )
    def test_format_duration(self, seconds, text):
        assert format_duration(seconds) == text


class TestNetwork:
    def make(self):
        net = Network()
        net.add_host(Host("a", role="db_server"))
        net.add_host(Host("b", role="file_server"))
        net.add_link(Link("a", "b", BandwidthProfile.constant(1.0)))
        return net

    def test_duplicate_host_rejected(self):
        net = self.make()
        with pytest.raises(NetworkError):
            net.add_host(Host("a"))

    def test_unknown_host(self):
        with pytest.raises(UnknownHostError):
            self.make().host("zz")

    def test_link_requires_known_hosts(self):
        net = self.make()
        with pytest.raises(UnknownHostError):
            net.add_link(Link("a", "zz", BandwidthProfile.constant(1.0)))

    def test_profile_between(self):
        net = self.make()
        assert net.profile_between("a", "b").rate_at(0) == 1.0

    def test_directional_profiles(self):
        net = Network()
        net.add_host(Host("x"))
        net.add_host(Host("y"))
        net.add_link(Link(
            "x", "y",
            profile_ab=BandwidthProfile.constant(1.0),
            profile_ba=BandwidthProfile.constant(2.0),
        ))
        assert net.profile_between("x", "y").rate_at(0) == 1.0
        assert net.profile_between("y", "x").rate_at(0) == 2.0

    def test_no_route(self):
        net = self.make()
        net.add_host(Host("c"))
        with pytest.raises(NoRouteError):
            net.profile_between("a", "c")

    def test_default_profile_fallback(self):
        net = self.make()
        net.add_host(Host("c"))
        net.set_default_profile(BandwidthProfile.constant(0.5))
        assert net.profile_between("a", "c").rate_at(0) == 0.5

    def test_local_is_local(self):
        net = self.make()
        assert net.is_local("a", "a")
        with pytest.raises(NoRouteError):
            net.profile_between("a", "a")

    def test_hosts_by_role(self):
        net = self.make()
        assert [h.name for h in net.hosts(role="file_server")] == ["b"]

    def test_bad_role(self):
        with pytest.raises(NetworkError):
            Host("x", role="mainframe")

    def test_paper_topology(self):
        net = Network.paper_topology()
        assert net.has_host("southampton")
        assert net.has_host("qmw.london")
        # Day rate towards Southampton is the paper's 0.25 Mbit/s
        profile = net.profile_between("qmw.london", "southampton")
        assert profile.rate_at(12.0) == PAPER_RATES[("day", "to_southampton")]


class TestTransferEngine:
    def engine(self, start_hour=12.0):
        net = Network.paper_topology()
        return TransferEngine(net, SimClock(start_hour=start_hour))

    def test_constant_segment_duration(self):
        engine = self.engine(start_hour=12.0)
        seconds = engine.duration("qmw.london", "southampton", 85 * MBYTE)
        assert seconds == pytest.approx(2720.0)

    def test_local_transfer_is_free(self):
        engine = self.engine()
        record = engine.transfer("southampton", "southampton", 10 * MBYTE)
        assert record.seconds == 0.0
        assert record.wide_area_bytes == 0

    def test_transfer_advances_clock(self):
        engine = self.engine(start_hour=12.0)
        engine.transfer("qmw.london", "southampton", 85 * MBYTE)
        assert engine.clock.now == pytest.approx(2720.0)

    def test_piecewise_crossing_speeds_up(self):
        # Start 30 min before the evening boundary: the bulk of a big
        # transfer runs at the faster evening rate.
        slow_all_day = transfer_seconds(544 * MBYTE, 0.25)
        engine = self.engine(start_hour=17.5)
        crossing = engine.duration("qmw.london", "southampton", 544 * MBYTE)
        assert crossing < slow_all_day
        # First 1800 s at 0.25 Mbit/s, remainder at 0.58 Mbit/s.
        moved = 0.25e6 / 8 * 1800
        expected = 1800 + transfer_seconds(544 * MBYTE - moved, 0.58)
        assert crossing == pytest.approx(expected)

    def test_accounting(self):
        engine = self.engine()
        engine.transfer("qmw.london", "southampton", 10 * MBYTE)
        engine.transfer("southampton", "southampton", 99 * MBYTE)
        assert engine.total_wan_bytes() == 10 * MBYTE
        assert len(engine.records) == 2
        engine.reset_accounting()
        assert engine.records == []

    def test_latency_added(self):
        net = Network()
        net.add_host(Host("x"))
        net.add_host(Host("y"))
        net.add_link(Link("x", "y", BandwidthProfile.constant(8.0), latency_s=2.0))
        engine = TransferEngine(net)
        assert engine.duration("x", "y", MBYTE) == pytest.approx(3.0)


class TestTable1Reproduction:
    """The paper's Table 1, regenerated cell by cell."""

    PAPER_TABLE = [
        ("day", "to_southampton", "45m20s", "4h50m08s"),
        ("day", "from_southampton", "30m38s", "3h16m02s"),
        ("evening", "to_southampton", "19m32s", "2h05m03s"),
        ("evening", "from_southampton", "5m51s", "37m23s"),
    ]

    @pytest.mark.parametrize("period,direction,small,large", PAPER_TABLE)
    def test_cells_match_exactly(self, period, direction, small, large):
        rate = PAPER_RATES[(period, direction)]
        assert format_duration(transfer_seconds(85 * MBYTE, rate)) == small
        assert format_duration(transfer_seconds(544 * MBYTE, rate)) == large

    def test_via_engine_topology(self):
        """The same numbers must emerge from the full topology machinery."""
        engine = TransferEngine(
            Network.paper_topology(), SimClock(start_hour=10.0)
        )
        seconds = engine.duration("qmw.london", "southampton", 85 * MBYTE)
        assert format_duration(seconds) == "45m20s"
        seconds = engine.duration("southampton", "qmw.london", 544 * MBYTE)
        assert format_duration(seconds) == "3h16m02s"
