"""Tests for the fair-share concurrent transfer scheduler."""

import pytest

from repro.errors import NetworkError, NoRouteError
from repro.netsim import (
    MBYTE,
    BandwidthProfile,
    ConcurrentScheduler,
    Flow,
    Host,
    Link,
    Network,
    SimClock,
    transfer_seconds,
)


def star_network(n_leaves: int, rate: float = 8.0) -> Network:
    """A hub with ``n_leaves`` leaf hosts, each on its own link."""
    net = Network()
    net.add_host(Host("hub"))
    for i in range(n_leaves):
        leaf = f"leaf{i}"
        net.add_host(Host(leaf))
        net.add_link(Link("hub", leaf, BandwidthProfile.constant(rate)))
    return net


class TestFlow:
    def test_negative_size_rejected(self):
        with pytest.raises(NetworkError):
            Flow("a", "b", -1)

    def test_elapsed_requires_completion(self):
        with pytest.raises(NetworkError):
            Flow("a", "b", 1).elapsed


class TestConcurrentScheduler:
    def test_single_flow_matches_closed_form(self):
        net = star_network(1)
        scheduler = ConcurrentScheduler(net, SimClock())
        flow = Flow("hub", "leaf0", 10 * MBYTE)
        makespan = scheduler.run([flow])
        assert makespan == pytest.approx(transfer_seconds(10 * MBYTE, 8.0))
        assert flow.done

    def test_contention_at_shared_host(self):
        """K flows out of one hub each get 1/K of its capacity: the
        makespan is K times the solo time."""
        net = star_network(4)
        solo = transfer_seconds(10 * MBYTE, 8.0)
        scheduler = ConcurrentScheduler(net, SimClock())
        flows = [Flow("hub", f"leaf{i}", 10 * MBYTE) for i in range(4)]
        makespan = scheduler.run(flows)
        assert makespan == pytest.approx(4 * solo, rel=1e-6)

    def test_distributed_sources_run_in_parallel(self):
        """The same demand from distinct servers finishes in solo time —
        the paper's bottleneck argument."""
        net = Network()
        for i in range(4):
            net.add_host(Host(f"server{i}"))
            net.add_host(Host(f"user{i}"))
            net.add_link(Link(f"server{i}", f"user{i}", BandwidthProfile.constant(8.0)))
        scheduler = ConcurrentScheduler(net, SimClock())
        flows = [Flow(f"server{i}", f"user{i}", 10 * MBYTE) for i in range(4)]
        makespan = scheduler.run(flows)
        assert makespan == pytest.approx(transfer_seconds(10 * MBYTE, 8.0))

    def test_shorter_flow_finishes_first_and_releases_share(self):
        net = star_network(2)
        scheduler = ConcurrentScheduler(net, SimClock())
        short = Flow("hub", "leaf0", 1 * MBYTE)
        long = Flow("hub", "leaf1", 10 * MBYTE)
        scheduler.run([short, long])
        assert short.finish_time < long.finish_time
        # Phase 1: both share (rate 4); short needs 2 s of its 1 MB.
        assert short.elapsed == pytest.approx(transfer_seconds(MBYTE, 4.0))
        # Long: shares for phase 1, then full rate for the rest.
        phase1 = short.elapsed
        moved = 4e6 / 8 * phase1
        rest = transfer_seconds(10 * MBYTE - moved, 8.0)
        assert long.elapsed == pytest.approx(phase1 + rest)

    def test_local_flows_complete_instantly(self):
        net = star_network(1)
        scheduler = ConcurrentScheduler(net, SimClock())
        local = Flow("hub", "hub", 100 * MBYTE)
        makespan = scheduler.run([local])
        assert makespan == 0.0
        assert local.elapsed == 0.0

    def test_zero_byte_flow(self):
        net = star_network(1)
        scheduler = ConcurrentScheduler(net, SimClock())
        assert scheduler.run([Flow("hub", "leaf0", 0)]) == 0.0

    def test_no_route_raises_before_running(self):
        net = star_network(1)
        net.add_host(Host("island"))
        scheduler = ConcurrentScheduler(net, SimClock())
        with pytest.raises(NoRouteError):
            scheduler.run([Flow("hub", "island", 1)])

    def test_profile_boundary_respected(self):
        """A flow crossing the day/evening boundary speeds up mid-flight."""
        profile = BandwidthProfile([(0.0, 8.0), (12.0, 16.0)])
        net = Network()
        net.add_host(Host("a"))
        net.add_host(Host("b"))
        net.add_link(Link("a", "b", profile))
        # Start 10 s before the boundary at hour 12.
        clock = SimClock(start_hour=11.0)
        clock.advance(3590.0)
        scheduler = ConcurrentScheduler(net, clock)
        flow = Flow("a", "b", 20 * MBYTE)  # 20 s at 8 Mb/s
        makespan = scheduler.run([flow])
        moved = 8e6 / 8 * 10  # first 10 s at 8 Mb/s
        rest = transfer_seconds(20 * MBYTE - moved, 16.0)
        assert makespan == pytest.approx(10 + rest)

    def test_clock_advances_to_completion(self):
        net = star_network(1)
        clock = SimClock()
        scheduler = ConcurrentScheduler(net, clock)
        makespan = scheduler.run([Flow("hub", "leaf0", 10 * MBYTE)])
        assert clock.now == pytest.approx(makespan)

    def test_paper_bottleneck_scenario(self):
        """8 concurrent 85 MB downloads: single site vs 8 servers — the
        computed 8x contention factor behind bench F3b."""
        rate = 1.94
        central = star_network(8, rate=rate)
        scheduler = ConcurrentScheduler(central, SimClock())
        flows = [Flow("hub", f"leaf{i}", 85 * MBYTE) for i in range(8)]
        central_makespan = scheduler.run(flows)

        spread = Network()
        for i in range(8):
            spread.add_host(Host(f"s{i}"))
            spread.add_host(Host(f"u{i}"))
            spread.add_link(Link(f"s{i}", f"u{i}", BandwidthProfile.constant(rate)))
        scheduler = ConcurrentScheduler(spread, SimClock())
        spread_makespan = scheduler.run(
            [Flow(f"s{i}", f"u{i}", 85 * MBYTE) for i in range(8)]
        )
        assert central_makespan == pytest.approx(8 * spread_makespan, rel=1e-6)
